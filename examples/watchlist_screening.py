"""Cross-script watchlist screening with the accelerated strategies.

The paper's motivating scenario: "it is not possible to automatically
match the English string Al-Qaeda and its equivalent strings in other
scripts ... even though such a feature could be immensely useful for
news organizations or security agencies."

This example loads a watchlist of names stored in English, Hindi and
Tamil, screens incoming traveller names against it with all three
execution strategies, and prints their work counters — the same
quality/efficiency trade-off the paper's Tables 1-3 quantify.

Run:  python examples/watchlist_screening.py
"""

from repro import (
    LexEqualMatcher,
    NaiveUdfStrategy,
    NameCatalog,
    PhoneticIndexStrategy,
    QGramStrategy,
)

matcher = LexEqualMatcher()
watchlist = NameCatalog(matcher)

# Each group: the same person's name as it appears in different
# scripts/databases (tag = person id).
ENTRIES = [
    ("Krishna Mohan", "english", 1),
    ("कृष्ण मोहन", "hindi", 1),
    ("கிருஷ்ணா மோகன்", "tamil", 1),
    ("Jawahar Sharma", "english", 2),
    ("जवाहर शर्मा", "hindi", 2),
    ("Venkatesh Rao", "english", 3),
    ("வெங்கடேஷ் ராவ்", "tamil", 3),
    ("Ganesh Naik", "english", 4),
    ("गणेश नाइक", "hindi", 4),
    ("Meera Nandan", "english", 5),
    ("मीरा नन्दन", "hindi", 5),
    ("மீரா நந்தன்", "tamil", 5),
]
watchlist.add_many(ENTRIES)
print(f"watchlist: {len(watchlist)} entries, 5 persons, 3 scripts\n")

TRAVELLERS = [
    "Krishna Mohan",     # exact romanization
    "Krishnan Mohan",    # spelling variant
    "Meera Nandan",
    "Michael Norton",    # innocent bystander
]

strategies = {
    "naive UDF scan": NaiveUdfStrategy(watchlist),
    "q-gram filters": QGramStrategy(watchlist),
    "phonetic index": PhoneticIndexStrategy(watchlist),
}

for traveller in TRAVELLERS:
    print(f"screening {traveller!r}:")
    for label, strategy in strategies.items():
        hits = strategy.select(traveller)
        stats = strategy.last_stats
        persons = sorted({record.tag for record in hits})
        shown = ",".join(str(p) for p in persons) if persons else "none"
        print(
            f"  {label:15s} -> persons {shown:<12s} "
            f"(udf calls: {stats.udf_calls}/{stats.rows_considered})"
        )
    print()

print(
    "Note the trade-off: the q-gram strategy returns exactly the naive\n"
    "scan's hits with a fraction of the UDF calls; the phonetic index is\n"
    "cheapest but may false-dismiss (paper Section 5.3) - acceptable for\n"
    "'very fast response' applications, per the paper."
)
