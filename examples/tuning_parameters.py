"""Tuning the match parameters on a tagged lexicon (paper §4.3 + §6).

Sweeps the (user match threshold x intra-cluster substitution cost)
plane over a slice of the bundled tagged lexicon, prints the recall/
precision surface, and runs the automatic parameter selection — the
paper's first future-work item ("automatically generating the optimal
matching parameters ... based on a training set").

Run:  python examples/tuning_parameters.py
"""

from repro.data.lexicon import build_lexicon
from repro.evaluation.autotune import autotune
from repro.evaluation.quality import sweep_quality
from repro.evaluation.report import format_series

print("building a training lexicon (three scripts, tagged groups)...")
lexicon = build_lexicon(limit_per_domain=60)
lex_avg, pho_avg = lexicon.average_lengths()
print(
    f"  {len(lexicon)} entries, {len(lexicon.groups())} groups, "
    f"avg lengths {lex_avg:.2f}/{pho_avg:.2f}\n"
)

THRESHOLDS = [0.1, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5]
COSTS = [0.0, 0.25, 0.5, 1.0]

print("sweeping the parameter plane (paper Figure 11)...")
points = sweep_quality(lexicon, THRESHOLDS, COSTS)

recall = {}
precision = {}
for p in points:
    label = f"cost={p.intra_cluster_cost:g}"
    recall.setdefault(label, []).append((p.threshold, p.recall))
    precision.setdefault(label, []).append((p.threshold, p.precision))
print(format_series("Recall vs threshold", "e", recall))
print()
print(format_series("Precision vs threshold", "e", precision))

print("\nautomatic parameter selection (closest point to the (1,1)")
print("corner of precision-recall space, as in paper §4.3):")
result = autotune(lexicon, THRESHOLDS, COSTS)
best = result.best
print(
    f"  chosen: threshold={best.threshold:g}, "
    f"intra_cluster_cost={best.intra_cluster_cost:g} "
    f"-> recall={best.recall:.3f}, precision={best.precision:.3f}"
)
print(
    "\nUse the result directly:\n"
    "  matcher = LexEqualMatcher(result.config)"
)
