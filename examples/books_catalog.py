"""The Books.com scenario — the paper's running example (Figures 1-5).

A multilingual product catalog is queried with the LexEQUAL SQL
extension: one query string in one script retrieves the author's works
in every script.  Runs the exact SQL of paper Figures 3 and 5.

Run:  python examples/books_catalog.py
"""

from repro import Database, LangText, install_lexequal
from repro.minidb.schema import Column
from repro.minidb.values import SqlType

db = Database()
install_lexequal(db)

# --- The catalog of paper Figure 1 --------------------------------------
db.create_table(
    "books",
    [
        Column("author", SqlType.LANGTEXT),
        Column("author_fn", SqlType.LANGTEXT),
        Column("title", SqlType.TEXT),
        Column("price", SqlType.TEXT),
        Column("language", SqlType.TEXT),
    ],
)
CATALOG = [
    ("Descartes", "René", "french", "Les Méditations Metaphysiques", "€ 49.00"),
    ("நேரு", "ஜவஹர்லால்", "tamil", "ஆசிய ஜோதி", "INR 250"),
    ("Σαρρη", "Κατερινα", "greek", "Παιχνίδια στο Πιάνο", "€ 15.50"),
    ("Nero", "Bicci", "english", "The Coronation of the Virgin", "$ 99.00"),
    ("Nehru", "Jawaharlal", "english", "Discovery of India", "$ 9.95"),
    ("नेहरु", "जवाहरलाल", "hindi", "भारत एक खोज", "INR 175"),
]
for author, first_name, language, title, price in CATALOG:
    db.insert(
        "books",
        (
            LangText(author, language),
            LangText(first_name, language),
            title,
            price,
            language,
        ),
    )

# --- Paper Figure 3: the LexEQUAL selection -----------------------------
print("Query (paper Figure 3):")
sql = (
    "select Author, Title, Price from Books "
    "where Author LexEQUAL 'Nehru' Threshold 0.25 "
    "inlanguages { English, Hindi, Tamil, Greek }"
)
print(" ", sql, "\n")
result = db.execute(sql)
print("Result (paper Figure 4):")
for author, title, price in result:
    print(f"  {str(author):12s} {title:20s} {price}")

# --- Contrast: what SQL:1999 equality sees ------------------------------
plain = db.execute("SELECT title FROM books WHERE language = 'english'")
print(
    "\nNative '=' comparison would need the query string retyped in "
    "every script (paper Figure 2); LexEQUAL needed one."
)

# --- Paper Figure 5: the multiscript equi-join ---------------------------
print("\nAuthors published in multiple languages (paper Figure 5):")
join_sql = (
    "select B1.Author, B2.Author from Books B1, Books B2 "
    "where B1.Author LexEQUAL B2.Author Threshold 0.25 "
    "and B1.Language <> B2.Language"
)
result = db.execute(join_sql)
seen = set()
for left, right in result:
    key = tuple(sorted((str(left), str(right))))
    if key not in seen:
        seen.add(key)
        print(f"  {str(left):12s} <-> {str(right)}")

# --- Threshold tuning ----------------------------------------------------
print("\nThe Threshold knob (paper: 'fine-tune the quality of output'):")
for threshold in (0.1, 0.25, 0.5):
    result = db.execute(
        "SELECT author FROM books WHERE author LEXEQUAL 'Nehru' "
        "THRESHOLD :e",
        e=threshold,
    )
    names = ", ".join(str(row[0]) for row in result)
    print(f"  e={threshold:<5} -> {names}")
