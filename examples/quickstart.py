"""Quickstart: match proper names across scripts in a few lines.

Run:  python examples/quickstart.py
"""

from repro import LangText, LexEqualMatcher, MatchConfig

matcher = LexEqualMatcher()  # paper-recommended defaults

# --- 1. Compare two names, languages detected from the script ----------
print("Does 'Nehru' match 'नेहरु'? ->", matcher.matches("Nehru", "नेहरु"))
print("Does 'Nehru' match 'Nero'?  ->", matcher.matches("Nehru", "Nero"))

# --- 2. Tag languages explicitly when the script is ambiguous ----------
jesus_en = LangText("Jesus", "english")
jesus_es = LangText("Jesus", "spanish")
print(
    "\nLanguage-dependent vocalization (paper §2.1):",
    f"\n  english: /{matcher.ipa(jesus_en)}/",
    f"\n  spanish: /{matcher.ipa(jesus_es)}/",
)

# --- 3. See *why* a pair matched (or didn't) ----------------------------
print("\nExplanations:")
for pair in [
    ("Nehru", LangText("नेहरु", "hindi")),
    ("Nehru", LangText("நேரு", "tamil")),
    ("Catherine", "Kathy"),
]:
    print(" ", matcher.explain(*pair))

# --- 4. Search a list of multiscript candidates -------------------------
candidates = [
    LangText("नेहरु", "hindi"),
    LangText("நேரு", "tamil"),
    LangText("Νερου", "greek"),
    "Nero",
    "Smith",
]
print("\nWho sounds like 'Nehru'?")
for hit in matcher.search("Nehru", candidates):
    print("  match:", hit)

# --- 5. The paper's opening example: Arabic script ----------------------
print("\nThe paper's opening example (Arabic is an abjad; short vowels")
print("are inferred and discounted by the matcher):")
print("  Muhammad ~ محمد :", matcher.matches("Muhammad", "محمد"))
print("  Karim    ~ كريم :", matcher.matches("Karim", "كريم"))
watch = LexEqualMatcher(MatchConfig(threshold=0.45))
print("  Al-Qaeda ~ القاعدة (e=0.45):",
      watch.matches("Al-Qaeda", "القاعدة"))

# --- 6. Tune the knobs (paper Figure 11/12) -----------------------------
loose = LexEqualMatcher(MatchConfig(threshold=0.5))
print(
    "\nAt threshold 0.5, even Nero matches:",
    loose.matches("Nehru", "Nero"),
)
