"""A tour of the phonetic substrate underneath LexEQUAL.

Shows each stage the operator composes: text-to-phoneme conversion per
script, folding onto the matching alphabet, phoneme clustering, the
clustered edit distance, q-grams and the grouped phonetic key — the
ontology of paper Figure 6 made concrete.

Run:  python examples/phonetic_pipeline.py
"""

from repro.core import MatchConfig
from repro.matching.editdist import distance_matrix, edit_distance
from repro.matching.qgrams import positional_qgrams
from repro.phonetics.clusters import auto_clustering, default_clustering
from repro.phonetics.keys import grouped_key, grouped_key_string, soundex
from repro.ttp.registry import default_registry, transform

registry = default_registry()

# --- 1. Text -> phonemes, per script ------------------------------------
print("1. Text-to-Phoneme conversion (paper Figure 9 style):")
SAMPLES = [
    ("University", "english"),
    ("नेहरु", "hindi"),
    ("நேரு", "tamil"),
    ("École", "french"),
    ("Νερου", "greek"),
    ("Español", "spanish"),
]
for text, language in SAMPLES:
    raw = registry.converter_for(language).to_phonemes(text)
    folded = transform(text, language)
    print(
        f"  {text:12s} ({language:8s}) raw /{''.join(raw)}/ "
        f"-> folded /{''.join(folded)}/"
    )

# --- 2. Phoneme clusters (Soundex extended to phoneme space) ------------
print("\n2. Default phoneme clustering:")
clustering = default_clustering()
for symbol in ("p", "t", "tʃ", "m", "r", "a", "i"):
    members = clustering.members(clustering.cluster_id(symbol))
    print(f"  cluster of /{symbol}/: {' '.join(members[:12])}")

print("\n   ... and one derived automatically from feature similarity:")
auto = auto_clustering(0.8, symbols=("p", "b", "t", "d", "m", "n", "a", "e"))
print(f"  auto-clusters: p~b: {auto.same_cluster('p', 'b')}, "
      f"p~m: {auto.same_cluster('p', 'm')}")

# --- 3. The clustered edit distance -------------------------------------
print("\n3. Clustered edit distance (paper Figure 8):")
config = MatchConfig()
costs = config.cost_model()
nehru_en = transform("Nehru", "english")
nehru_hi = transform("नेहरु", "hindi")
print(f"  /{''.join(nehru_en)}/ vs /{''.join(nehru_hi)}/")
print(f"  distance = {edit_distance(nehru_en, nehru_hi, costs)}")
print(f"  budget   = {config.budget(len(nehru_en), len(nehru_hi))}")
matrix = distance_matrix(nehru_en, nehru_hi, costs)
print("  DP matrix last row:", [f"{v:.2f}" for v in matrix[-1]])

# --- 4. Positional q-grams (the Table 2 filters) ------------------------
print("\n4. Positional q-grams of the query (paper footnote 4):")
for gram in positional_qgrams(nehru_en, 2):
    print(f"  ({gram.pos}, {''.join(gram.gram)})", end="")
print()

# --- 5. Phonetic keys (the Table 3 index) -------------------------------
print("\n5. Grouped phoneme string identifiers (paper §5.3):")
for text, language in [("Nehru", "english"), ("नेहरु", "hindi"),
                       ("நேரு", "tamil"), ("Nero", "english")]:
    phonemes = transform(text, language)
    print(
        f"  {text:8s} key={grouped_key(phonemes, clustering):>8} "
        f"({grouped_key_string(phonemes, clustering)})"
    )
print("\n   classical Soundex, for comparison:")
for name in ("Nehru", "Nero", "Robert", "Rupert"):
    print(f"  {name:8s} -> {soundex(name)}")
