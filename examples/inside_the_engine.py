"""Inside-the-engine acceleration — the paper's §6 future work, live.

The paper deployed LexEQUAL as a UDF and observed that the optimizer
treated it as an opaque predicate ("no optimization was done on the UDF
call").  Here the same SQL runs three ways against the same table:
unaccelerated, with a planner-integrated q-gram accelerator (lossless),
and with a planner-integrated phonetic index (fastest, may dismiss).

Run:  python examples/inside_the_engine.py
"""

import time

from repro import Database, install_lexequal
from repro.core import create_phonetic_accelerator
from repro.data.generator import generate_performance_dataset
from repro.data.lexicon import build_lexicon

SQL = "SELECT name FROM names WHERE name LEXEQUAL 'KrishnaMohan' THRESHOLD 0.25"


def build_database() -> Database:
    db = Database()
    install_lexequal(db)
    db.execute("CREATE TABLE names (name TEXT, language TEXT)")
    lexicon = build_lexicon(limit_per_domain=60)
    for item in generate_performance_dataset(lexicon, 1200):
        db.insert("names", (item.name, item.language))
    db.insert("names", ("KrishnaMohan", "english"))
    db.insert("names", ("कृष्णमोहन", "hindi"))
    return db


def timed(db: Database, label: str) -> None:
    start = time.perf_counter()
    rows = db.execute(SQL)
    elapsed = time.perf_counter() - start
    names = ", ".join(str(r[0]) for r in rows)
    print(f"  {label:34s} {elapsed * 1e3:8.1f} ms  -> {names}")


print("loading ~1200 rows into three databases...\n")

plain = build_database()
qgram = build_database()
index = build_database()
create_phonetic_accelerator(qgram, "names", "name", method="qgram")
create_phonetic_accelerator(index, "names", "name", method="index")

print(f"query: {SQL}\n")
timed(plain, "outside-the-server UDF (full scan)")
timed(qgram, "inside-the-engine, q-gram (lossless)")
timed(index, "inside-the-engine, phonetic index")

print("\nmaintenance is automatic — insert a new spelling and re-query:")
qgram.execute("INSERT INTO names VALUES ('KrishnaMohun', 'english')")
timed(qgram, "q-gram after INSERT")
