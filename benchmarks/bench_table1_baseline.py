"""Table 1: native exact matching vs the naive LexEQUAL UDF.

Regenerates the paper's Table 1:

    Query  Matching Methodology         Time
    Scan   Exact (= Operator)           0.59 Sec
    Scan   Approximate (LexEQUAL UDF)   1418 Sec
    Join   Exact (= Operator)           0.20 Sec
    Join   Approximate (LexEQUAL UDF)   4004 Sec

The claim under reproduction is the *orders-of-magnitude gap* between
native equality and the full-DP UDF, for both a full-table selection
scan and a (subset) self equi-join — not the absolute 2004 Oracle
numbers.  The paper ran the UDF join on a 0.2% subset; the benchmark
join catalog plays the same role (REPRO_BENCH_JOIN rows).
"""

from repro.core import NaiveUdfStrategy
from repro.evaluation.report import format_table, seconds

from conftest import (
    BENCH_JOIN_SIZE,
    BENCH_SIZE,
    SELECT_QUERIES,
    save_result,
)

#: Paper-reported wall clock (2004 Oracle 9i, 200k rows / 400-row join).
PAPER = {
    "exact_scan": 0.59,
    "naive_scan": 1418.0,
    "exact_join": 0.20,
    "naive_join": 4004.0,
}


def test_table1_baseline(benchmark, perf_catalog, baseline_times):
    rows = []
    for key, query, method in [
        ("exact_scan", "Scan", "Exact (= operator)"),
        ("naive_scan", "Scan", "Approximate (LexEQUAL UDF)"),
        ("exact_join", "Join", "Exact (= operator)"),
        ("naive_join", "Join", "Approximate (LexEQUAL UDF)"),
    ]:
        run = baseline_times[key]
        rows.append(
            [
                query,
                method,
                seconds(run.seconds),
                f"{PAPER[key]:g} s",
                str(run.result_count),
                str(run.stats.udf_calls),
            ]
        )
    scan_gap = (
        baseline_times["naive_scan"].seconds
        / baseline_times["exact_scan"].seconds
    )
    join_gap = (
        baseline_times["naive_join"].seconds
        / max(baseline_times["exact_join"].seconds, 1e-9)
    )
    text = "\n".join(
        [
            format_table(
                ["Query", "Matching Methodology", "Time",
                 "Paper time", "Results", "UDF calls"],
                rows,
                title=(
                    "Table 1 — Relative Performance of Approximate "
                    f"Matching ({BENCH_SIZE} scan rows, "
                    f"{BENCH_JOIN_SIZE} join rows)"
                ),
            ),
            "",
            f"UDF scan is {scan_gap:,.0f}x slower than exact scan "
            "(paper: ~2400x)",
            f"UDF join is {join_gap:,.0f}x slower than exact join "
            "(paper: ~20000x, on its subset)",
        ]
    )
    save_result("table1_baseline.txt", text)

    # The headline: orders of magnitude between exact and UDF.
    assert scan_gap > 50
    assert join_gap > 100
    # Exact matching cannot see across scripts; the UDF can.
    assert (
        baseline_times["naive_scan"].result_count
        >= baseline_times["exact_scan"].result_count
    )

    # benchmark one naive-UDF selection (the paper's slow row).
    strategy = NaiveUdfStrategy(perf_catalog)
    benchmark.pedantic(
        lambda: strategy.select(SELECT_QUERIES[0]), rounds=1, iterations=1
    )
