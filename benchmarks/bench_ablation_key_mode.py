"""Ablation: grouped-key construction (consonant skeleton vs full string).

Paper Section 5.3 notes that "a more robust grouping of like phonemes
may reduce this drop in quality" — the skeleton key (Soundex-style:
vowels and laryngeals skipped) is this library's instance of that idea.
The bench quantifies the trade: the full key probes smaller buckets
(fewer UDF calls) but dismisses far more true matches.
"""

from repro.core import MatchConfig
from repro.evaluation.quality import phonetic_index_dismissals
from repro.evaluation.report import format_table

from conftest import PERF_CONFIG, save_result


def test_ablation_key_mode(benchmark, lexicon):
    rows = []
    rates = {}
    for mode in ("skeleton", "full"):
        config = MatchConfig(
            threshold=PERF_CONFIG.threshold,
            intra_cluster_cost=PERF_CONFIG.intra_cluster_cost,
            weak_indel_cost=PERF_CONFIG.weak_indel_cost,
            vowel_cross_cost=PERF_CONFIG.vowel_cross_cost,
            key_mode=mode,
        )
        dismissed, reported, rate = phonetic_index_dismissals(
            lexicon, config
        )
        rates[mode] = rate
        rows.append(
            [mode, str(reported), str(dismissed), f"{rate:.1%}"]
        )
    # Also at the fuzzy default configuration.
    for mode in ("skeleton", "full"):
        config = MatchConfig(key_mode=mode)
        dismissed, reported, rate = phonetic_index_dismissals(
            lexicon, config
        )
        rows.append(
            [f"{mode} (fuzzy)", str(reported), str(dismissed), f"{rate:.1%}"]
        )
    text = format_table(
        ["key mode", "true matches", "dismissed", "dismissal rate"],
        rows,
        title=(
            "Ablation — phonetic index key construction "
            "(paper reports 4-5% dismissals for its grouped key)"
        ),
    )
    save_result("ablation_key_mode.txt", text)

    # The skeleton key must dominate the full key on dismissals.
    assert rates["skeleton"] < rates["full"]
    # And land near the paper's 4-5% under the classical metric.
    assert rates["skeleton"] < 0.12

    benchmark.pedantic(
        lambda: phonetic_index_dismissals(lexicon, PERF_CONFIG),
        rounds=1,
        iterations=1,
    )
