"""Ablation: q-gram filter domain (cluster space vs raw phonemes).

DESIGN.md §3: with a fractional intra-cluster cost the classical filter
bound must either be scaled by the minimum operation cost (raw phoneme
domain) or applied in cluster space where intra-cluster substitutions
vanish.  This bench measures the candidate-set selectivity of both
domains at the fuzzy default configuration — and checks that both remain
sound (identical final results to the naive strategy).
"""

from repro.core import (
    LexEqualMatcher,
    MatchConfig,
    NaiveUdfStrategy,
    NameCatalog,
    QGramStrategy,
)
from repro.evaluation.report import format_table
from repro.evaluation.timing import time_select

from conftest import save_result

QUERIES = ["NehruGandhi", "KrishnaMohan", "MeenaRaghav"]


def _catalog(config, perf_dataset, size=800):
    catalog = NameCatalog(LexEqualMatcher(config))
    for item in perf_dataset[:size]:
        catalog.add(item.name, item.language, ipa=item.ipa)
    for query in QUERIES:
        catalog.add(query, "english")
    return catalog


def test_ablation_qgram_domain(benchmark, perf_dataset):
    fuzzy = dict(threshold=0.25, intra_cluster_cost=0.25)
    cluster_catalog = _catalog(
        MatchConfig(qgram_domain="cluster", **fuzzy), perf_dataset
    )
    phoneme_catalog = _catalog(
        MatchConfig(qgram_domain="phoneme", **fuzzy), perf_dataset
    )

    rows = []
    results = {}
    for label, catalog in [
        ("cluster", cluster_catalog),
        ("phoneme", phoneme_catalog),
    ]:
        naive = time_select(NaiveUdfStrategy(catalog), QUERIES)
        qgram = time_select(QGramStrategy(catalog), QUERIES)
        results[label] = (naive, qgram)
        rows.append(
            [
                label,
                str(qgram.stats.candidates_after_filters),
                str(naive.stats.rows_considered),
                f"{qgram.seconds * 1e3:.1f} ms",
                str(qgram.result_count),
            ]
        )
    text = format_table(
        ["filter domain", "candidates after filters", "rows scanned",
         "q-gram time", "results"],
        rows,
        title=(
            "Ablation — q-gram filter domain at the fuzzy default "
            "configuration (threshold 0.25, intra-cluster cost 0.25)"
        ),
    )
    save_result("ablation_qgram_domain.txt", text)

    for label, (naive, qgram) in results.items():
        # Soundness in both domains: same result count as the UDF scan.
        assert qgram.result_count == naive.result_count, label
        # And real pruning relative to a full scan.
        assert (
            qgram.stats.candidates_after_filters
            < naive.stats.rows_considered * 0.9
        ), label
    # The ablation's finding: cluster-space filters prune far better
    # under fractional costs, because intra-cluster substitutions vanish
    # instead of inflating the operation bound k.
    assert (
        results["cluster"][1].stats.candidates_after_filters
        < results["phoneme"][1].stats.candidates_after_filters
    )

    strategy = QGramStrategy(cluster_catalog)
    benchmark.pedantic(
        lambda: strategy.select(QUERIES[0]), rounds=3, iterations=1
    )
