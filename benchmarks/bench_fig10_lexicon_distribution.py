"""Figure 10: length distribution of the multiscript quality lexicon.

Regenerates the paper's Figure 10 — the frequency distribution of the
tagged lexicon by string length, in both lexicographic and phonemic
representations — and reports the average lengths (paper: 7.35
lexicographic, 7.16 phonemic).
"""

from repro.data.lexicon import build_lexicon
from repro.evaluation.report import format_histogram

from conftest import save_result


def test_fig10_lexicon_distribution(benchmark, lexicon):
    lex_hist = lexicon.length_histogram("lexicographic")
    pho_hist = lexicon.length_histogram("phonemic")
    lex_avg, pho_avg = lexicon.average_lengths()

    lines = [
        "Figure 10 — Distribution of the Multiscript Lexicon",
        f"entries: {len(lexicon)} "
        f"({len(lexicon.groups())} tagged groups, "
        f"languages: {', '.join(lexicon.languages())})",
        f"average lexicographic length: {lex_avg:.2f}   (paper: 7.35)",
        f"average phonemic length:      {pho_avg:.2f}   (paper: 7.16)",
        "",
        format_histogram("Lexicographic representation", lex_hist),
        "",
        format_histogram("Phonemic representation", pho_hist),
    ]
    save_result("fig10_lexicon_distribution.txt", "\n".join(lines))

    # Sanity: phonemic length tracks lexicographic length, as in the
    # paper ("their character lengths are similar").
    assert abs(lex_avg - pho_avg) < 2.0
    assert sum(lex_hist.values()) == len(lexicon)

    # The benchmarked operation: building the full lexicon from scratch
    # (name lists -> transliteration -> three G2P passes).
    benchmark.pedantic(
        lambda: build_lexicon(limit_per_domain=40), rounds=3, iterations=1
    )
