"""Figure 11: recall and precision vs user match threshold.

Regenerates both panels of the paper's Figure 11: recall and precision
of all-pairs multiscript matching over the tagged lexicon, as functions
of the user match threshold, for intra-cluster substitution costs
{0, 0.25, 0.5, 0.75, 1}.

Expected shapes (paper Section 4.3):

* recall improves with threshold and "asymptotically reaches perfect
  recall after a value of 0.5";
* recall gets better as the intra-cluster cost drops (the Soundex
  assumption);
* precision drops with threshold — negligibly below ~0.2, rapidly in
  0.2-0.5 — and collapses earliest for cost 0.
"""

import pytest

from repro.core import MatchConfig
from repro.evaluation.quality import sweep_quality
from repro.evaluation.report import format_series

from conftest import save_result

THRESHOLDS = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.8]
COSTS = [0.0, 0.25, 0.5, 0.75, 1.0]


@pytest.fixture(scope="module")
def sweep(lexicon):
    return sweep_quality(lexicon, THRESHOLDS, COSTS)


def test_fig11_recall_and_precision_curves(benchmark, lexicon, sweep):
    recall_series = {}
    precision_series = {}
    for point in sweep:
        label = f"cost={point.intra_cluster_cost:g}"
        recall_series.setdefault(label, []).append(
            (point.threshold, point.recall)
        )
        precision_series.setdefault(label, []).append(
            (point.threshold, point.precision)
        )
    text = "\n\n".join(
        [
            "Figure 11 — Recall and Precision Graphs",
            format_series(
                "Recall vs user match threshold", "e", recall_series
            ),
            format_series(
                "Precision vs user match threshold", "e", precision_series
            ),
        ]
    )
    save_result("fig11_recall_precision.txt", text)

    by = {(p.intra_cluster_cost, p.threshold): p for p in sweep}

    # Recall rises with threshold for every cost.
    for cost in COSTS:
        recalls = [by[(cost, e)].recall for e in THRESHOLDS]
        assert recalls == sorted(recalls), f"recall not monotone at {cost}"

    # Recall asymptotically reaches ~perfect past 0.5 for low costs.
    assert by[(0.0, 0.8)].recall > 0.99
    assert by[(0.25, 0.8)].recall > 0.97

    # Lower intra-cluster cost -> better recall (Soundex assumption).
    for e in [0.2, 0.3, 0.4]:
        recalls_by_cost = [by[(c, e)].recall for c in COSTS]
        assert recalls_by_cost == sorted(recalls_by_cost, reverse=True)

    # Precision drops with threshold (up to the paper's "negligible"
    # wiggle in the flat sub-0.2 region); the cost-0 curve collapses
    # fastest.
    for cost in COSTS:
        precisions = [by[(cost, e)].precision for e in THRESHOLDS]
        for earlier, later in zip(precisions, precisions[1:]):
            assert later <= earlier + 0.01, (cost, precisions)
        assert precisions[-1] < precisions[0] / 2
    assert by[(0.0, 0.35)].precision < by[(0.5, 0.35)].precision

    # Benchmark: one full-cost distance-matrix evaluation (the unit of
    # work behind each curve).
    config = MatchConfig(intra_cluster_cost=0.25)
    from repro.evaluation.quality import evaluate_quality

    benchmark.pedantic(
        lambda: evaluate_quality(lexicon, config), rounds=1, iterations=1
    )
