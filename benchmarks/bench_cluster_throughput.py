"""Cluster serving throughput: router cache QPS + degraded-mode tails.

Beyond the paper: DESIGN.md §11's serving claim is that a 4-shard
cluster front-ended by the router's TTL result cache beats the
single-process server on the workload multiscript name services
actually see — *hot-name skew*, the same few names asked over and over
in every script.  On a single-core CI box the shards cannot add CPU,
so the win must come (and is honestly labeled as coming) from the
router answering repeats without re-running phonetic DP anywhere.

Three phases, all seeded:

1. **single** — a :class:`BackgroundServer` over the Books.com demo
   serves a Zipf-skewed LEXEQUAL workload; every answer is checked.
2. **cluster** — a 4-shard :class:`BackgroundCluster` (router cache
   TTL covering the run) serves the *same* workload.  Acceptance:
   cluster QPS ≥ 2x single-process QPS.
3. **degraded** — one shard is killed and held down while uncacheable
   (distinct-threshold) queries fan out.  Acceptance: every response
   is labeled degraded with the dead shard named, and p99 stays under
   the per-shard deadline budget — a lost shard costs one budget, not
   a hung fan-out.

Writes ``results/cluster_throughput.{txt,json}`` and
``BENCH_cluster.json`` at the repo root (uploaded by the
``cluster-smoke`` CI job).  Knobs: ``REPRO_BENCH_CLUSTER_REQS``
(requests per phase, default 600), ``REPRO_BENCH_CLUSTER_CLIENTS``
(concurrent clients, default 4).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.evaluation.report import format_table
from repro.server import (
    BackgroundServer,
    LexEqualClient,
    RetryPolicy,
)

from conftest import bench_rng, save_result

ROOT = Path(__file__).resolve().parent.parent

REQUESTS = int(os.environ.get("REPRO_BENCH_CLUSTER_REQS", "600"))
CLIENTS = int(os.environ.get("REPRO_BENCH_CLUSTER_CLIENTS", "4"))
SHARDS = 4
#: Failure-phase request timeout; the per-shard budget is 0.8x this.
FAILURE_TIMEOUT = 2.0

#: The hot queries (name, threshold) and their full LEXEQUAL answers
#: over the demo catalog.  Zipf weights 1/rank: the head query
#: dominates, exactly the skew the router cache exists for.
HOT_QUERIES = [
    (("Nehru", 0.25), {"Nehru", "नेहरु", "நேரு"}),
    (("Nero", 0.25), {"Nero"}),
    (("Nehru", 0.1), {"Nehru", "नेहरु"}),
    (("Σαρρη", 0.25), {"Σαρρη"}),
]


def lexequal_sql(name: str, threshold: float = 0.25) -> str:
    escaped = name.replace("'", "''")
    return (
        f"SELECT author FROM books "
        f"WHERE author LEXEQUAL '{escaped}' THRESHOLD {threshold}"
    )


def zipf_workload(count: int, salt: int) -> list[tuple[str, set]]:
    rng = bench_rng(salt)
    weights = [1.0 / rank for rank in range(1, len(HOT_QUERIES) + 1)]
    picks = rng.choices(range(len(HOT_QUERIES)), weights, k=count)
    return [
        (lexequal_sql(*HOT_QUERIES[i][0]), HOT_QUERIES[i][1])
        for i in picks
    ]


def percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


def drive(host: str, port: int, workload) -> tuple[float, list[float]]:
    """Run the workload over ``CLIENTS`` connections; (qps, latencies)."""
    deals = [workload[i::CLIENTS] for i in range(CLIENTS)]
    latencies: list[float] = []
    wrong: list = []

    def client_main(specs):
        local: list[float] = []
        with LexEqualClient(host, port, timeout=60.0) as client:
            for sql, expected in specs:
                started = time.perf_counter()
                result = client.query(sql)
                local.append(time.perf_counter() - started)
                got = {row[0]["text"] for row in result["rows"]}
                if got != expected or result.get("degraded"):
                    wrong.append((sql, got))
        latencies.extend(local)  # one append per client: no torn lists

    threads = [
        threading.Thread(target=client_main, args=(deal,))
        for deal in deals
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert not wrong, f"wrong results: {wrong[:5]}"
    assert len(latencies) == len(workload)
    latencies.sort()
    return len(workload) / elapsed, latencies


def test_cluster_throughput():
    from repro.cluster import BackgroundCluster

    workload = zipf_workload(REQUESTS, salt=11)
    data: dict = {
        "requests": REQUESTS,
        "clients": CLIENTS,
        "shards": SHARDS,
    }

    # Phase 1 — single process, same catalog, same workload.
    with BackgroundServer(max_workers=4, max_inflight=64) as bg:
        with LexEqualClient(bg.host, bg.port) as warm:
            for spec, _ in HOT_QUERIES:
                warm.query(lexequal_sql(*spec))
        single_qps, single_lat = drive(bg.host, bg.port, workload)
    data["single"] = {
        "qps": single_qps,
        "p50_ms": percentile(single_lat, 0.50) * 1e3,
        "p99_ms": percentile(single_lat, 0.99) * 1e3,
    }

    # Phases 2 and 3 share one 4-shard cluster.  The failure-phase
    # restart backoff is long so the killed shard *stays* down while
    # the degraded tail is measured.
    cluster = BackgroundCluster(
        SHARDS,
        supervisor_options={
            "health_interval": 0.25,
            "restart_policy": RetryPolicy(
                max_attempts=100, base_delay=60.0,
                multiplier=1.0, max_delay=60.0,
            ),
        },
        request_timeout=FAILURE_TIMEOUT,
        cache_ttl=300.0,  # steady-state: the TTL covers the run
    )
    with cluster:
        with LexEqualClient(cluster.host, cluster.port) as warm:
            for spec, _ in HOT_QUERIES:
                warm.query(lexequal_sql(*spec))
        cluster_qps, cluster_lat = drive(
            cluster.host, cluster.port, workload
        )
        with LexEqualClient(cluster.host, cluster.port) as control:
            cache_info = control.health()["cache"]

        # Phase 3 — kill one shard, hold it down, and fan out
        # uncacheable queries (distinct thresholds defeat the cache).
        cluster.supervisor.kill_shard(1)
        deadline = time.monotonic() + 30.0
        while (
            cluster.supervisor.shards[1].state == "up"
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        degraded_lat: list[float] = []
        with LexEqualClient(
            cluster.host, cluster.port, timeout=60.0
        ) as client:
            for i in range(max(50, REQUESTS // 4)):
                sql = lexequal_sql("Nehru", 0.25 + (i + 1) * 1e-6)
                started = time.perf_counter()
                result = client.query(sql)
                degraded_lat.append(time.perf_counter() - started)
                assert result.get("degraded"), result
                assert result["failed_shards"] == ["shard-1"], result
        degraded_lat.sort()

    budget_ms = FAILURE_TIMEOUT * 0.8 * 1e3
    data["cluster"] = {
        "qps": cluster_qps,
        "p50_ms": percentile(cluster_lat, 0.50) * 1e3,
        "p99_ms": percentile(cluster_lat, 0.99) * 1e3,
        "cache": cache_info,
    }
    data["speedup_vs_single"] = cluster_qps / single_qps
    data["degraded"] = {
        "requests": len(degraded_lat),
        "p50_ms": percentile(degraded_lat, 0.50) * 1e3,
        "p99_ms": percentile(degraded_lat, 0.99) * 1e3,
        "shard_budget_ms": budget_ms,
    }

    rows = [
        [
            "single (1 proc)",
            f"{single_qps:,.0f}",
            f"{data['single']['p50_ms']:.2f}",
            f"{data['single']['p99_ms']:.2f}",
        ],
        [
            f"cluster ({SHARDS} shards, cached)",
            f"{cluster_qps:,.0f}",
            f"{data['cluster']['p50_ms']:.2f}",
            f"{data['cluster']['p99_ms']:.2f}",
        ],
        [
            "cluster, 1 shard dead (uncached)",
            "-",
            f"{data['degraded']['p50_ms']:.2f}",
            f"{data['degraded']['p99_ms']:.2f}",
        ],
    ]
    text = format_table(
        ["Configuration", "QPS", "p50 ms", "p99 ms"],
        rows,
        title=(
            f"Cluster serving — Zipf hot-name workload "
            f"({REQUESTS} requests, {CLIENTS} clients; cluster speedup "
            f"{data['speedup_vs_single']:.1f}x, degraded p99 budget "
            f"{budget_ms:.0f} ms)"
        ),
    )
    save_result("cluster_throughput.txt", text, data)
    (ROOT / "BENCH_cluster.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[saved to {ROOT / 'BENCH_cluster.json'}]")

    # Acceptance: the cached ring answers hot names at least twice as
    # fast as the single process re-running phonetic DP per request...
    assert data["speedup_vs_single"] >= 2.0, data
    assert cache_info["hits"] > 0, cache_info
    # ...and losing a shard costs at most the per-shard budget per
    # request — degraded fan-outs fail fast, they do not hang.
    assert data["degraded"]["p99_ms"] <= budget_ms, data["degraded"]
