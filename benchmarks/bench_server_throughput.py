"""Server throughput: latency percentiles and QPS vs client concurrency.

Beyond the paper: the ROADMAP's north star is a network *service*, so
this benchmark measures the serving layer itself.  A
:class:`~repro.server.app.BackgroundServer` hosts the Books.com demo
catalog with the q-gram accelerator, and a load generator sweeps client
concurrency, each client issuing a mixed workload (accelerated LexEQUAL
selections + direct ``lexequal`` comparisons) over its own connection.

Reported per concurrency level: requests/sec and p50/p95/p99 request
latency, plus a correctness tally (every response is checked against
the known answer — a wrong result fails the benchmark).  Environment
knobs: ``REPRO_BENCH_SERVER_CONC`` (comma-separated sweep, default
``1,2,4,8``), ``REPRO_BENCH_SERVER_REQS`` (requests per client,
default 30), ``REPRO_BENCH_SERVER_WORKERS`` (pool threads, default 4).
"""

from __future__ import annotations

import os
import threading
import time

from repro.evaluation.report import format_table
from repro.server import BackgroundServer, LexEqualClient

from conftest import save_result

CONCURRENCIES = [
    int(c)
    for c in os.environ.get("REPRO_BENCH_SERVER_CONC", "1,2,4,8").split(",")
    if c
]
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_SERVER_REQS", "30"))
WORKERS = int(os.environ.get("REPRO_BENCH_SERVER_WORKERS", "4"))

LEXEQUAL_SQL = (
    "SELECT author FROM books "
    "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
)
EXPECTED_AUTHORS = {"Nehru", "नेहरु", "நேரு"}


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[rank]


def run_client(
    host: str, port: int, latencies: list[float], wrong: list
) -> None:
    """One load-generator client: mixed query/lexequal workload."""
    local: list[float] = []
    with LexEqualClient(host, port, timeout=120.0) as client:
        for i in range(REQUESTS_PER_CLIENT):
            started = time.perf_counter()
            if i % 3 == 2:
                result = client.lexequal("Nehru", "नेहरु")
                ok = result["outcome"] == "true"
            else:
                rows = client.query(LEXEQUAL_SQL)["rows"]
                ok = {row[0]["text"] for row in rows} == EXPECTED_AUTHORS
            local.append(time.perf_counter() - started)
            if not ok:
                wrong.append((i, result if i % 3 == 2 else rows))
    latencies.extend(local)  # one append per client: no torn lists


def test_server_throughput():
    rows = []
    data: dict[str, dict] = {}
    with BackgroundServer(
        max_workers=WORKERS, max_inflight=max(64, 4 * max(CONCURRENCIES))
    ) as bg:
        # Warm the TTP and statement caches so every sweep level sees
        # the steady state a long-running server would.
        with LexEqualClient(bg.host, bg.port) as warm:
            warm.query(LEXEQUAL_SQL)
            warm.lexequal("Nehru", "नेहरु")
        for concurrency in CONCURRENCIES:
            latencies: list[float] = []
            wrong: list = []
            threads = [
                threading.Thread(
                    target=run_client,
                    args=(bg.host, bg.port, latencies, wrong),
                )
                for _ in range(concurrency)
            ]
            started = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - started
            assert not wrong, f"wrong results at concurrency {concurrency}"
            total = concurrency * REQUESTS_PER_CLIENT
            assert len(latencies) == total
            latencies.sort()
            qps = total / elapsed
            p50 = percentile(latencies, 0.50)
            p95 = percentile(latencies, 0.95)
            p99 = percentile(latencies, 0.99)
            rows.append(
                [
                    str(concurrency),
                    str(total),
                    f"{qps:,.0f}",
                    f"{p50 * 1000:.2f}",
                    f"{p95 * 1000:.2f}",
                    f"{p99 * 1000:.2f}",
                ]
            )
            data[str(concurrency)] = {
                "requests": total,
                "qps": qps,
                "p50_ms": p50 * 1000,
                "p95_ms": p95 * 1000,
                "p99_ms": p99 * 1000,
            }
        with LexEqualClient(bg.host, bg.port) as client:
            stats = client.stats()
    text = format_table(
        ["Clients", "Requests", "QPS", "p50 ms", "p95 ms", "p99 ms"],
        rows,
        title=(
            "Server throughput — mixed LexEQUAL workload "
            f"({WORKERS} workers, {REQUESTS_PER_CLIENT} reqs/client)"
        ),
    )
    data["server_stats"] = {
        "statement_cache": stats["statement_cache"],
        "pool": stats["server"]["pool"],
    }
    save_result("server_throughput.txt", text, data)

    # Sanity floor (scaled sizes): the service keeps responding at the
    # highest sweep level and the cache served the repeated statement.
    assert stats["statement_cache"]["hits"] > 0
