"""Parallel executor scaling: a rows × workers sweep with kernel floors.

The paper's Table 1 establishes that the naive UDF scan is the
bottleneck; this bench measures how far the sharded vectorized executor
(`repro.parallel`) moves it.  For every (rows, workers) cell it runs a
seeded query battery through both :class:`NaiveUdfStrategy` and
:class:`ParallelStrategy`, records per-query p50/p95 latency, asserts
the two return *identical* match sets, and reports the speedup.  A
second section times the banded scalar kernel
(``edit_distance_within``) against the reference full DP on the same
seeded pair sample.

Results land in ``results/parallel_scaling.txt`` (+ ``.json``) and in
``BENCH_parallel.json`` at the repo root — the artifact the perf gate
and the acceptance criteria read.

Scale knobs (all comma-lists / ints, all seeded by ``--seed``):

* ``REPRO_BENCH_PARALLEL_ROWS``     catalog sizes        (default ``500,2000``)
* ``REPRO_BENCH_PARALLEL_WORKERS``  pool sizes           (default ``1,2,4``)
* ``REPRO_BENCH_PARALLEL_QUERIES``  battery size         (default ``8``)
* ``REPRO_BENCH_PARALLEL_REPEATS``  timings per query    (default ``2``)
* ``REPRO_BENCH_PARALLEL_KERNEL_PAIRS``  kernel sample   (default ``400``)

The acceptance-scale run (paper-sized catalog) is::

    REPRO_BENCH_PARALLEL_ROWS=200000 REPRO_BENCH_PARALLEL_WORKERS=1,4 \
        python -m pytest benchmarks/bench_parallel_scaling.py -s

at which size the sweep additionally asserts the issue's floors: the
4-worker executor ≥ 3× over the sequential naive scan, and the banded
kernel ≥ 2× over the reference DP.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import LexEqualMatcher, NaiveUdfStrategy, NameCatalog
from repro.data.generator import generate_performance_dataset
from repro.evaluation.report import format_table, seconds
from repro.matching.editdist import edit_distance, edit_distance_within
from repro.parallel import ParallelStrategy

from conftest import PERF_CONFIG, bench_rng, save_result

ROOT = Path(__file__).resolve().parent.parent

#: Scale floors from the issue, asserted only at acceptance scale (the
#: smoke-scale floors below hold at any size).
ACCEPTANCE_ROWS = 200_000
PARALLEL_FLOOR = 3.0
KERNEL_FLOOR = 2.0


def _ints(env: str, default: str) -> list[int]:
    return [int(part) for part in os.environ.get(env, default).split(",")]


ROW_COUNTS = _ints("REPRO_BENCH_PARALLEL_ROWS", "500,2000")
WORKER_COUNTS = _ints("REPRO_BENCH_PARALLEL_WORKERS", "1,2,4")
QUERY_COUNT = int(os.environ.get("REPRO_BENCH_PARALLEL_QUERIES", "8"))
REPEATS = int(os.environ.get("REPRO_BENCH_PARALLEL_REPEATS", "2"))
KERNEL_PAIRS = int(
    os.environ.get("REPRO_BENCH_PARALLEL_KERNEL_PAIRS", "400")
)


def _build_catalog(lexicon, rows: int) -> NameCatalog:
    catalog = NameCatalog(LexEqualMatcher(PERF_CONFIG))
    for item in generate_performance_dataset(lexicon, rows):
        catalog.add(item.name, item.language, ipa=item.ipa)
    return catalog


def _query_battery(catalog: NameCatalog) -> list[str]:
    """Seeded queries: stored English names (guaranteed hits) + a miss."""
    rng = bench_rng(salt=7)
    english = [
        record.name
        for record in catalog.records()
        if record.language == "english"
    ]
    count = min(QUERY_COUNT - 1, len(english))
    return rng.sample(english, count) + ["Zzyzx"]


def _time_select(strategy, queries: list[str]):
    """Per-query wall latencies plus the match-id sets (for equivalence)."""
    latencies: list[float] = []
    results: dict[str, list[int]] = {}
    for query in queries:
        for _ in range(REPEATS):
            start = time.perf_counter()
            matched = strategy.select(query)
            latencies.append(time.perf_counter() - start)
        results[query] = [record.id for record in matched]
    return latencies, results


def _stats(latencies: list[float]) -> dict:
    arr = np.array(latencies)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p95_ms": float(np.percentile(arr, 95) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
        "total_s": float(arr.sum()),
    }


def _sweep_cell(catalog, queries, workers, naive):
    with ParallelStrategy(catalog, workers=workers) as strategy:
        latencies, results = _time_select(strategy, queries)
    assert results == naive["results"], f"divergence at workers={workers}"
    cell = _stats(latencies)
    cell["workers"] = workers
    cell["speedup_vs_naive"] = naive["stats"]["mean_ms"] / cell["mean_ms"]
    return cell


def _kernel_floor(catalog) -> dict:
    """Banded ``edit_distance_within`` vs the reference full DP."""
    rng = bench_rng(salt=13)
    costs = catalog.matcher.costs
    threshold = catalog.config.threshold
    ids = rng.sample(range(len(catalog)), min(len(catalog), 600))
    strings = [catalog.phonemes_of(i) for i in ids]
    pairs = [
        (rng.choice(strings), rng.choice(strings))
        for _ in range(KERNEL_PAIRS)
    ]
    budgets = [threshold * min(len(a), len(b)) for a, b in pairs]

    start = time.perf_counter()
    reference = [edit_distance(a, b, costs) for a, b in pairs]
    ref_seconds = time.perf_counter() - start

    start = time.perf_counter()
    banded = [
        edit_distance_within(a, b, budget, costs)
        for (a, b), budget in zip(pairs, budgets)
    ]
    banded_seconds = time.perf_counter() - start

    # The timing shortcut must not change a single decision.
    for full, within, budget in zip(reference, banded, budgets):
        assert within == (full if full <= budget else None)

    return {
        "pairs": len(pairs),
        "reference_s": ref_seconds,
        "banded_s": banded_seconds,
        "speedup": ref_seconds / max(banded_seconds, 1e-9),
    }


def test_parallel_scaling(benchmark, lexicon):
    sweep = []
    table_rows = []
    kernel = None
    for rows in ROW_COUNTS:
        catalog = _build_catalog(lexicon, rows)
        queries = _query_battery(catalog)
        naive_lat, naive_results = _time_select(
            NaiveUdfStrategy(catalog), queries
        )
        naive = {"stats": _stats(naive_lat), "results": naive_results}
        cells = [
            _sweep_cell(catalog, queries, workers, naive)
            for workers in WORKER_COUNTS
        ]
        sweep.append(
            {"rows": rows, "naive": naive["stats"], "parallel": cells}
        )
        table_rows.append(
            [
                f"{rows}",
                "naive-udf",
                f"{naive['stats']['p50_ms']:.2f}",
                f"{naive['stats']['p95_ms']:.2f}",
                "1.0x",
            ]
        )
        for cell in cells:
            table_rows.append(
                [
                    f"{rows}",
                    f"parallel w={cell['workers']}",
                    f"{cell['p50_ms']:.2f}",
                    f"{cell['p95_ms']:.2f}",
                    f"{cell['speedup_vs_naive']:.1f}x",
                ]
            )
        # The kernel sample only needs one catalog; use the largest.
        if rows == max(ROW_COUNTS):
            kernel = _kernel_floor(catalog)

    text = format_table(
        ["Rows", "Strategy", "p50 ms", "p95 ms", "Speedup vs naive"],
        table_rows,
        title=(
            "Parallel executor scaling "
            f"({QUERY_COUNT} queries x {REPEATS} repeats per cell; "
            f"banded kernel {kernel['speedup']:.1f}x over reference DP "
            f"on {kernel['pairs']} pairs)"
        ),
    )
    data = {
        "row_counts": ROW_COUNTS,
        "worker_counts": WORKER_COUNTS,
        "queries": QUERY_COUNT,
        "repeats": REPEATS,
        "threshold": PERF_CONFIG.threshold,
        "sweep": sweep,
        "kernel": kernel,
    }
    save_result("parallel_scaling.txt", text, data)
    (ROOT / "BENCH_parallel.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[saved to {ROOT / 'BENCH_parallel.json'}]")

    # Smoke-scale floors: some parallel configuration clearly beats the
    # naive scan at every size, and the banded kernel never regresses
    # below the reference DP.
    for entry in sweep:
        best = max(c["speedup_vs_naive"] for c in entry["parallel"])
        assert best > 2.0, f"parallel win collapsed at rows={entry['rows']}"
    assert kernel["speedup"] > 1.2

    # Acceptance-scale floors (issue): at the paper-sized catalog the
    # 4-worker executor is >= 3x the sequential naive scan and the
    # banded kernel >= 2x the reference DP.
    for entry in sweep:
        if entry["rows"] < ACCEPTANCE_ROWS:
            continue
        for cell in entry["parallel"]:
            if cell["workers"] == 4:
                assert cell["speedup_vs_naive"] >= PARALLEL_FLOOR
        assert kernel["speedup"] >= KERNEL_FLOOR

    catalog = _build_catalog(lexicon, min(ROW_COUNTS))
    queries = _query_battery(catalog)
    with ParallelStrategy(catalog, workers=WORKER_COUNTS[0]) as strategy:
        benchmark.pedantic(
            lambda: strategy.select(queries[0]), rounds=3, iterations=1
        )


def test_seeded_battery_is_reproducible(lexicon):
    """Same seed => same workload; the sweep is measuring fixed queries."""
    catalog = _build_catalog(lexicon, min(ROW_COUNTS))
    assert _query_battery(catalog) == _query_battery(catalog)
