"""Parallel executor scaling: a rows × workers sweep with kernel floors.

The paper's Table 1 establishes that the naive UDF scan is the
bottleneck; this bench measures how far the sharded vectorized executor
(`repro.parallel`) moves it.  For every (rows, workers) cell it runs a
seeded query battery through both :class:`NaiveUdfStrategy` and
:class:`ParallelStrategy`, records per-query p50/p95 latency, asserts
the two return *identical* match sets, and reports the speedup.  A
second section times the banded scalar kernel
(``edit_distance_within``) against the reference full DP on the same
seeded pair sample.

Results land in ``results/parallel_scaling.txt`` (+ ``.json``) and in
``BENCH_parallel.json`` at the repo root — the artifact the perf gate
and the acceptance criteria read.

Scale knobs (all comma-lists / ints, all seeded by ``--seed``):

* ``REPRO_BENCH_PARALLEL_ROWS``     catalog sizes        (default ``500,2000``)
* ``REPRO_BENCH_PARALLEL_WORKERS``  pool sizes           (default ``1,2,4``)
* ``REPRO_BENCH_PARALLEL_QUERIES``  battery size         (default ``8``)
* ``REPRO_BENCH_PARALLEL_REPEATS``  timings per query    (default ``2``)
* ``REPRO_BENCH_PARALLEL_KERNEL_PAIRS``  kernel sample   (default ``400``)

The acceptance-scale run (paper-sized catalog) is::

    REPRO_BENCH_PARALLEL_ROWS=200000 REPRO_BENCH_PARALLEL_WORKERS=1,4 \
        python -m pytest benchmarks/bench_parallel_scaling.py -s

at which size the sweep additionally asserts the acceptance floors from
:mod:`repro.perf`: the vectorized batch kernel ≥ 20× over the reference
DP, and — on machines whose ``cpu_count`` can express it — the 4-worker
executor ≥ 3× the 1-worker executor.  ``cpu_count`` is recorded in the
output JSON so a reader always knows whether the scaling number was
physically expressible on the box that produced it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import perf
from repro.core import LexEqualMatcher, NaiveUdfStrategy, NameCatalog
from repro.data.generator import generate_performance_dataset
from repro.evaluation.report import format_table, seconds
from repro.matching.batch import batch_edit_distances_within_encoded
from repro.matching.editdist import edit_distance, edit_distance_within
from repro.parallel import EncodedNameTable, ParallelStrategy

from conftest import PERF_CONFIG, bench_rng, save_result

ROOT = Path(__file__).resolve().parent.parent

#: Acceptance scale: the paper-sized catalog at which the repro.perf
#: acceptance floors are asserted (smoke floors hold at any size).
ACCEPTANCE_ROWS = 200_000


def _ints(env: str, default: str) -> list[int]:
    return [int(part) for part in os.environ.get(env, default).split(",")]


ROW_COUNTS = _ints("REPRO_BENCH_PARALLEL_ROWS", "500,2000")
WORKER_COUNTS = _ints("REPRO_BENCH_PARALLEL_WORKERS", "1,2,4")
QUERY_COUNT = int(os.environ.get("REPRO_BENCH_PARALLEL_QUERIES", "8"))
REPEATS = int(os.environ.get("REPRO_BENCH_PARALLEL_REPEATS", "2"))
KERNEL_PAIRS = int(
    os.environ.get("REPRO_BENCH_PARALLEL_KERNEL_PAIRS", "400")
)


def _build_catalog(lexicon, rows: int) -> NameCatalog:
    catalog = NameCatalog(LexEqualMatcher(PERF_CONFIG))
    for item in generate_performance_dataset(lexicon, rows):
        catalog.add(item.name, item.language, ipa=item.ipa)
    return catalog


def _query_battery(catalog: NameCatalog) -> list[str]:
    """Seeded queries: stored English names (guaranteed hits) + a miss."""
    rng = bench_rng(salt=7)
    english = [
        record.name
        for record in catalog.records()
        if record.language == "english"
    ]
    count = min(QUERY_COUNT - 1, len(english))
    return rng.sample(english, count) + ["Zzyzx"]


def _time_select(strategy, queries: list[str]):
    """Per-query wall latencies plus the match-id sets (for equivalence)."""
    latencies: list[float] = []
    results: dict[str, list[int]] = {}
    for query in queries:
        for _ in range(REPEATS):
            start = time.perf_counter()
            matched = strategy.select(query)
            latencies.append(time.perf_counter() - start)
        results[query] = [record.id for record in matched]
    return latencies, results


def _stats(latencies: list[float]) -> dict:
    arr = np.array(latencies)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p95_ms": float(np.percentile(arr, 95) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
        "total_s": float(arr.sum()),
    }


def _sweep_cell(catalog, queries, workers, naive):
    with ParallelStrategy(catalog, workers=workers) as strategy:
        latencies, results = _time_select(strategy, queries)
    assert results == naive["results"], f"divergence at workers={workers}"
    cell = _stats(latencies)
    cell["workers"] = workers
    cell["speedup_vs_naive"] = naive["stats"]["mean_ms"] / cell["mean_ms"]
    return cell


def _kernel_floor(catalog) -> dict:
    """Banded ``edit_distance_within`` vs the reference full DP."""
    rng = bench_rng(salt=13)
    costs = catalog.matcher.costs
    threshold = catalog.config.threshold
    ids = rng.sample(range(len(catalog)), min(len(catalog), 600))
    strings = [catalog.phonemes_of(i) for i in ids]
    pairs = [
        (rng.choice(strings), rng.choice(strings))
        for _ in range(KERNEL_PAIRS)
    ]
    budgets = [threshold * min(len(a), len(b)) for a, b in pairs]

    start = time.perf_counter()
    reference = [edit_distance(a, b, costs) for a, b in pairs]
    ref_seconds = time.perf_counter() - start

    start = time.perf_counter()
    banded = [
        edit_distance_within(a, b, budget, costs)
        for (a, b), budget in zip(pairs, budgets)
    ]
    banded_seconds = time.perf_counter() - start

    # The timing shortcut must not change a single decision.
    for full, within, budget in zip(reference, banded, budgets):
        assert within == (full if full <= budget else None)

    return {
        "pairs": len(pairs),
        "reference_s": ref_seconds,
        "banded_s": banded_seconds,
        "speedup": ref_seconds / max(banded_seconds, 1e-9),
    }


def _batch_kernel(catalog) -> dict:
    """The vectorized all-candidates kernel vs the reference DP.

    The reference is timed per pair on a seeded sample (running it over
    the full 200k-row table would take minutes for no extra signal);
    the batch kernel is timed on its production shape — one query
    against *every* row at once — and the speedup is the per-pair
    ratio.  A sample of the batch results is re-checked against the
    reference so the timing can never vouch for a diverged kernel.
    """
    rng = bench_rng(salt=17)
    costs = catalog.matcher.costs
    threshold = catalog.config.threshold
    table = EncodedNameTable.from_catalog(catalog)
    sample = rng.sample(range(len(catalog)), min(len(catalog), 1500))
    query_id = sample[0]
    query = catalog.phonemes_of(query_id)
    q = table.encoded.encode(query)
    budgets = threshold * np.minimum(len(q), table.lens)

    start = time.perf_counter()
    reference = [
        edit_distance(query, catalog.phonemes_of(i), costs)
        for i in sample
    ]
    ref_per_pair = (time.perf_counter() - start) / len(sample)

    start = time.perf_counter()
    dists = batch_edit_distances_within_encoded(
        q, table.codes, table.offsets, table.encoded, budgets
    )
    batch_per_pair = (time.perf_counter() - start) / len(table)

    for i, full in zip(sample, reference):
        expected = full if full <= budgets[i] else np.inf
        assert dists[i] == expected, (
            f"batch kernel diverged from reference DP at row {i}"
        )

    return {
        "rows": len(table),
        "sample_pairs": len(sample),
        "reference_us_per_pair": ref_per_pair * 1e6,
        "batch_us_per_pair": batch_per_pair * 1e6,
        "speedup": ref_per_pair / max(batch_per_pair, 1e-12),
    }


def test_parallel_scaling(benchmark, lexicon):
    sweep = []
    table_rows = []
    kernel = None
    batch_kernel = None
    for rows in ROW_COUNTS:
        catalog = _build_catalog(lexicon, rows)
        queries = _query_battery(catalog)
        naive_lat, naive_results = _time_select(
            NaiveUdfStrategy(catalog), queries
        )
        naive = {"stats": _stats(naive_lat), "results": naive_results}
        cells = [
            _sweep_cell(catalog, queries, workers, naive)
            for workers in WORKER_COUNTS
        ]
        by_workers = {c["workers"]: c["speedup_vs_naive"] for c in cells}
        scaling = None
        if 1 in by_workers and perf.SCALING_WORKERS in by_workers:
            scaling = by_workers[perf.SCALING_WORKERS] / by_workers[1]
        sweep.append(
            {
                "rows": rows,
                "naive": naive["stats"],
                "parallel": cells,
                f"scaling_{perf.SCALING_WORKERS}v1": scaling,
            }
        )
        table_rows.append(
            [
                f"{rows}",
                "naive-udf",
                f"{naive['stats']['p50_ms']:.2f}",
                f"{naive['stats']['p95_ms']:.2f}",
                "1.0x",
            ]
        )
        for cell in cells:
            table_rows.append(
                [
                    f"{rows}",
                    f"parallel w={cell['workers']}",
                    f"{cell['p50_ms']:.2f}",
                    f"{cell['p95_ms']:.2f}",
                    f"{cell['speedup_vs_naive']:.1f}x",
                ]
            )
        # The kernel samples only need one catalog; use the largest.
        if rows == max(ROW_COUNTS):
            kernel = _kernel_floor(catalog)
            batch_kernel = _batch_kernel(catalog)

    text = format_table(
        ["Rows", "Strategy", "p50 ms", "p95 ms", "Speedup vs naive"],
        table_rows,
        title=(
            "Parallel executor scaling "
            f"({QUERY_COUNT} queries x {REPEATS} repeats per cell; "
            f"banded kernel {kernel['speedup']:.1f}x, batch kernel "
            f"{batch_kernel['speedup']:.1f}x over reference DP; "
            f"{os.cpu_count()} CPUs)"
        ),
    )
    data = {
        "row_counts": ROW_COUNTS,
        "worker_counts": WORKER_COUNTS,
        "queries": QUERY_COUNT,
        "repeats": REPEATS,
        "threshold": PERF_CONFIG.threshold,
        "cpu_count": os.cpu_count(),
        "scaling_workers": perf.SCALING_WORKERS,
        "sweep": sweep,
        "kernel": kernel,
        "batch_kernel": batch_kernel,
    }
    save_result("parallel_scaling.txt", text, data)
    (ROOT / "BENCH_parallel.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[saved to {ROOT / 'BENCH_parallel.json'}]")

    # Smoke-scale floors: some parallel configuration clearly beats the
    # naive scan at every size, and the banded kernel never regresses
    # below the reference DP.
    for entry in sweep:
        best = max(c["speedup_vs_naive"] for c in entry["parallel"])
        assert best > 2.0, f"parallel win collapsed at rows={entry['rows']}"
    assert kernel["speedup"] > 1.2

    # Acceptance-scale floors (repro.perf): at the paper-sized catalog
    # the batch kernel is >= 20x the reference DP unconditionally, and
    # N workers are >= 3x over 1 worker when the hardware can express
    # it (a box with fewer CPUs than workers records the ratio but
    # cannot be asked to clear it).
    scaling_key = f"scaling_{perf.SCALING_WORKERS}v1"
    can_scale = (os.cpu_count() or 1) >= perf.SCALING_WORKERS
    for entry in sweep:
        if entry["rows"] < ACCEPTANCE_ROWS:
            continue
        assert batch_kernel["speedup"] >= perf.ACCEPTANCE_KERNEL_FLOOR, (
            f"batch kernel {batch_kernel['speedup']:.1f}x below the "
            f"{perf.ACCEPTANCE_KERNEL_FLOOR}x acceptance floor"
        )
        scaling = entry.get(scaling_key)
        if scaling is not None and can_scale:
            assert scaling >= perf.ACCEPTANCE_SCALING_FLOOR, (
                f"{scaling_key} = {scaling:.2f}x below the "
                f"{perf.ACCEPTANCE_SCALING_FLOOR}x acceptance floor "
                f"on {os.cpu_count()} CPUs"
            )
        elif scaling is not None:
            print(
                f"[{scaling_key} = {scaling:.2f}x recorded, not "
                f"enforced: {os.cpu_count()} CPUs < "
                f"{perf.SCALING_WORKERS} workers]"
            )

    catalog = _build_catalog(lexicon, min(ROW_COUNTS))
    queries = _query_battery(catalog)
    with ParallelStrategy(catalog, workers=WORKER_COUNTS[0]) as strategy:
        benchmark.pedantic(
            lambda: strategy.select(queries[0]), rounds=3, iterations=1
        )


def test_seeded_battery_is_reproducible(lexicon):
    """Same seed => same workload; the sweep is measuring fixed queries."""
    catalog = _build_catalog(lexicon, min(ROW_COUNTS))
    assert _query_battery(catalog) == _query_battery(catalog)
