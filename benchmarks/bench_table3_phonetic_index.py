"""Table 3: phonetic index acceleration (and its false dismissals).

Regenerates the paper's Table 3:

    Query  Matching Methodology               Time
    Scan   LexEQUAL UDF + phonetic index      0.71 Sec   (vs 13.5 q-gram)
    Join   LexEQUAL UDF + phonetic index      15.2 Sec   (vs 856 q-gram)

plus the Section 5.3 quality caveat: "the phonetic index introduces a
small, but significant 4 - 5% false-dismissals, with respect to the
classical edit-distance metric".  Both the order-of-magnitude gain over
q-grams and the small dismissal rate are asserted.
"""

from repro.core import (
    NaiveUdfStrategy,
    PhoneticIndexStrategy,
    QGramStrategy,
)
from repro.evaluation.quality import phonetic_index_dismissals
from repro.evaluation.report import format_table, seconds
from repro.evaluation.timing import time_join, time_select

from conftest import PERF_CONFIG, SELECT_QUERIES, save_result


def test_table3_phonetic_index(
    benchmark, perf_catalog, join_catalog, lexicon, baseline_times
):
    index_scan = time_select(
        PhoneticIndexStrategy(perf_catalog), SELECT_QUERIES
    )
    index_join = time_join(PhoneticIndexStrategy(join_catalog))
    qgram_scan = time_select(QGramStrategy(perf_catalog), SELECT_QUERIES)
    qgram_join = time_join(QGramStrategy(join_catalog))

    scan_gain = qgram_scan.seconds / max(index_scan.seconds, 1e-9)
    join_gain = qgram_join.seconds / max(index_join.seconds, 1e-9)

    # Section 5.3 quality measurement on the tagged lexicon, against the
    # classical edit-distance configuration the paper uses there.
    dismissed, reported, rate = phonetic_index_dismissals(
        lexicon, PERF_CONFIG
    )

    rows = [
        [
            "Scan",
            "LexEQUAL UDF + phonetic index",
            seconds(index_scan.seconds),
            f"{scan_gain:.1f}x",
            "19x (13.5 -> 0.71 s)",
        ],
        [
            "Join",
            "LexEQUAL UDF + phonetic index",
            seconds(index_join.seconds),
            f"{join_gain:.1f}x",
            "56x (856 -> 15.2 s)",
        ],
    ]
    text = "\n".join(
        [
            format_table(
                ["Query", "Matching Methodology", "Time",
                 "Speedup vs q-gram", "Paper speedup"],
                rows,
                title="Table 3 — Phonetic Index Performance",
            ),
            "",
            f"false dismissals vs classical edit distance: {dismissed} of "
            f"{reported} true matches = {rate:.1%} (paper: 4-5%)",
        ]
    )
    save_result("table3_phonetic_index.txt", text)

    # Shape claims: another significant factor over q-grams on both
    # operations...
    assert scan_gain > 2
    assert join_gain > 2
    # ...a small-but-nonzero false-dismissal rate, as the paper found.
    assert 0.0 < rate < 0.15

    # Subset relation on actual results: dismissals, never inventions.
    naive_pairs = {
        (a.id, b.id) for a, b in NaiveUdfStrategy(join_catalog).join()
    }
    index_pairs = {
        (a.id, b.id)
        for a, b in PhoneticIndexStrategy(join_catalog).join()
    }
    assert index_pairs <= naive_pairs

    strategy = PhoneticIndexStrategy(perf_catalog)
    benchmark.pedantic(
        lambda: strategy.select(SELECT_QUERIES[0]), rounds=5, iterations=1
    )
