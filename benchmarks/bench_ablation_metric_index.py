"""Ablation: the BK metric index vs the paper's two accelerators.

Paper Section 6 floats "a metric index for phonemes" as future work.
This bench compares all four access paths on the same workload:

* naive UDF scan (Table 1 baseline) — exact;
* q-gram filters (Table 2) — exact;
* BK metric index — exact, prunes by the match metric itself;
* phonetic key index (Table 3) — fastest, false-dismisses.
"""

from repro.core import (
    MetricIndexStrategy,
    PhoneticIndexStrategy,
    QGramStrategy,
)
from repro.evaluation.report import format_table, seconds
from repro.evaluation.timing import time_select

from conftest import SELECT_QUERIES, save_result


def test_ablation_metric_index(benchmark, perf_catalog, baseline_times):
    naive = baseline_times["naive_scan"]
    qgram = time_select(QGramStrategy(perf_catalog), SELECT_QUERIES)
    metric_strategy = MetricIndexStrategy(perf_catalog)
    metric = time_select(metric_strategy, SELECT_QUERIES)
    phonetic = time_select(
        PhoneticIndexStrategy(perf_catalog), SELECT_QUERIES
    )

    def row(label, run, exact):
        return [
            label,
            seconds(run.seconds),
            f"{naive.seconds / max(run.seconds, 1e-9):.1f}x",
            str(run.stats.udf_calls),
            str(run.result_count),
            exact,
        ]

    rows = [
        row("naive UDF scan", naive, "yes"),
        row("q-gram filters", qgram, "yes"),
        row("BK metric index", metric, "yes"),
        row("phonetic key index", phonetic, "no (dismissals)"),
    ]
    text = format_table(
        ["access path", "time", "speedup", "distance/UDF calls",
         "results", "exact?"],
        rows,
        title="Ablation — metric index vs the paper's accelerators",
    )
    save_result("ablation_metric_index.txt", text)

    # Exactness: the metric index returns exactly the naive results.
    assert metric.result_count == naive.result_count
    # It must beat the naive scan in distance computations (pruning).
    assert metric.stats.udf_calls < naive.stats.udf_calls
    # The lossy phonetic key is allowed to return fewer results.
    assert phonetic.result_count <= naive.result_count

    benchmark.pedantic(
        lambda: metric_strategy.select(SELECT_QUERIES[0]),
        rounds=3,
        iterations=1,
    )
