"""Embedding prefilter: candidate reduction, recall, end-to-end speedup.

Three claims under test (ISSUE 10 acceptance):

1. **Candidate reduction** — the quantized articulatory-embedding
   radius search admits a small fraction of the catalog to exact
   verification: ≥ 5× fewer candidates than the naive scan considers.

2. **Recall** — on the Figure 11 all-pairs harness, the prefilter at
   its default admission radius ("cost ≤ 2", ``radius_scale=2.0``)
   keeps ≥ 98% of the exact strategies' matches.  Exact strategies are
   scored alongside it and must sit at recall 1.0 by construction.

3. **End-to-end speedup** — at the paper-scale 200k-row catalog, the
   ann strategy's select latency beats the best exact strategy by ≥ 2×
   (smoke scale records the ratio but does not enforce it: at a few
   thousand rows every strategy finishes in milliseconds and the
   ordering is noise).

Results land in ``results/ann.txt`` (+ ``.json``) and in
``BENCH_ann.json`` at the repo root — the artifact the CI quality-smoke
job and the acceptance criteria read.  The floors themselves live in
:mod:`repro.perf.gates` so the bench, the smoke script and the tests
cannot drift apart.

The acceptance-scale run (paper-sized catalog) is::

    REPRO_BENCH_SIZE=200000 python -m pytest benchmarks/bench_ann.py -s
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.core import (
    AnnPrefilterStrategy,
    MatchConfig,
    MetricIndexStrategy,
    NaiveUdfStrategy,
    QGramStrategy,
)
from repro.data.lexicon import build_lexicon
from repro.evaluation.quality import strategy_quality
from repro.perf import gates

from conftest import BENCH_SIZE, SELECT_QUERIES, bench_rng, save_result

ROOT = Path(__file__).resolve().parent.parent

#: Paper-scale row count at which the end-to-end speedup is asserted.
ACCEPTANCE_ROWS = 200_000

#: Above this row count the BK-tree competitor is not timed: its
#: pure-Python construction alone dwarfs the whole query battery, and
#: the q-gram strategy is the faster exact competitor at scale anyway.
#: The exclusion is recorded in the report (``untimed_at_scale``) so a
#: reader never mistakes the comparison for an all-strategies sweep.
METRIC_TIMING_MAX_ROWS = 50_000

#: Exact competitors for the end-to-end comparison.  The naive scan is
#: reported but excluded from "best exact" — the paper's own
#: accelerators are the bar to beat.
EXACT_STRATEGIES = {
    "naive": NaiveUdfStrategy,
    "qgram": QGramStrategy,
    "metric": MetricIndexStrategy,
}


def _battery(catalog, count: int = 6) -> list[tuple[str, str]]:
    """Seeded ``(query, language)`` pairs: stored names plus the shared
    English battery (hits and a miss), language-tagged so every query
    goes through its own TTP converter."""
    rng = bench_rng(salt=23)
    stored = [
        (record.name, record.language) for record in catalog.records()
    ]
    picks = rng.sample(stored, min(count, len(stored)))
    return picks + [(q, "english") for q in SELECT_QUERIES]


def _mean_select_ms(strategy, queries, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for query, language in queries:
            strategy.select(query, language)
        best = min(best, time.perf_counter() - start)
    return best * 1e3 / len(queries)


def test_ann_prefilter_quality_and_speed(perf_catalog):
    rows = len(perf_catalog)
    queries = _battery(perf_catalog)
    data: dict = {"rows": rows, "queries": len(queries)}

    # ---- Figure 11 harness: recall/precision per strategy ------------
    quality = strategy_quality(build_lexicon(), MatchConfig())
    by_name = {q.strategy: q for q in quality}
    data["quality"] = {
        q.strategy: {
            "recall_vs_exact": q.recall_vs_exact,
            "candidate_fraction": q.candidate_fraction,
            "recall": q.recall,
            "precision": q.precision,
        }
        for q in quality
    }
    for name in ("naive", "qgram", "metric"):
        assert by_name[name].recall_vs_exact == 1.0, name

    # ---- candidate reduction on the perf catalog ---------------------
    ann = AnnPrefilterStrategy(perf_catalog)
    candidate_counts = []
    for query, language in queries:
        ann.select(query, language)
        candidate_counts.append(ann.last_stats.candidates_after_filters)
    mean_candidates = statistics.fmean(candidate_counts)
    reduction = rows / max(mean_candidates, 1.0)
    data["mean_candidates"] = mean_candidates
    data["candidate_reduction"] = reduction

    # ---- end-to-end latency vs the exact strategies ------------------
    timed = dict(EXACT_STRATEGIES)
    if rows > METRIC_TIMING_MAX_ROWS:
        timed.pop("metric")
        data["untimed_at_scale"] = ["metric"]
    strategies_ms = {
        name: _mean_select_ms(cls(perf_catalog), queries)
        for name, cls in timed.items()
    }
    ann_ms = _mean_select_ms(ann, queries)
    best_exact = min(
        ms for name, ms in strategies_ms.items() if name != "naive"
    )
    speedup = best_exact / ann_ms if ann_ms else float("inf")
    data["strategies_ms"] = strategies_ms
    data["ann_ms"] = ann_ms
    data["speedup_vs_best_exact"] = speedup

    # Gate-readable ratios (repro.perf.gates.check_floors reads these).
    data["ratios"] = {
        "ann_recall_vs_exact": by_name["ann"].recall_vs_exact,
        "ann_candidate_reduction": reduction,
        "ann_speedup_vs_best_exact": speedup,
    }
    floors = (
        gates.ANN_ACCEPTANCE_FLOORS
        if rows >= ACCEPTANCE_ROWS
        else gates.ANN_QUALITY_FLOORS
    )
    failures = gates.check_floors(data, floors)
    assert not failures, failures

    lines = [
        f"Embedding prefilter ({rows} rows, {len(queries)} queries)",
        f"  Fig. 11 recall vs exact: "
        f"{by_name['ann'].recall_vs_exact:.4f} "
        f"(floor {gates.ANN_RECALL_FLOOR})",
        f"  candidate reduction    : {reduction:.1f}x "
        f"(floor {gates.ANN_REDUCTION_FLOOR}x; "
        f"mean {mean_candidates:.0f} of {rows} rows verified)",
        "  select latency (mean ms/query):",
    ]
    for name, ms in sorted(
        {**strategies_ms, "ann": ann_ms}.items(), key=lambda kv: kv[1]
    ):
        lines.append(f"    {name:7s} {ms:9.2f}")
    lines.append(
        f"  speedup vs best exact  : {speedup:.1f}x "
        f"(enforced at {ACCEPTANCE_ROWS} rows: "
        f"{gates.ACCEPTANCE_ANN_SPEEDUP_FLOOR}x)"
    )
    text = "\n".join(lines)
    save_result("ann.txt", text, data)
    (ROOT / "BENCH_ann.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"[saved to {ROOT / 'BENCH_ann.json'}]")
