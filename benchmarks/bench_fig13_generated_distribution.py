"""Figure 13: length distribution of the generated performance dataset.

Regenerates the paper's Figure 13 — the length-frequency distribution
of the synthetic dataset built by concatenating lexicon strings within
each language.  The paper's instance has ~200,000 names with average
lexicographic length 14.71 and phonemic length 14.31; the benchmark
instance is scaled by REPRO_BENCH_SIZE but the construction (and the
"phonemic tracks lexicographic" shape) is identical.
"""

from repro.data.generator import (
    dataset_length_histogram,
    dataset_length_stats,
    generate_performance_dataset,
)
from repro.evaluation.report import format_histogram

from conftest import BENCH_SIZE, save_result


def test_fig13_generated_distribution(benchmark, lexicon, perf_dataset):
    lex_avg, pho_avg = dataset_length_stats(perf_dataset)
    lex_hist = dataset_length_histogram(perf_dataset, "lexicographic")
    pho_hist = dataset_length_histogram(perf_dataset, "phonemic")

    base_lex, base_pho = lexicon.average_lengths()
    lines = [
        "Figure 13 — Distribution of the Generated Data Set",
        f"rows: {len(perf_dataset)} (paper: ~200,000; "
        f"scaled by REPRO_BENCH_SIZE={BENCH_SIZE})",
        f"average lexicographic length: {lex_avg:.2f}  (paper: 14.71; "
        f"2 x lexicon avg = {2 * base_lex:.2f})",
        f"average phonemic length:      {pho_avg:.2f}  (paper: 14.31; "
        f"2 x lexicon avg = {2 * base_pho:.2f})",
        "",
        format_histogram("Lexicographic representation", lex_hist),
        "",
        format_histogram("Phonemic representation", pho_hist),
    ]
    save_result("fig13_generated_distribution.txt", "\n".join(lines))

    # Construction invariant: concatenation doubles the averages.
    assert abs(lex_avg - 2 * base_lex) < 1.5
    assert abs(pho_avg - 2 * base_pho) < 1.5
    # Phonemic mean slightly below lexicographic, as in the paper.
    assert pho_avg < lex_avg + 0.5

    benchmark.pedantic(
        lambda: generate_performance_dataset(lexicon, BENCH_SIZE),
        rounds=3,
        iterations=1,
    )
