"""Ablation: q-gram filter composition (length / count / position).

Paper Section 5.2 stacks three filters before the UDF.  This bench
measures the survivor count of each filter prefix over the performance
catalog — showing each filter earns its place — and the per-pair cost of
full vs banded dynamic programming (the other half of the speedup).
"""

import time

from repro.matching.editdist import edit_distance, edit_distance_within
from repro.matching.qgrams import (
    count_filter_threshold,
    matching_qgram_pairs,
    positional_qgrams,
)
from repro.evaluation.report import format_table

from conftest import SELECT_QUERIES, save_result


def test_ablation_filter_composition(benchmark, perf_catalog):
    catalog = perf_catalog
    config = catalog.config
    query = SELECT_QUERIES[0]
    query_phonemes = catalog.matcher.registry.transform(query, "english")
    query_tokens = catalog.tokens_of_phonemes(query_phonemes)
    k = config.max_operations(len(query_tokens))
    q = config.q
    query_grams = positional_qgrams(query_tokens, q)

    total = 0
    after_length = 0
    after_count = 0
    after_position = 0
    matches = 0
    costs = catalog.matcher.costs
    for record in catalog.records():
        total += 1
        tokens = catalog.tokens_of(record.id)
        if abs(len(tokens) - len(query_tokens)) > k:
            continue
        after_length += 1
        needed = count_filter_threshold(
            len(query_tokens), len(tokens), k, q
        )
        pairs_loose = matching_qgram_pairs(
            query_grams, positional_qgrams(tokens, q), 10 ** 9
        )
        if needed > 0 and pairs_loose < needed:
            continue
        after_count += 1
        pairs_tight = matching_qgram_pairs(
            query_grams, positional_qgrams(tokens, q), k
        )
        if needed > 0 and pairs_tight < needed:
            continue
        after_position += 1
        phonemes = catalog.phonemes_of(record.id)
        budget = config.threshold * min(
            len(query_phonemes), len(phonemes)
        )
        if (
            edit_distance_within(query_phonemes, phonemes, budget, costs)
            is not None
        ):
            matches += 1

    rows = [
        ["(none: full scan)", str(total)],
        ["+ length filter", str(after_length)],
        ["+ count filter", str(after_count)],
        ["+ position filter", str(after_position)],
        ["(true matches)", str(matches)],
    ]
    text = format_table(
        ["filters applied", "surviving candidates"],
        rows,
        title=f"Ablation — filter composition for query {query!r} "
        f"(k={k}, q={q})",
    )

    # Per-pair DP cost: full (Figure 8 verbatim) vs banded.
    sample = [catalog.phonemes_of(r.id) for r in catalog.records()[:300]]
    start = time.perf_counter()
    for phonemes in sample:
        edit_distance(query_phonemes, phonemes, costs)
    full_dp = time.perf_counter() - start
    start = time.perf_counter()
    for phonemes in sample:
        budget = config.threshold * min(len(query_phonemes), len(phonemes))
        edit_distance_within(query_phonemes, phonemes, budget, costs)
    banded_dp = time.perf_counter() - start
    text += (
        f"\n\nper-pair UDF cost over {len(sample)} rows: "
        f"full DP {full_dp * 1e3:.1f} ms, banded DP {banded_dp * 1e3:.1f} ms "
        f"({full_dp / max(banded_dp, 1e-9):.1f}x)"
    )
    save_result("ablation_filters.txt", text)

    # Every filter stage must strictly help on this workload, and the
    # survivors must include every true match (soundness).
    assert after_length < total
    assert after_count <= after_length
    assert after_position <= after_count
    assert matches <= after_position
    assert banded_dp < full_dp

    benchmark.pedantic(
        lambda: [
            edit_distance_within(
                query_phonemes,
                phonemes,
                config.threshold
                * min(len(query_phonemes), len(phonemes)),
                costs,
            )
            for phonemes in sample
        ],
        rounds=3,
        iterations=1,
    )
