"""Table 2: q-gram filter acceleration.

Regenerates the paper's Table 2:

    Query  Matching Methodology              Time
    Scan   LexEQUAL UDF + q-gram filters     13.5 Sec   (vs 1418 naive)
    Join   LexEQUAL UDF + q-gram filters     856 Sec    (vs 4004 naive)

i.e. roughly two orders of magnitude on scans and ~5x on joins, with
*no change in results* — the length/count/position filters only discard
rows the UDF would reject.  Both properties are asserted here.
"""

from repro.core import NaiveUdfStrategy, QGramStrategy
from repro.evaluation.report import format_table, seconds
from repro.evaluation.timing import time_join, time_select

from conftest import SELECT_QUERIES, save_result


def test_table2_qgram_filters(
    benchmark, perf_catalog, join_catalog, baseline_times
):
    qgram_scan = time_select(QGramStrategy(perf_catalog), SELECT_QUERIES)
    qgram_join = time_join(QGramStrategy(join_catalog))

    naive_scan = baseline_times["naive_scan"]
    naive_join = baseline_times["naive_join"]
    scan_speedup = naive_scan.seconds / max(qgram_scan.seconds, 1e-9)
    join_speedup = naive_join.seconds / max(qgram_join.seconds, 1e-9)

    rows = [
        [
            "Scan",
            "LexEQUAL UDF + q-gram filters",
            seconds(qgram_scan.seconds),
            f"{scan_speedup:.1f}x",
            "105x (1418 -> 13.5 s)",
            f"{qgram_scan.stats.udf_calls}"
            f" / {naive_scan.stats.udf_calls}",
        ],
        [
            "Join",
            "LexEQUAL UDF + q-gram filters",
            seconds(qgram_join.seconds),
            f"{join_speedup:.1f}x",
            "4.7x (4004 -> 856 s)",
            f"{qgram_join.stats.udf_calls}"
            f" / {naive_join.stats.udf_calls}",
        ],
    ]
    text = format_table(
        ["Query", "Matching Methodology", "Time", "Speedup vs naive",
         "Paper speedup", "UDF calls vs naive"],
        rows,
        title="Table 2 — Q-Gram Filter Performance",
    )
    save_result("table2_qgram.txt", text)

    # Shape claims: scans gain more than an order of magnitude; joins
    # gain a smaller factor (the q-gram self-join itself costs work).
    assert scan_speedup > 10
    assert join_speedup > 2
    assert scan_speedup > join_speedup

    # Filters weed out the bulk of UDF invocations...
    assert qgram_scan.stats.udf_calls < naive_scan.stats.udf_calls / 10

    # ...without changing a single result (no false dismissals).
    assert qgram_scan.result_count == naive_scan.result_count
    naive_pairs = [
        (a.id, b.id) for a, b in NaiveUdfStrategy(join_catalog).join()
    ]
    qgram_pairs = [
        (a.id, b.id) for a, b in QGramStrategy(join_catalog).join()
    ]
    assert qgram_pairs == naive_pairs

    strategy = QGramStrategy(perf_catalog)
    benchmark.pedantic(
        lambda: strategy.select(SELECT_QUERIES[0]), rounds=3, iterations=1
    )
