"""Figure 12: precision-recall curves and the best operating point.

Regenerates the paper's Figure 12: precision-recall curves sliced per
intra-cluster cost (varying threshold along each curve) and per
threshold (varying cost along each curve).  The paper finds the best
match quality — recall ~95%, precision ~85% — at substitution costs
0.25-0.5 and thresholds 0.25-0.35 (the knee regions).
"""

import math

import pytest

from repro.evaluation.autotune import autotune
from repro.evaluation.quality import sweep_quality
from repro.evaluation.report import format_series, format_table

from conftest import save_result

THRESHOLDS = [0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5]
COSTS = [0.0, 0.25, 0.5, 1.0]


@pytest.fixture(scope="module")
def sweep(lexicon):
    return sweep_quality(lexicon, THRESHOLDS, COSTS)


def test_fig12_precision_recall_curves(benchmark, lexicon, sweep):
    # Slice 1: one curve per cost (paper shows costs 0, 0.5, 1).
    per_cost = {}
    for point in sweep:
        if point.intra_cluster_cost in (0.0, 0.5, 1.0, 0.25):
            label = f"cost={point.intra_cluster_cost:g}"
            per_cost.setdefault(label, []).append(
                (round(point.recall, 3), point.precision)
            )
    # Slice 2: one curve per threshold (paper shows 0.2, 0.3, 0.4).
    per_threshold = {}
    for point in sweep:
        if point.threshold in (0.2, 0.3, 0.4):
            label = f"e={point.threshold:g}"
            per_threshold.setdefault(label, []).append(
                (round(point.recall, 3), point.precision)
            )

    best = min(
        sweep, key=lambda p: math.hypot(1 - p.recall, 1 - p.precision)
    )
    rows = [
        [
            f"{p.intra_cluster_cost:g}",
            f"{p.threshold:g}",
            f"{p.recall:.3f}",
            f"{p.precision:.3f}",
            "<- knee" if p is best else "",
        ]
        for p in sweep
        if p.intra_cluster_cost in (0.25, 0.5)
        and 0.2 <= p.threshold <= 0.4
    ]
    text = "\n\n".join(
        [
            "Figure 12 — Precision-Recall Graphs",
            format_series(
                "Precision vs recall (per cost)", "recall", per_cost
            ),
            format_series(
                "Precision vs recall (per threshold)",
                "recall",
                per_threshold,
            ),
            format_table(
                ["cost", "e", "recall", "precision", ""],
                rows,
                title=(
                    "Knee region (paper: best at cost 0.25-0.5, "
                    "e 0.25-0.35 with recall ~95%, precision ~85%)"
                ),
            ),
            f"best operating point: cost={best.intra_cluster_cost:g} "
            f"e={best.threshold:g} recall={best.recall:.3f} "
            f"precision={best.precision:.3f}",
        ]
    )
    save_result("fig12_precision_recall.txt", text)

    # The paper's headline: the best point lies in cost 0.25-0.5 and
    # threshold 0.25-0.35, with recall ~95% and precision ~85%.
    assert 0.25 <= best.intra_cluster_cost <= 0.5
    assert 0.2 <= best.threshold <= 0.35
    assert best.recall >= 0.88
    assert best.precision >= 0.80

    # Benchmark: the autotune grid search over a lexicon slice.
    from repro.data.lexicon import build_lexicon

    small = build_lexicon(limit_per_domain=25)
    benchmark.pedantic(
        lambda: autotune(
            small,
            thresholds=[0.2, 0.3],
            intra_cluster_costs=[0.25, 0.5],
        ),
        rounds=1,
        iterations=1,
    )
