"""Ablation: outside-the-server UDF vs inside-the-engine acceleration.

Paper Section 6: "We are working on an inside-the-engine implementation
of LexEQUAL ... with the expectation of further improving the runtime
efficiency."  This bench runs the *same SQL* (a Figure 3 style
selection) against the same data three ways:

* plain UDF deployment (the paper's pilot: a full scan with the UDF as
  an opaque predicate — "no optimization was done on the UDF call");
* inside-the-engine with a q-gram accelerator (lossless);
* inside-the-engine with a phonetic-index accelerator (fastest).
"""

import time

from repro import Database, install_lexequal
from repro.core import create_phonetic_accelerator
from repro.evaluation.report import format_table, seconds

from conftest import SELECT_QUERIES, save_result

SQL = (
    "SELECT name FROM names WHERE name LEXEQUAL :q THRESHOLD 0.25"
)


def _database(perf_dataset, size=800) -> Database:
    db = Database()
    install_lexequal(db)
    db.execute("CREATE TABLE names (name TEXT, language TEXT)")
    for item in perf_dataset[:size]:
        db.insert("names", (item.name, item.language))
    for query in SELECT_QUERIES:
        db.insert("names", (query, "english"))
    return db


def _time_queries(db) -> tuple[float, int]:
    start = time.perf_counter()
    total = 0
    for query in SELECT_QUERIES:
        total += len(db.execute(SQL, q=query))
    return time.perf_counter() - start, total


def test_ablation_inside_the_engine(benchmark, perf_dataset):
    plain = _database(perf_dataset)
    qgram_db = _database(perf_dataset)
    create_phonetic_accelerator(qgram_db, "names", "name", method="qgram")
    index_db = _database(perf_dataset)
    create_phonetic_accelerator(index_db, "names", "name", method="index")

    plain_time, plain_results = _time_queries(plain)
    qgram_time, qgram_results = _time_queries(qgram_db)
    index_time, index_results = _time_queries(index_db)

    rows = [
        ["outside-the-server UDF (full scan)", seconds(plain_time),
         "1.0x", str(plain_results)],
        ["inside-the-engine, q-gram accelerator", seconds(qgram_time),
         f"{plain_time / max(qgram_time, 1e-9):.1f}x",
         str(qgram_results)],
        ["inside-the-engine, phonetic index", seconds(index_time),
         f"{plain_time / max(index_time, 1e-9):.1f}x",
         str(index_results)],
    ]
    text = format_table(
        ["deployment", "time (3 queries)", "speedup", "results"],
        rows,
        title=(
            "Ablation — same SQL, outside-the-server vs "
            "inside-the-engine (paper §6 future work)"
        ),
    )
    save_result("ablation_engine.txt", text)

    # The engine-integrated plans must win, and the q-gram one must be
    # lossless relative to the plain UDF scan.
    assert qgram_time < plain_time
    assert index_time < plain_time
    assert qgram_results == plain_results
    assert index_results <= plain_results

    benchmark.pedantic(
        lambda: qgram_db.execute(SQL, q=SELECT_QUERIES[0]),
        rounds=3,
        iterations=1,
    )
