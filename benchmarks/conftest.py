"""Shared fixtures for the benchmark suite.

Every paper table/figure has one ``bench_*`` file.  Benchmarks print
their paper-style tables and also write them under ``results/`` (the
pytest capture machinery hides prints unless ``-s`` is passed).

Scaling: the paper's performance dataset has ~200k rows and its naive
UDF join ran on a 0.2% subset (~400 rows).  Pure-Python dynamic
programming is orders of magnitude slower per row than 2004-era PL/SQL
was, so the default benchmark sizes are scaled down; set
``REPRO_BENCH_SIZE`` (scan rows, default 2000) and
``REPRO_BENCH_JOIN`` (naive-join rows, default 300) to rescale.  The
claims under test are *relative* (orders of magnitude between
strategies), which are scale-stable.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

from repro import obs
from repro.core import LexEqualMatcher, MatchConfig, NameCatalog
from repro.data.generator import generate_performance_dataset
from repro.data.lexicon import build_lexicon

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Rows in the scan catalog (paper: 200,000).
BENCH_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "2000"))
#: Rows in the naive-join catalog (paper: ~400 = 0.2% of 200k).
BENCH_JOIN_SIZE = int(os.environ.get("REPRO_BENCH_JOIN", "300"))

#: Seed for every randomized benchmark choice (query sampling, pair
#: draws).  One knob, recorded in every results/*.json payload, so two
#: runs measure the *same* workload: ``--seed N`` on the pytest command
#: line, or ``REPRO_BENCH_SEED`` in the environment (the option wins).
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20040314"))


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--seed",
        type=int,
        default=None,
        help="benchmark workload seed (default: REPRO_BENCH_SEED or "
        f"{BENCH_SEED})",
    )


def pytest_configure(config: pytest.Config) -> None:
    global BENCH_SEED
    override = config.getoption("--seed", default=None)
    if override is not None:
        BENCH_SEED = override


def bench_rng(salt: int = 0) -> random.Random:
    """A fresh seeded RNG; ``salt`` decorrelates independent draws.

    Always derive benchmark randomness from here — never from an
    unseeded ``random.Random()`` — so reruns and CI measure identical
    workloads.
    """
    return random.Random(BENCH_SEED + salt)

#: The classical configuration used for the performance experiments
#: (Section 5 ran the operator at threshold 0.25; the filters there are
#: the classical unit-cost ones).
PERF_CONFIG = MatchConfig(
    threshold=0.25,
    intra_cluster_cost=1.0,
    weak_indel_cost=1.0,
    vowel_cross_cost=1.0,
)

#: Queries used for selection benchmarks: lexicon-derived concatenations
#: that exist in the generated dataset, plus a miss.
SELECT_QUERIES = ["NehruGandhi", "KrishnaMohan", "OxygenArgon"]


def save_result(name: str, text: str, data: dict | None = None) -> None:
    """Print a paper-style table and persist it under results/.

    Besides the human-readable text table, a machine-readable JSON
    companion (``results/<stem>.json``) is written carrying ``data``
    (bench-specific numbers, if any) plus a snapshot of the metrics
    collected so far this session.  No timestamps, so reruns diff
    cleanly.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n", encoding="utf-8")
    stem = Path(name).stem
    payload = {
        "name": stem,
        "bench_size": BENCH_SIZE,
        "bench_join_size": BENCH_JOIN_SIZE,
        "seed": BENCH_SEED,
        "data": data,
        "metrics": obs.snapshot(),
    }
    (RESULTS_DIR / f"{stem}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"\n{text}\n[saved to results/{name} and results/{stem}.json]")


@pytest.fixture(scope="session", autouse=True)
def _metrics_session():
    """Collect engine metrics for the whole benchmark session.

    Enabled here (not in the library) so normal test runs keep the
    zero-overhead null registry; ``save_result`` embeds snapshots in
    its JSON output.
    """
    obs.enable()
    yield
    obs.disable()


@pytest.fixture(scope="session")
def lexicon():
    """The full tagged quality lexicon (Figure 10 dataset)."""
    return build_lexicon()


@pytest.fixture(scope="session")
def perf_dataset(lexicon):
    """The scaled synthetic performance dataset (Figure 13 dataset)."""
    return generate_performance_dataset(lexicon, BENCH_SIZE)


@pytest.fixture(scope="session")
def perf_catalog(perf_dataset):
    """Scan catalog under the classical performance configuration."""
    catalog = NameCatalog(LexEqualMatcher(PERF_CONFIG))
    for item in perf_dataset:
        catalog.add(item.name, item.language, ipa=item.ipa)
    # Plant the selection queries so scans have hits, as in the paper
    # (its query strings came from the stored data).
    for query in SELECT_QUERIES:
        catalog.add(query, "english")
    return catalog


@pytest.fixture(scope="session")
def join_catalog(perf_dataset):
    """Smaller catalog for the quadratic naive join (paper: 0.2% subset).

    Sampled with a stride so all languages are represented (the
    generator emits per-language blocks, and the join is cross-language).
    """
    catalog = NameCatalog(LexEqualMatcher(PERF_CONFIG))
    by_language: dict[str, list] = {}
    for item in perf_dataset:
        by_language.setdefault(item.language, []).append(item)
    quota = max(1, BENCH_JOIN_SIZE // len(by_language))
    # Aligned prefixes: the generator pairs the same lexicon groups at
    # the same offsets in every language, so these prefixes contain
    # genuine cross-script matches (as the paper's subset did).
    for items in by_language.values():
        for item in items[:quota]:
            catalog.add(item.name, item.language, ipa=item.ipa)
    return catalog


@pytest.fixture(scope="session")
def baseline_times(perf_catalog, join_catalog):
    """Exact and naive-UDF timings shared by the Table 1-3 benches.

    Computed once per session: Table 1 prints them, Tables 2 and 3
    report their speedups against them.
    """
    from repro.core import ExactStrategy, NaiveUdfStrategy
    from repro.evaluation.timing import time_join, time_select

    exact_scan = time_select(ExactStrategy(perf_catalog), SELECT_QUERIES)
    naive_scan = time_select(NaiveUdfStrategy(perf_catalog), SELECT_QUERIES)
    exact_join = time_join(ExactStrategy(join_catalog))
    naive_join = time_join(NaiveUdfStrategy(join_catalog))
    return {
        "exact_scan": exact_scan,
        "naive_scan": naive_scan,
        "exact_join": exact_join,
        "naive_join": naive_join,
    }
