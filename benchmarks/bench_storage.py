"""Durable storage: cold build vs reopen, and planner-vs-forced latency.

Two claims under test (ISSUE 7 acceptance):

1. **Instant restarts** — reopening a checkpointed data directory
   attaches the persisted heap, B+ trees and phonetic accelerator
   snapshot instead of re-deriving phonemes for every row, so a cold
   reopen must beat the from-scratch build by a wide margin (≥10× at
   the paper-scale 200k-row run; ≥3× even at smoke scale, where fixed
   per-open costs weigh more).  The reopened accelerator must return
   candidate sets identical to the freshly built one.

2. **Cost-based choice** — after ``ANALYZE``, the planner picks a
   non-naive strategy on the seeded lexicon without any
   ``--strategy``/``--accelerate`` flag, and the chosen strategy's
   measured latency is the fastest (or within a bounded ratio of it)
   among the executable strategies.

Results land in ``results/storage.txt`` (+ ``.json``) and in
``BENCH_storage.json`` at the repo root — the artifact the CI
storage-smoke job and the acceptance criteria read.

Scale knobs (seeded by ``--seed`` / ``REPRO_BENCH_SEED``):

* ``REPRO_BENCH_STORAGE_ROWS``     lexicon size      (default ``2000``)
* ``REPRO_BENCH_STORAGE_QUERIES``  battery size      (default ``6``)

The acceptance-scale run (paper-sized catalog) is::

    REPRO_BENCH_STORAGE_ROWS=200000 \
        python -m pytest benchmarks/bench_storage.py -s
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.core import LexEqualMatcher, NameCatalog
from repro.core.engine import create_phonetic_accelerator
from repro.core.strategies import STRATEGY_CLASSES, choose_strategy
from repro.data.generator import generate_performance_dataset
from repro.data.lexicon import build_lexicon
from repro.minidb.schema import Column
from repro.minidb.values import LangText, SqlType
from repro.storage import open_database

from conftest import PERF_CONFIG, bench_rng, save_result

ROOT = Path(__file__).resolve().parent.parent

#: Paper-scale row count at which the ≥10× reopen floor is asserted.
ACCEPTANCE_ROWS = 200_000

ROWS = int(os.environ.get("REPRO_BENCH_STORAGE_ROWS", "2000"))
QUERY_COUNT = int(os.environ.get("REPRO_BENCH_STORAGE_QUERIES", "6"))

LEXEQUAL_SQL = (
    "SELECT name FROM names WHERE name LEXEQUAL '{query}' THRESHOLD 0.25"
)


def _dataset():
    return list(generate_performance_dataset(build_lexicon(), ROWS))


def _battery(items) -> list[str]:
    rng = bench_rng(salt=11)
    english = [it.name for it in items if it.language == "english"]
    count = min(QUERY_COUNT - 1, len(english))
    return rng.sample(english, count) + ["Zzyzx"]


def _build_durable(data_dir: str, items, matcher) -> float:
    """From-scratch build: rows + accelerator + ANALYZE + checkpoint."""
    start = time.perf_counter()
    db = open_database(data_dir, matcher=matcher, sync=False)
    db.create_table(
        "names",
        [
            Column("id", SqlType.INTEGER, nullable=False),
            Column("name", SqlType.LANGTEXT, nullable=False),
            Column("language", SqlType.TEXT, nullable=False),
        ],
    )
    with db.transaction():
        for i, item in enumerate(items):
            db.insert(
                "names",
                (i, LangText(item.name, item.language), item.language),
            )
    # allow_lossy so "auto" also maintains the embedding prefilter:
    # its quantized matrix persists as the .ann sidecar, putting the
    # rebuild-vs-reopen claim on the ann artifact too.
    create_phonetic_accelerator(
        db, "names", "name", matcher, method="auto", allow_lossy=True
    )
    db.analyze()
    db.checkpoint()
    elapsed = time.perf_counter() - start
    db.storage.close()
    return elapsed


def test_storage_cold_reopen_and_planner():
    matcher = LexEqualMatcher(PERF_CONFIG)
    items = _dataset()
    queries = _battery(items)
    data = {"rows": ROWS, "queries": len(queries)}

    with tempfile.TemporaryDirectory(prefix="bench-storage-") as tmp:
        data_dir = os.path.join(tmp, "db")
        build_s = _build_durable(data_dir, items, matcher)

        # Two process-cold reopens, best kept: the build above took a
        # minute of CPU, so a single reopen sample is at the mercy of
        # whatever else the host is doing for those few seconds.
        reopen_samples = []
        db = None
        for _ in range(2):
            if db is not None:
                db.storage.close()
            start = time.perf_counter()
            db = open_database(data_dir, matcher=matcher)
            reopen_samples.append(time.perf_counter() - start)
        reopen_s = min(reopen_samples)
        speedup = build_s / reopen_s if reopen_s else float("inf")
        data["build_s"] = build_s
        data["reopen_s"] = reopen_s
        data["reopen_samples"] = reopen_samples
        data["reopen_speedup"] = speedup

        accelerator = db.accelerator_for("names", "name")
        assert accelerator is not None, "accelerator not re-attached"
        # The embedding sidecar must come back pre-built (attached from
        # the .ann snapshot, not lazily re-encoded on first use).
        assert accelerator._ann_index is not None, (
            "ann sidecar not restored"
        )
        from repro.storage import layout as storage_layout

        ann_file = storage_layout.ann_index_path(
            data_dir, "accel_names_name"
        )
        data["ann_sidecar_bytes"] = os.path.getsize(ann_file)

        planner_ms = []
        chosen = {}
        for query in queries:
            start = time.perf_counter()
            result = db.execute(LEXEQUAL_SQL.format(query=query))
            planner_ms.append((time.perf_counter() - start) * 1e3)
            chosen[query] = accelerator.last_method or "naive"
            assert result.rows is not None
        data["planner"] = {
            "mean_ms": statistics.fmean(planner_ms),
            "chosen": chosen,
        }
        # ANALYZE-driven planning must leave naive behind once the
        # lexicon is big enough that a scan visibly loses.
        if ROWS >= 1000:
            assert all(m != "naive" for m in chosen.values()), chosen
        db.storage.close()

    # Planner-vs-forced: same lexicon in a NameCatalog, every strategy
    # timed, the cost-based choice compared against the measured best.
    catalog = NameCatalog(matcher)
    for item in items:
        catalog.add(item.name, item.language, ipa=item.ipa)
    forced_ms: dict[str, list[float]] = {
        name: [] for name in STRATEGY_CLASSES
    }
    chosen_ms: list[float] = []
    choices: list[str] = []
    strategies = {
        name: cls(catalog) for name, cls in STRATEGY_CLASSES.items()
    }
    for query in queries:
        choice = choose_strategy(catalog, query, allow_lossy=True)
        choices.append(choice.name)
        start = time.perf_counter()
        strategies[choice.name].select(query)
        chosen_ms.append((time.perf_counter() - start) * 1e3)
        for name, strategy in strategies.items():
            start = time.perf_counter()
            strategy.select(query)
            forced_ms[name].append((time.perf_counter() - start) * 1e3)
    per_strategy = {
        name: statistics.fmean(times) for name, times in forced_ms.items()
    }
    best = min(per_strategy.values())
    chosen_mean = statistics.fmean(chosen_ms)
    data["strategies_ms"] = per_strategy
    data["chosen_ms"] = chosen_mean
    data["chosen_vs_best"] = chosen_mean / best if best else 1.0
    data["choices"] = choices

    floor = 10.0 if ROWS >= ACCEPTANCE_ROWS else 3.0
    assert speedup >= floor, (
        f"cold reopen speedup {speedup:.1f}x under the {floor}x floor "
        f"(build {build_s:.2f}s, reopen {reopen_s:.2f}s, {ROWS} rows)"
    )

    lines = [
        f"Durable storage ({ROWS} rows, {len(queries)} queries)",
        f"  cold build : {build_s * 1e3:9.1f} ms",
        f"  cold reopen: {reopen_s * 1e3:9.1f} ms   ({speedup:.1f}x)",
        "  forced strategy latency (mean ms):",
    ]
    for name, mean in sorted(per_strategy.items(), key=lambda kv: kv[1]):
        lines.append(f"    {name:14s} {mean:9.2f}")
    lines.append(
        f"  cost-based choice: {chosen_mean:.2f} ms "
        f"({data['chosen_vs_best']:.2f}x of best; {', '.join(choices)})"
    )
    text = "\n".join(lines)
    save_result("storage.txt", text, data)
    (ROOT / "BENCH_storage.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[saved to {ROOT / 'BENCH_storage.json'}]")
