#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: tests, lint, bench smoke.
# Run from the repository root:  ./scripts/ci_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== tier-1 tests under the lock sanitizer (REPRO_LOCKSAN=1) =="
REPRO_LOCKSAN=1 python -m pytest -x -q

echo "== coverage gate (pytest-cov) =="
if python -c "import pytest_cov" >/dev/null 2>&1; then
    python -m pytest -q --cov=repro --cov-fail-under=75
else
    echo "pytest-cov not installed; skipping (CI runs it)"
fi

echo "== lint (ruff) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check .
else
    echo "ruff not installed; skipping (CI runs it)"
fi

echo "== domain lint (repro.analysis, DESIGN.md §8) =="
PYTHONPATH=src python -m repro.cli lint

echo "== concurrency lint (LEX-C rule family, DESIGN.md §8) =="
PYTHONPATH=src python -m repro.cli lint --concurrency

echo "== quality smoke (ann prefilter recall + candidate-reduction floors) =="
mkdir -p results
python scripts/quality_smoke.py --out results/quality_smoke.json

echo "== perf smoke (banded kernel + parallel executor floors) =="
mkdir -p results
python scripts/perf_smoke.py --out results/perf_smoke.json

echo "== perf trend gate (fresh ratios vs committed baseline) =="
python scripts/perf_compare.py BENCH_baseline.json results/perf_smoke.json

echo "== benchmark smoke (Table 1) =="
REPRO_BENCH_SIZE="${REPRO_BENCH_SIZE:-400}" \
REPRO_BENCH_JOIN="${REPRO_BENCH_JOIN:-100}" \
python -m pytest benchmarks/bench_table1_baseline.py -q

echo "== storage smoke (crash recovery + cold-reopen benchmark) =="
python scripts/recovery_smoke.py
REPRO_BENCH_STORAGE_ROWS="${REPRO_BENCH_STORAGE_ROWS:-2000}" \
python -m pytest benchmarks/bench_storage.py -q

echo "== server smoke (serve + scripted client + SIGTERM drain) =="
python scripts/server_smoke.py

echo "== chaos smoke (seeded fault schedule, 500 requests) =="
REPRO_CHAOS_SEED="${REPRO_CHAOS_SEED:-2004}" \
python scripts/chaos_smoke.py

echo "== cluster smoke (shard-kill chaos gate, 600 requests) =="
REPRO_CLUSTER_SEED="${REPRO_CLUSTER_SEED:-20040314}" \
python scripts/cluster_smoke.py

echo "== cluster throughput benchmark (scaled down) =="
REPRO_BENCH_CLUSTER_REQS="${REPRO_BENCH_CLUSTER_REQS:-200}" \
python -m pytest benchmarks/bench_cluster_throughput.py -q

echo "== server throughput benchmark (scaled down) =="
REPRO_BENCH_SERVER_CONC="${REPRO_BENCH_SERVER_CONC:-1,8}" \
REPRO_BENCH_SERVER_REQS="${REPRO_BENCH_SERVER_REQS:-10}" \
python -m pytest benchmarks/bench_server_throughput.py -q

echo "== OK =="
