#!/usr/bin/env python
"""Perf-trend gate: diff a fresh perf-smoke report against the baseline.

``scripts/perf_smoke.py --out fresh.json`` records the run's speedup
ratios; this script compares them against the committed
``BENCH_baseline.json`` with a jitter tolerance (default
:data:`repro.perf.DEFAULT_TOLERANCE`) and exits non-zero on any
regression — including the "N workers must beat 1 worker" scaling
ratio, which is enforced only on machines whose recorded ``cpu_count``
can physically express it.

Usage::

    python scripts/perf_compare.py BENCH_baseline.json fresh.json
    python scripts/perf_compare.py baseline.json fresh.json --tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro import perf


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly measured report JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=perf.DEFAULT_TOLERANCE,
        help="allowed fractional drop below baseline before failing "
        f"(default {perf.DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)

    if not perf.scaling_enforced(fresh):
        print(
            f"note: cpu_count={fresh.get('cpu_count')} < "
            f"{fresh.get('scaling_workers', perf.SCALING_WORKERS)} "
            "workers — scaling ratios recorded but not enforced"
        )
    failures = perf.compare(baseline, fresh, tolerance=args.tolerance)
    for key, value in sorted(fresh.get("ratios", {}).items()):
        base = baseline.get("ratios", {}).get(key)
        base_str = f"{base:.2f}x" if base is not None else "-"
        print(f"  {key}: fresh {value:.2f}x vs baseline {base_str}")
    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    print("perf compare OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
