#!/usr/bin/env python
"""CI perf smoke: the fast kernels must stay fast and stay exact.

A scaled-down, assert-only version of
``benchmarks/bench_parallel_scaling.py`` that runs in seconds and fails
the build when either regression appears:

* **divergence** — the banded scalar kernel, the vectorized batch
  kernel, or the parallel executor returns anything other than the
  reference DP's distances and match sets;
* **lost speedup** — the banded kernel stops beating the reference DP,
  or the parallel executor stops beating the sequential naive scan.

The floors come from :mod:`repro.perf` — the single source shared with
``scripts/perf_compare.py`` and the acceptance benchmark — and are
deliberately lax at this scale (1.5x kernel, 2x executor on a
1,500-row catalog) so the gate only trips on real regressions, not CI
jitter.  The acceptance-scale floors (20x kernel, 3x scaling at 200k
rows) are enforced by the benchmark, not here.

Besides asserting, the run writes a JSON report of its speedup ratios
(``--out``); ``scripts/perf_compare.py`` diffs that report against the
committed ``BENCH_baseline.json`` to catch slow drift that stays above
the lax floors.  The report records ``cpu_count`` because the
multi-worker scaling ratio is only meaningful (and only enforced) on
machines with at least that many CPUs.

Environment knobs: ``REPRO_PERF_SMOKE_ROWS`` (default 1500),
``REPRO_PERF_SMOKE_SEED`` (default 20040314).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

import numpy as np

from repro import perf
from repro.core import (
    LexEqualMatcher,
    MatchConfig,
    NaiveUdfStrategy,
    NameCatalog,
)
from repro.data.generator import generate_performance_dataset
from repro.data.lexicon import build_lexicon
from repro.matching.batch import EncodedCosts, batch_edit_distances_within
from repro.matching.editdist import edit_distance, edit_distance_within
from repro.parallel import ParallelStrategy

ROWS = int(os.environ.get("REPRO_PERF_SMOKE_ROWS", "1500"))
SEED = int(os.environ.get("REPRO_PERF_SMOKE_SEED", "20040314"))
PAIRS = 400
QUERIES = 6


def build_catalog() -> NameCatalog:
    config = MatchConfig(
        threshold=0.25,
        intra_cluster_cost=1.0,
        weak_indel_cost=1.0,
        vowel_cross_cost=1.0,
    )
    catalog = NameCatalog(LexEqualMatcher(config))
    for item in generate_performance_dataset(build_lexicon(), ROWS):
        catalog.add(item.name, item.language, ipa=item.ipa)
    return catalog


def check_kernels(catalog: NameCatalog) -> tuple[float, float]:
    """Banded + batch kernels: exact agreement, banded speedup floor.

    Returns ``(banded_vs_reference, batch_vs_reference)`` speedups.
    """
    rng = random.Random(SEED)
    costs = catalog.matcher.costs
    threshold = catalog.config.threshold
    strings = [
        catalog.phonemes_of(i)
        for i in rng.sample(range(len(catalog)), min(len(catalog), 600))
    ]
    pairs = [
        (rng.choice(strings), rng.choice(strings)) for _ in range(PAIRS)
    ]
    budgets = [threshold * min(len(a), len(b)) for a, b in pairs]

    start = time.perf_counter()
    reference = [edit_distance(a, b, costs) for a, b in pairs]
    ref_s = time.perf_counter() - start

    start = time.perf_counter()
    banded = [
        edit_distance_within(a, b, budget, costs)
        for (a, b), budget in zip(pairs, budgets)
    ]
    banded_s = time.perf_counter() - start

    for (a, b), full, within, budget in zip(
        pairs, reference, banded, budgets
    ):
        expected = full if full <= budget else None
        if within != expected:
            raise AssertionError(
                f"banded kernel diverged on {a} vs {b}: "
                f"{within!r} != {expected!r} (budget {budget})"
            )

    # The batch kernel against the same sample, one query over all
    # candidates at once (its production shape in the executor).
    symbols = sorted({s for string in strings for s in string})
    encoded = EncodedCosts(costs, symbols)
    query = pairs[0][0]
    candidates = [b for _, b in pairs]
    batch_budgets = np.array(
        [threshold * min(len(query), len(c)) for c in candidates]
    )
    start = time.perf_counter()
    got = batch_edit_distances_within(
        query, candidates, encoded, batch_budgets
    )
    batch_s = time.perf_counter() - start
    for value, cand, budget in zip(got, candidates, batch_budgets):
        full = edit_distance(query, cand, costs)
        expected = full if full <= budget else np.inf
        if value != expected:
            raise AssertionError(
                f"batch kernel diverged on {query} vs {cand}: "
                f"{value!r} != {expected!r}"
            )

    banded_speedup = ref_s / max(banded_s, 1e-9)
    batch_speedup = ref_s / max(batch_s, 1e-9)
    print(
        f"kernel: {PAIRS} pairs, reference {ref_s * 1e3:.1f} ms, "
        f"banded {banded_s * 1e3:.1f} ms -> {banded_speedup:.1f}x, "
        f"batch {batch_s * 1e3:.1f} ms -> {batch_speedup:.1f}x"
    )
    if banded_speedup < perf.SMOKE_KERNEL_FLOOR:
        raise AssertionError(
            f"banded kernel lost its speedup: {banded_speedup:.2f}x < "
            f"{perf.SMOKE_KERNEL_FLOOR}x floor"
        )
    return banded_speedup, batch_speedup


def check_executor(catalog: NameCatalog) -> tuple[float, float]:
    """Parallel strategy: identical match sets, executor speedup floor.

    Returns ``(best_vs_naive, scaling_4v1)`` where the scaling ratio is
    the 1-worker wall time over the 4-worker wall time (> 1 means 4
    workers win; on machines with < 4 CPUs it is recorded but not
    enforced).
    """
    rng = random.Random(SEED + 1)
    english = [
        record.name
        for record in catalog.records()
        if record.language == "english"
    ]
    queries = rng.sample(english, QUERIES - 1) + ["Zzyzx"]

    naive = NaiveUdfStrategy(catalog)
    naive.select(queries[0])  # warm caches; measure steady-state scans
    start = time.perf_counter()
    expected = {q: [r.id for r in naive.select(q)] for q in queries}
    naive_s = time.perf_counter() - start

    best = 0.0
    seconds: dict[int, float] = {}
    for workers in (1, 2, perf.SCALING_WORKERS):
        with ParallelStrategy(catalog, workers=workers) as strategy:
            strategy.select(queries[0])  # table built, pool warmed
            start = time.perf_counter()
            got = {q: [r.id for r in strategy.select(q)] for q in queries}
            seconds[workers] = time.perf_counter() - start
        if got != expected:
            raise AssertionError(
                f"parallel executor (workers={workers}) diverged from "
                "the naive scan"
            )
        speedup = naive_s / max(seconds[workers], 1e-9)
        best = max(best, speedup)
        print(
            f"executor: workers={workers}, naive {naive_s * 1e3:.0f} ms, "
            f"parallel {seconds[workers] * 1e3:.0f} ms -> {speedup:.1f}x"
        )

    if best < perf.SMOKE_EXECUTOR_FLOOR:
        raise AssertionError(
            f"parallel executor lost its speedup: best {best:.2f}x < "
            f"{perf.SMOKE_EXECUTOR_FLOOR}x floor"
        )
    scaling = seconds[1] / max(seconds[perf.SCALING_WORKERS], 1e-9)
    return best, scaling


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        help="write the speedup-ratio report as JSON to this path "
        "(consumed by scripts/perf_compare.py)",
    )
    args = parser.parse_args(argv)

    print(f"perf smoke: rows={ROWS} seed={SEED}")
    catalog = build_catalog()
    banded, batch = check_kernels(catalog)
    executor, scaling = check_executor(catalog)
    report = {
        "rows": ROWS,
        "seed": SEED,
        "cpu_count": os.cpu_count() or 1,
        "scaling_workers": perf.SCALING_WORKERS,
        "ratios": {
            "kernel_banded_vs_reference": round(banded, 3),
            "kernel_batch_vs_reference": round(batch, 3),
            "executor_vs_naive": round(executor, 3),
            f"scaling_{perf.SCALING_WORKERS}v1": round(scaling, 3),
        },
    }
    failures = perf.check_floors(report)
    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report -> {args.out}")
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
