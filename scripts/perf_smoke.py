#!/usr/bin/env python
"""CI perf smoke: the fast kernels must stay fast and stay exact.

A scaled-down, assert-only version of
``benchmarks/bench_parallel_scaling.py`` that runs in seconds and fails
the build when either regression appears:

* **divergence** — the banded scalar kernel, the vectorized batch
  kernel, or the parallel executor returns anything other than the
  reference DP's distances and match sets;
* **lost speedup** — the banded kernel stops beating the reference DP,
  or the parallel executor stops beating the sequential naive scan.

The floors here are deliberately lax (1.5x kernel, 2x executor at a
1,500-row catalog) so the gate only trips on real regressions, not CI
jitter; the acceptance-scale floors (2x / 3x at 200k rows) live in the
benchmark and in ``BENCH_parallel.json``.

Environment knobs: ``REPRO_PERF_SMOKE_ROWS`` (default 1500),
``REPRO_PERF_SMOKE_SEED`` (default 20040314).
"""

from __future__ import annotations

import os
import random
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

import numpy as np

from repro.core import (
    LexEqualMatcher,
    MatchConfig,
    NaiveUdfStrategy,
    NameCatalog,
)
from repro.data.generator import generate_performance_dataset
from repro.data.lexicon import build_lexicon
from repro.matching.batch import EncodedCosts, batch_edit_distances_within
from repro.matching.editdist import edit_distance, edit_distance_within
from repro.parallel import ParallelStrategy

ROWS = int(os.environ.get("REPRO_PERF_SMOKE_ROWS", "1500"))
SEED = int(os.environ.get("REPRO_PERF_SMOKE_SEED", "20040314"))
KERNEL_FLOOR = 1.5
EXECUTOR_FLOOR = 2.0
PAIRS = 400
QUERIES = 6


def build_catalog() -> NameCatalog:
    config = MatchConfig(
        threshold=0.25,
        intra_cluster_cost=1.0,
        weak_indel_cost=1.0,
        vowel_cross_cost=1.0,
    )
    catalog = NameCatalog(LexEqualMatcher(config))
    for item in generate_performance_dataset(build_lexicon(), ROWS):
        catalog.add(item.name, item.language, ipa=item.ipa)
    return catalog


def check_kernels(catalog: NameCatalog) -> float:
    """Banded + batch kernels: exact agreement, banded speedup floor."""
    rng = random.Random(SEED)
    costs = catalog.matcher.costs
    threshold = catalog.config.threshold
    strings = [
        catalog.phonemes_of(i)
        for i in rng.sample(range(len(catalog)), min(len(catalog), 600))
    ]
    pairs = [
        (rng.choice(strings), rng.choice(strings)) for _ in range(PAIRS)
    ]
    budgets = [threshold * min(len(a), len(b)) for a, b in pairs]

    start = time.perf_counter()
    reference = [edit_distance(a, b, costs) for a, b in pairs]
    ref_s = time.perf_counter() - start

    start = time.perf_counter()
    banded = [
        edit_distance_within(a, b, budget, costs)
        for (a, b), budget in zip(pairs, budgets)
    ]
    banded_s = time.perf_counter() - start

    for (a, b), full, within, budget in zip(
        pairs, reference, banded, budgets
    ):
        expected = full if full <= budget else None
        if within != expected:
            raise AssertionError(
                f"banded kernel diverged on {a} vs {b}: "
                f"{within!r} != {expected!r} (budget {budget})"
            )

    # The batch kernel against the same sample, one query at a time.
    symbols = sorted({s for string in strings for s in string})
    encoded = EncodedCosts(costs, symbols)
    query = pairs[0][0]
    candidates = [b for _, b in pairs[:50]]
    batch_budgets = np.array(
        [threshold * min(len(query), len(c)) for c in candidates]
    )
    got = batch_edit_distances_within(
        query, candidates, encoded, batch_budgets
    )
    for value, cand, budget in zip(got, candidates, batch_budgets):
        full = edit_distance(query, cand, costs)
        expected = full if full <= budget else np.inf
        if value != expected:
            raise AssertionError(
                f"batch kernel diverged on {query} vs {cand}: "
                f"{value!r} != {expected!r}"
            )

    speedup = ref_s / max(banded_s, 1e-9)
    print(
        f"kernel: {PAIRS} pairs, reference {ref_s * 1e3:.1f} ms, "
        f"banded {banded_s * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    if speedup < KERNEL_FLOOR:
        raise AssertionError(
            f"banded kernel lost its speedup: {speedup:.2f}x < "
            f"{KERNEL_FLOOR}x floor"
        )
    return speedup


def check_executor(catalog: NameCatalog) -> float:
    """Parallel strategy: identical match sets, executor speedup floor."""
    rng = random.Random(SEED + 1)
    english = [
        record.name
        for record in catalog.records()
        if record.language == "english"
    ]
    queries = rng.sample(english, QUERIES - 1) + ["Zzyzx"]

    naive = NaiveUdfStrategy(catalog)
    naive.select(queries[0])  # warm caches; measure steady-state scans
    start = time.perf_counter()
    expected = {q: [r.id for r in naive.select(q)] for q in queries}
    naive_s = time.perf_counter() - start

    best = 0.0
    for workers in (1, 2):
        with ParallelStrategy(catalog, workers=workers) as strategy:
            strategy.select(queries[0])  # build the encoded table once
            start = time.perf_counter()
            got = {q: [r.id for r in strategy.select(q)] for q in queries}
            parallel_s = time.perf_counter() - start
        if got != expected:
            raise AssertionError(
                f"parallel executor (workers={workers}) diverged from "
                "the naive scan"
            )
        speedup = naive_s / max(parallel_s, 1e-9)
        best = max(best, speedup)
        print(
            f"executor: workers={workers}, naive {naive_s * 1e3:.0f} ms, "
            f"parallel {parallel_s * 1e3:.0f} ms -> {speedup:.1f}x"
        )

    if best < EXECUTOR_FLOOR:
        raise AssertionError(
            f"parallel executor lost its speedup: best {best:.2f}x < "
            f"{EXECUTOR_FLOOR}x floor"
        )
    return best


def main() -> int:
    print(f"perf smoke: rows={ROWS} seed={SEED}")
    catalog = build_catalog()
    check_kernels(catalog)
    check_executor(catalog)
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
