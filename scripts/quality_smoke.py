#!/usr/bin/env python
"""CI quality smoke: the embedding prefilter must stay honest.

A scaled-down, assert-only companion to ``benchmarks/bench_ann.py``
that runs in seconds and fails the build when the ``ann`` strategy's
quality contract breaks:

* **recall** — on the Figure 11 all-pairs harness the prefilter at its
  default admission radius ("cost ≤ 2", ``radius_scale=2.0``) must
  keep ≥ 98% of the exact strategies' match pairs, while every exact
  strategy sits at recall 1.0 by construction;
* **candidate reduction** — on a seeded generated catalog the radius
  search must admit ≥ 5× fewer rows to exact verification than the
  naive scan considers;
* **subset + lossless equivalence** — every lossy ``ann`` result set
  must be a subset of the naive scan's, and with the admission radius
  set from the proven lower-bound constant the result sets must be
  *identical* (the prefilter becomes lossless).

The floors come from :mod:`repro.perf` (``ANN_QUALITY_FLOORS``) — the
single source shared with the acceptance benchmark — so the smoke
gate, the bench and the golden tests cannot drift apart.  End-to-end
speedup is deliberately *not* asserted here: at smoke scale every
strategy finishes in milliseconds and wall-clock ordering is noise;
the 200k-row acceptance run of ``benchmarks/bench_ann.py`` owns that
floor.

Besides asserting, the run writes a JSON report of its ratios
(``--out``) in the same shape ``repro.perf.check_floors`` reads.

Environment knobs: ``REPRO_QUALITY_SMOKE_ROWS`` (default 2000),
``REPRO_QUALITY_SMOKE_SEED`` (default 20040314).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro import perf
from repro.core import (
    AnnPrefilterStrategy,
    LexEqualMatcher,
    MatchConfig,
    NaiveUdfStrategy,
    NameCatalog,
)
from repro.data.generator import generate_performance_dataset
from repro.data.lexicon import build_lexicon
from repro.evaluation.quality import strategy_quality

ROWS = int(os.environ.get("REPRO_QUALITY_SMOKE_ROWS", "2000"))
SEED = int(os.environ.get("REPRO_QUALITY_SMOKE_SEED", "20040314"))
QUERIES = 8


def check_figure11_recall() -> float:
    """Per-strategy Figure 11 recall; returns the ann recall ratio."""
    quality = strategy_quality(build_lexicon(), MatchConfig())
    by_name = {q.strategy: q for q in quality}
    for name in ("naive", "qgram", "metric"):
        if by_name[name].recall_vs_exact != 1.0:
            raise AssertionError(
                f"exact strategy {name!r} lost matches on the Fig. 11 "
                f"harness: recall {by_name[name].recall_vs_exact:.4f}"
            )
    ann = by_name["ann"]
    print(
        f"fig11: ann recall_vs_exact {ann.recall_vs_exact:.4f}, "
        f"candidate fraction {ann.candidate_fraction:.4f}"
    )
    return ann.recall_vs_exact


def build_catalog() -> NameCatalog:
    config = MatchConfig(
        threshold=0.25,
        intra_cluster_cost=1.0,
        weak_indel_cost=1.0,
        vowel_cross_cost=1.0,
    )
    catalog = NameCatalog(LexEqualMatcher(config))
    for item in generate_performance_dataset(build_lexicon(), ROWS):
        catalog.add(item.name, item.language, ipa=item.ipa)
    return catalog


def check_reduction_and_equivalence(catalog: NameCatalog) -> float:
    """Candidate reduction + subset/lossless checks on a seeded battery.

    Returns the candidate-reduction ratio (rows / mean candidates the
    prefilter admitted to exact verification).
    """
    rng = random.Random(SEED)
    stored = [(r.name, r.language) for r in catalog.records()]
    queries = rng.sample(stored, QUERIES - 1) + [("Zzyzx", "english")]

    naive = NaiveUdfStrategy(catalog)
    ann = AnnPrefilterStrategy(catalog)
    lossless = AnnPrefilterStrategy(catalog, lossless=True)

    candidates = []
    for query, language in queries:
        expected = {r.id for r in naive.select(query, language)}
        got = {r.id for r in ann.select(query, language)}
        candidates.append(ann.last_stats.candidates_after_filters)
        if not got <= expected:
            raise AssertionError(
                f"ann reported non-matches for {query!r}: "
                f"{sorted(got - expected)}"
            )
        exact = {r.id for r in lossless.select(query, language)}
        if exact != expected:
            raise AssertionError(
                f"lossless ann diverged from naive on {query!r}: "
                f"missing {sorted(expected - exact)}, "
                f"extra {sorted(exact - expected)}"
            )
    mean_candidates = statistics.fmean(candidates)
    reduction = len(catalog) / max(mean_candidates, 1.0)
    print(
        f"reduction: mean {mean_candidates:.0f} of {len(catalog)} rows "
        f"verified over {len(queries)} queries -> {reduction:.1f}x"
    )
    return reduction


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        help="write the quality-ratio report as JSON to this path",
    )
    args = parser.parse_args(argv)

    print(f"quality smoke: rows={ROWS} seed={SEED}")
    recall = check_figure11_recall()
    catalog = build_catalog()
    reduction = check_reduction_and_equivalence(catalog)
    # No ``cpu_count`` on purpose: this report carries quality ratios
    # only, so the hardware-gated scaling check must stay out of play.
    report = {
        "rows": ROWS,
        "seed": SEED,
        "ratios": {
            "ann_recall_vs_exact": round(recall, 4),
            "ann_candidate_reduction": round(reduction, 3),
        },
    }
    failures = perf.check_floors(report, perf.ANN_QUALITY_FLOORS)
    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report -> {args.out}")
    print("quality smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
