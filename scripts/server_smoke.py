#!/usr/bin/env python3
"""CI smoke test for the query server, exercised as real processes.

Starts ``lexequal serve`` as a subprocess on an ephemeral port, runs a
scripted client exchange (ping, accelerated LexEQUAL query,
prepare/execute, lexequal, stats, and one expected error), then sends
SIGTERM and asserts a clean graceful shutdown (exit code 0 with the
drain message printed).  Run from the repository root::

    python scripts/server_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import RequestFailedError  # noqa: E402
from repro.server.client import LexEqualClient  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_listen_line(proc: subprocess.Popen, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail("server exited before binding")
        if line.startswith("listening on "):
            host, _, port = line.strip().rpartition(" ")[2].rpartition(":")
            return host, int(port)
    fail("server did not report its address in time")


def scripted_exchange(host: str, port: int) -> None:
    with LexEqualClient(host, port, timeout=60.0) as client:
        if client.ping() != "pong":
            fail("ping did not return pong")
        result = client.query(
            "SELECT author, title FROM books "
            "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
        )
        authors = {row[0]["text"] for row in result["rows"]}
        if authors != {"Nehru", "नेहरु", "நேரு"}:
            fail(f"wrong LexEQUAL result: {sorted(authors)}")
        name = client.prepare("SELECT title FROM books WHERE price < :p")
        if client.execute(name, {"p": 20.0})["row_count"] != 2:
            fail("prepare/execute round trip returned wrong count")
        outcome = client.lexequal("Nehru", "நேரு")["outcome"]
        if outcome != "true":
            fail(f"lexequal op returned {outcome!r}")
        try:
            client.query("SELECT broken FROM")
        except RequestFailedError as exc:
            if exc.code != "sql_error":
                fail(f"expected sql_error, got {exc.code}")
        else:
            fail("bad SQL did not produce an error response")
        stats = client.stats()
        if stats["metrics"]["counters"]["server.requests"] < 5:
            fail("stats op did not report the session's requests")
        print(
            "exchange ok: "
            f"{int(stats['metrics']['counters']['server.requests'])} "
            "requests served"
        )


def main() -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        host, port = wait_for_listen_line(proc)
        print(f"server up on {host}:{port}")
        scripted_exchange(host, port)
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            fail("server did not shut down within 30s of SIGTERM")
        output = proc.stdout.read() if proc.stdout else ""
        if code != 0:
            fail(f"server exited {code} after SIGTERM:\n{output}")
        if "server drained and stopped" not in output:
            fail(f"no drain message in server output:\n{output}")
        print("graceful shutdown ok (exit 0)")
        print("SERVER SMOKE OK")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)


if __name__ == "__main__":
    main()
