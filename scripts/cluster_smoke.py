#!/usr/bin/env python3
"""CI cluster chaos smoke: shard-kill failover under concurrent load.

Proves the repro.cluster availability contract on a real process tree
(DESIGN.md §11): a router thread in this process supervises three
shard backend *processes*, and a seeded concurrent workload keeps
running while one shard is SIGKILLed mid-storm.  The gate asserts:

* **zero wrong results** — every response is either the exact full
  answer for its query or is *labeled*: ``degraded: true`` plus a
  ``failed_shards`` list naming real shards, with the returned rows a
  subset of the full answer (never garbage, never a silent subset);
* **zero hangs** — every request resolves inside the client timeout;
  one stuck fan-out fails the gate;
* **recovery** — after the supervisor restarts the killed shard, an
  uncached read returns the clean full answer again;
* **zero leaks** — once the router drains, every shard PID ever
  observed is gone (``os.kill(pid, 0)`` raises) and ``/dev/shm``
  holds no new ``repro_par_*`` segments.

The workload is seeded (``REPRO_CLUSTER_SEED``, default 20040314) so
failures reproduce.  Run from the repository root::

    python scripts/cluster_smoke.py
"""

from __future__ import annotations

import glob
import os
import random
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SEED = int(os.environ.get("REPRO_CLUSTER_SEED", "20040314"))
REQUESTS = int(os.environ.get("REPRO_CLUSTER_REQUESTS", "600"))
WORKERS = int(os.environ.get("REPRO_CLUSTER_WORKERS", "8"))
SHARDS = 3
CLIENT_TIMEOUT = 20.0
#: Per-request pacing.  Unthrottled, 8 workers drain the whole storm
#: over loopback in tens of milliseconds — inside a single cache TTL
#: window and faster than any failure can propagate, which would turn
#: the "kill a shard mid-storm" gate into "kill a shard after the
#: storm".  20ms/request stretches the storm across the outage.
THROTTLE = float(os.environ.get("REPRO_CLUSTER_THROTTLE", "0.02"))

LEXEQUAL_SQL = (
    "SELECT author FROM books "
    "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
)
EXPECTED_AUTHORS = {"Nehru", "नेहरु", "நேரு"}
ALL_AUTHORS = {"Nehru", "नेहरु", "நேரு", "Nero", "René", "Σαρρη"}
ALL_TITLES = {
    "Discovery of India", "भारत एक खोज", "ஆசிய ஜோதி",
    "The Coronation", "Les Méditations", "Παιχνίδια στο Πιάνο",
}


def authors_of(result: dict) -> set:
    return {row[0]["text"] for row in result["rows"]}


#: (kind, full answer) — what a *clean* response must equal exactly
#: and a *degraded* response must be a subset of.
QUERIES = (
    ("lexequal_sql", LEXEQUAL_SQL, EXPECTED_AUTHORS),
    ("authors", "SELECT author FROM books", ALL_AUTHORS),
    ("titles", "SELECT title FROM books", ALL_TITLES),
)

VALID_SHARDS = {f"shard-{i}" for i in range(SHARDS)}


class Tally:
    """Thread-safe outcome ledger for the request storm."""

    def __init__(self, kill_after: int):
        self.lock = threading.Lock()
        self.clean = 0
        self.degraded = 0
        self.unavailable = 0
        self.wrong: list[str] = []
        self.processed = 0
        self.kill_after = kill_after
        #: set once ``kill_after`` requests have resolved — the signal
        #: to SIGKILL the victim *mid-storm*, not before or after it.
        self.kill_point = threading.Event()

    def record(self, outcome: str, detail: str = "") -> None:
        with self.lock:
            if outcome == "wrong":
                self.wrong.append(detail)
            else:
                setattr(self, outcome, getattr(self, outcome) + 1)
            self.processed += 1
            if self.processed >= self.kill_after:
                self.kill_point.set()


def check_response(kind: str, full: set, result: dict, tally) -> None:
    got = (
        {row[0] if isinstance(row[0], str) else row[0]["text"]
         for row in result["rows"]}
    )
    if result.get("degraded"):
        failed = result.get("failed_shards", [])
        if not failed and not result.get("failed_languages"):
            tally.record("wrong", f"{kind}: degraded but nothing named")
        elif not set(failed) <= VALID_SHARDS:
            tally.record("wrong", f"{kind}: bogus failed_shards {failed}")
        elif not got <= full:
            tally.record(
                "wrong", f"{kind}: degraded rows not a subset: {got - full}"
            )
        else:
            tally.record("degraded")
    elif got != full:
        tally.record("wrong", f"{kind}: clean but wrong: {got} != {full}")
    else:
        tally.record("clean")


def worker(index: int, host: str, port: int, specs, tally) -> None:
    from repro.errors import RequestFailedError, TransportError
    from repro.server import LexEqualClient, protocol

    try:
        with LexEqualClient(host, port, timeout=CLIENT_TIMEOUT) as client:
            for kind, sql, full in specs:
                time.sleep(THROTTLE)
                try:
                    if kind == "lexequal_op":
                        result = client.lexequal(sql[0], sql[1], 0.25)
                        if not isinstance(result.get("match"), bool):
                            tally.record(
                                "wrong", f"lexequal_op: {result!r}"
                            )
                        else:
                            tally.record("clean")
                        continue
                    check_response(
                        kind, full, client.query(sql), tally
                    )
                except RequestFailedError as exc:
                    # A structured refusal is an allowed (counted)
                    # outcome during the outage — never a wrong answer.
                    if exc.code == protocol.E_UNAVAILABLE:
                        tally.record("unavailable")
                    else:
                        tally.record("wrong", f"{kind}: {exc}")
    except TransportError as exc:
        tally.record("wrong", f"worker {index} transport: {exc}")


def main() -> int:
    from repro.cluster import BackgroundCluster
    from repro.server import LexEqualClient

    rng = random.Random(SEED)
    started = time.perf_counter()
    shm_before = set(glob.glob("/dev/shm/repro_par_*"))

    # Seeded request storm: hot-name skew plus full-table scans, plus
    # matcher-only lexequal ops, pre-dealt to the workers.
    specs: list = []
    for _ in range(REQUESTS):
        roll = rng.random()
        if roll < 0.15:
            specs.append(
                ("lexequal_op", ("Nehru", rng.choice(["नेहरु", "Nero"])),
                 None)
            )
        else:
            specs.append(QUERIES[rng.randrange(len(QUERIES))])
    deals = [specs[i::WORKERS] for i in range(WORKERS)]

    print(
        f"cluster smoke (seed {SEED}, {REQUESTS} requests, "
        f"{WORKERS} workers, {SHARDS} shards)"
    )
    from repro.server import RetryPolicy

    all_pids: set[int] = set()
    tally = Tally(kill_after=REQUESTS // 3)
    cluster = BackgroundCluster(
        SHARDS,
        supervisor_options={
            "health_interval": 0.25,
            # Hold the victim down ~1.5s so the storm demonstrably
            # runs through the outage window before the restart.
            "restart_policy": RetryPolicy(
                max_attempts=100, base_delay=1.5,
                multiplier=1.0, max_delay=1.5,
            ),
        },
        # Near-zero TTL: the gate is about fan-outs hitting a dead
        # shard, so almost every request must actually fan out
        # (cache behaviour has its own tests and benchmark).
        cache_ttl=0.05,
    )
    with cluster:
        with LexEqualClient(
            cluster.host, cluster.port, timeout=CLIENT_TIMEOUT
        ) as control:
            health = control.health()
            assert health["status"] == "ok", health
            pids = {s["name"]: s["pid"] for s in health["shards"]}
            all_pids.update(pids.values())

            threads = [
                threading.Thread(
                    target=worker,
                    args=(i, cluster.host, cluster.port, deals[i], tally),
                )
                for i in range(WORKERS)
            ]
            for t in threads:
                t.start()

            # SIGKILL a seeded shard from the *outside* once a third
            # of the storm has resolved — the supervisor must notice
            # on its own, and the remaining two thirds run through
            # the outage.
            assert tally.kill_point.wait(timeout=120.0), "storm stalled"
            victim = f"shard-{rng.randrange(SHARDS)}"
            os.kill(pids[victim], 9)
            print(
                f"  SIGKILLed {victim} (pid {pids[victim]}) after "
                f"{tally.processed} requests"
            )

            deadline = time.monotonic() + 120.0
            for t in threads:
                t.join(timeout=max(0.0, deadline - time.monotonic()))
            hung = [t for t in threads if t.is_alive()]
            assert not hung, f"{len(hung)} worker(s) hung — fan-out stuck"

            assert not tally.wrong, "wrong results:\n  " + "\n  ".join(
                tally.wrong[:20]
            )
            total = tally.clean + tally.degraded + tally.unavailable
            assert total == REQUESTS, (total, REQUESTS)
            assert tally.clean > 0, "no clean responses at all"
            assert tally.degraded > 0, (
                "the outage was never visible: no degraded responses"
            )
            print(
                f"  storm done: {tally.clean} clean, "
                f"{tally.degraded} degraded (labeled), "
                f"{tally.unavailable} refused, 0 wrong, 0 hung"
            )

            # Recovery: the supervisor restarts the victim and an
            # uncached read is clean again (cache_ttl=1s has lapsed).
            assert cluster.supervisor.wait_all_up(timeout=60.0), (
                "killed shard was never readmitted"
            )
            recovered = None
            for _ in range(150):
                result = control.query("SELECT author FROM books")
                if not result.get("degraded"):
                    recovered = result
                    break
                time.sleep(0.2)
            assert recovered is not None, "cluster never healed"
            assert authors_of(recovered) == ALL_AUTHORS, recovered
            health = control.health()
            assert health["status"] == "ok", health
            all_pids.update(s["pid"] for s in health["shards"])
            restarts = sum(s["restarts"] for s in health["shards"])
            assert restarts >= 1, health["shards"]
            print(
                f"  recovered: {victim} restarted "
                f"(ring restarts={restarts}), full answers are back"
            )

    # The drain must reap every shard process ever spawned...
    for pid in sorted(all_pids):
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        raise AssertionError(f"leaked shard process {pid}")
    # ...and leave no new shared-memory segments behind.
    leaked = set(glob.glob("/dev/shm/repro_par_*")) - shm_before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"
    print(
        f"cluster smoke OK in {time.perf_counter() - started:.1f}s "
        f"(no leaked processes, no leaked shm)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
