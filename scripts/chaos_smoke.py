#!/usr/bin/env python3
"""CI chaos smoke: the query server under a seeded fault schedule.

Runs the real server (on a background thread, over real sockets) while
the failpoint registry injects ~10% connection drops (half on the read
side, half on the write side), 5% per-language TTP failures, and a
trickle of admission rejects, then drives 500 requests from concurrent
resilient clients and enforces the robustness contract:

* zero incorrect results — every success is exactly right or properly
  degraded (missing rows explained by its ``failed_languages``);
* zero hangs — every request resolves within a hard wall bound;
* every degraded response is labeled ``degraded: true`` (unlabeled
  partial answers count as incorrect);
* bounded error rate — retries absorb nearly all injected faults.

The schedule is seeded (``REPRO_CHAOS_SEED``, default 2004) so failures
reproduce.  Run from the repository root::

    python scripts/chaos_smoke.py
"""

from __future__ import annotations

import glob
import os
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import faults, obs  # noqa: E402
from repro.errors import (  # noqa: E402
    CircuitOpenError,
    RequestFailedError,
    TransportError,
)
from repro.server import (  # noqa: E402
    BackgroundServer,
    LexEqualClient,
    RetryPolicy,
)

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "2004"))
TOTAL_REQUESTS = int(os.environ.get("REPRO_CHAOS_REQUESTS", "500"))
CLIENTS = 8
REQUEST_WALL_SECONDS = 30.0
MAX_ERROR_RATE = 0.10

LEXEQUAL_SQL = (
    "SELECT author FROM books "
    "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
)
LANG_OF = {"Nehru": "english", "नेहरु": "hindi", "நேரு": "tamil"}
EXPECTED_AUTHORS = frozenset(LANG_OF)
ACCEPTABLE_CODES = frozenset({"overloaded", "timeout", "shutting_down"})


def classify_query(result: dict):
    authors = {row[0]["text"] for row in result["rows"]}
    extra = authors - EXPECTED_AUTHORS
    if extra:
        return "wrong", f"unexpected rows {extra}"
    missing = EXPECTED_AUTHORS - authors
    if not missing:
        return "ok", None
    if not result.get("degraded"):
        return "wrong", f"missing {missing} without degraded marker"
    failed = set(result.get("failed_languages", ()))
    unexplained = {
        name
        for name in missing
        if LANG_OF[name] not in failed and "english" not in failed
    }
    if unexplained:
        return "wrong", f"missing {unexplained} not explained by {failed}"
    return "degraded", None


def classify_lexequal(result: dict):
    outcome = result.get("outcome")
    if outcome == "true":
        return "ok", None
    if outcome == "noresource" and result.get("degraded"):
        if set(result.get("failed_languages", ())) & {"hindi", "english"}:
            return "degraded", None
    return "wrong", f"bad lexequal outcome {result!r}"


def chaos_schedule() -> None:
    """10% connection drops, 5% TTP failures, occasional rejects."""
    faults.seed(SEED)
    faults.configure("server.conn.drop_read", probability=0.05)
    faults.configure("server.conn.drop_write", probability=0.05)
    faults.configure(
        "ttp.transform",
        probability=0.05,
        error="ttp",
        languages=("hindi", "tamil"),
    )
    faults.configure("pool.admit", probability=0.03)


def worker(host: str, port: int, rounds: int, record) -> None:
    retry = RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.2)
    client = LexEqualClient(
        host, port, timeout=REQUEST_WALL_SECONDS, retry=retry
    )
    try:
        for round_no in range(rounds):
            op = round_no % 3
            started = time.monotonic()
            try:
                if op == 0:
                    record(*classify_query(client.query(LEXEQUAL_SQL)))
                elif op == 1:
                    record(
                        *classify_lexequal(client.lexequal("Nehru", "नेहरु"))
                    )
                elif client.ping() == "pong":
                    record("ok", None)
                else:
                    record("wrong", "bad ping")
            except RequestFailedError as exc:
                if exc.code in ACCEPTABLE_CODES:
                    record("error", exc.code)
                else:
                    record("wrong", f"unexpected error code {exc.code!r}")
            except (TransportError, CircuitOpenError) as exc:
                record("error", repr(exc))
            elapsed = time.monotonic() - started
            if elapsed > REQUEST_WALL_SECONDS:
                record("hang", f"request took {elapsed:.1f}s")
    except Exception as exc:  # harness bug, not a chaos outcome
        record("crash", repr(exc))
    finally:
        client.close()


def main() -> int:
    outcomes: list = []
    lock = threading.Lock()

    def record(kind, detail):
        with lock:
            outcomes.append((kind, detail))

    rounds = TOTAL_REQUESTS // CLIENTS
    started = time.monotonic()
    with BackgroundServer(fault_injection=True, max_workers=4) as bg:
        chaos_schedule()
        print(
            f"chaos smoke: {CLIENTS} clients x {rounds} requests "
            f"against {bg.host}:{bg.port}, seed {SEED}"
        )
        threads = [
            threading.Thread(target=worker, args=(bg.host, bg.port, rounds, record))
            for _ in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600.0)
        hung = [t for t in threads if t.is_alive()]
        fired = faults.describe()
        counters = dict(obs.snapshot().get("counters", {}))
        faults.reset()  # stop injecting before the drain/shutdown
    wall = time.monotonic() - started

    by_kind: dict = {}
    for kind, _ in outcomes:
        by_kind[kind] = by_kind.get(kind, 0) + 1
    total = len(outcomes)
    injected = {
        name: int(point["fires"]) for name, point in sorted(fired.items())
    }
    print(
        f"outcomes over {total} requests in {wall:.1f}s: "
        + ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
    )
    print(f"faults fired: {injected}")
    print(
        "client resilience: "
        f"retries={int(counters.get('client.retries', 0))} "
        f"reconnects={int(counters.get('client.reconnects', 0))} "
        f"transport_errors={int(counters.get('client.transport_errors', 0))}"
    )
    print(
        "server: "
        f"degraded_responses={int(counters.get('server.degraded_responses', 0))} "
        f"deadline_cancels={int(counters.get('server.deadline.cancels', 0))} "
        f"overload_rejects={int(counters.get('server.rejects.overloaded', 0))}"
    )

    failures = []
    if hung:
        failures.append(f"{len(hung)} worker threads hung")
    if total < rounds * CLIENTS:
        failures.append(
            f"only {total}/{rounds * CLIENTS} requests recorded"
        )
    for kind in ("wrong", "hang", "crash"):
        bad = [detail for k, detail in outcomes if k == kind]
        if bad:
            failures.append(f"{len(bad)} {kind} outcomes, first: {bad[:3]}")
    if sum(injected.values()) == 0:
        failures.append("no faults fired: the schedule did not inject")
    errors = by_kind.get("error", 0)
    if total and errors > total * MAX_ERROR_RATE:
        failures.append(
            f"error rate {errors}/{total} exceeds "
            f"{MAX_ERROR_RATE:.0%} budget"
        )
    # Shared-memory hygiene: whatever the fault schedule did to the
    # parallel executor, no repro_par_* segment may outlive the run.
    leaked = sorted(
        os.path.basename(p)
        for p in glob.glob("/dev/shm/repro_par_*")
    )
    if leaked:
        failures.append(f"leaked /dev/shm segments: {leaked}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("CHAOS SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
