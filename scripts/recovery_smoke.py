#!/usr/bin/env python3
"""CI storage smoke: crash recovery under SIGKILL and injected faults.

Proves the repro.storage durability contract on a real process tree:

* **SIGKILL rounds** — a child process opens a durable database and
  inserts rows one commit (fsync) at a time, printing ``committed N``
  after each acknowledged commit and checkpointing every
  ``CHECKPOINT_EVERY`` rows (so kills land before, between, and after
  checkpoints).  The parent SIGKILLs it at a seeded random moment,
  reopens the directory, and asserts:

  - exactly the acknowledged prefix survived (the in-flight row may
    land either side of the kill, never anything else);
  - every surviving row has exactly the content the child wrote;
  - every B+ tree index passes ``check_invariants`` and resolves every
    row;
  - the re-attached phonetic accelerator returns candidate sets
    *identical* to a from-scratch rebuild over the recovered rows
    (differential test — zero corrupt indexes).

* **torn-WAL round** — the child arms the ``storage.wal.append``
  failpoint, which writes half a WAL record and dies; reopen must
  truncate the torn tail and keep the committed prefix.

* **aborted-checkpoint round** — the child arms ``storage.checkpoint``
  (abort before the atomic rename), survives the failed checkpoint, and
  keeps writing; reopen must recover everything from the previous
  checkpoint + WAL.

* **post-rename crash round** — the child arms
  ``storage.checkpoint.post_rename`` and dies in the window *between*
  the checkpoint rename and the WAL reset: the new checkpoint is on
  disk but the stale pre-checkpoint WAL was never truncated.  Reopen
  must skip the already-folded records (replaying them would
  double-insert and brick the directory with a rowid-drift error) and
  recover exactly the committed rows.

The schedule is seeded (``REPRO_RECOVERY_SEED``, default 20040314) so
failures reproduce.  Run from the repository root::

    python scripts/recovery_smoke.py
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SEED = int(os.environ.get("REPRO_RECOVERY_SEED", "20040314"))
KILL_ROUNDS = int(os.environ.get("REPRO_RECOVERY_ROUNDS", "3"))
CHILD_ROWS = int(os.environ.get("REPRO_RECOVERY_ROWS", "120"))
CHECKPOINT_EVERY = 25

_SYLLABLES = (
    "ka", "ra", "ma", "na", "ta", "la", "sa", "ni", "va", "de",
    "ri", "mo", "pa", "ha", "ja", "gu",
)


def name_of(i: int) -> str:
    """Deterministic pronounceable name for row ``i`` (alphabetic only,
    so the english TTP converter accepts it)."""
    rng = random.Random(SEED * 1_000_003 + i)
    return "".join(
        rng.choice(_SYLLABLES) for _ in range(rng.randint(3, 5))
    ).capitalize()


# --------------------------------------------------------------- child


def run_child(
    data_dir: str,
    fail_append_at: int,
    fail_checkpoint_at: int,
    fail_post_rename_at: int,
) -> int:
    from repro import faults
    from repro.core.engine import create_phonetic_accelerator
    from repro.core.matcher import LexEqualMatcher
    from repro.errors import StorageError
    from repro.minidb.schema import Column
    from repro.minidb.values import SqlType
    from repro.storage import open_database

    db = open_database(data_dir, matcher=LexEqualMatcher())
    if "people" not in db.table_names():
        db.create_table(
            "people",
            [
                Column("id", SqlType.INTEGER, nullable=False),
                Column("name", SqlType.TEXT, nullable=False),
            ],
        )
        create_phonetic_accelerator(db, "people", "name", method="qgram")
        db.create_index("idx_people_id", "people", "id")
    start = len(db.table("people"))
    for i in range(start, CHILD_ROWS):
        if i == fail_append_at:
            faults.configure("storage.wal.append", count=1)
        if i == fail_checkpoint_at:
            faults.configure("storage.checkpoint", count=1)
            try:
                db.checkpoint()
            except StorageError:
                print(f"checkpoint aborted at {i}", flush=True)
        if i == fail_post_rename_at:
            faults.configure("storage.checkpoint.post_rename", count=1)
            try:
                db.checkpoint()
            except StorageError:
                # Die right here: the new checkpoint was renamed in,
                # the stale WAL was never reset.
                print(f"post-rename crash at {i}", flush=True)
                return 4
        try:
            db.insert("people", (i, name_of(i)))
        except StorageError as exc:
            print(f"torn at {i}: {exc}", flush=True)
            return 3
        print(f"committed {i + 1}", flush=True)
        if (i + 1) % CHECKPOINT_EVERY == 0:
            db.checkpoint()
            print(f"checkpointed {i + 1}", flush=True)
    db.storage.close()
    print("done", flush=True)
    return 0


# -------------------------------------------------------------- parent


def verify(data_dir: str, committed: int, slack: int) -> None:
    """Reopen ``data_dir`` and check the durability contract."""
    from repro.core.engine import create_phonetic_accelerator
    from repro.core.matcher import LexEqualMatcher
    from repro.minidb.catalog import Database
    from repro.minidb.schema import Column
    from repro.minidb.values import SqlType
    from repro.storage import open_database

    matcher = LexEqualMatcher()
    db = open_database(data_dir, matcher=matcher)
    rows = sorted(db.table("people").rows())
    count = len(rows)
    assert committed <= count <= committed + slack, (
        f"recovered {count} rows, child acknowledged {committed} "
        f"(allowed slack {slack})"
    )
    for i, row in enumerate(rows):
        expected = (i, name_of(i))
        assert row == expected, f"row {i}: {row!r} != {expected!r}"

    # Index integrity: structural invariants + every row resolvable.
    for info in db.indexes_for("people"):
        info.tree.check_invariants()
    id_tree = db.index("idx_people_id").tree
    for i, _name in rows:
        assert id_tree.search(i), f"id index lost row {i}"

    # Differential accelerator check: attached-from-snapshot candidates
    # must equal a from-scratch rebuild over the same rows.
    attached = db.accelerator_for("people", "name")
    assert attached is not None, "accelerator was not re-attached"
    fresh_db = Database()
    fresh_db.create_table(
        "people",
        [
            Column("id", SqlType.INTEGER, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
        ],
    )
    for row in rows:
        fresh_db.insert("people", row)
    fresh = create_phonetic_accelerator(
        fresh_db, "people", "name", matcher, method="qgram"
    )
    rng = random.Random(SEED + count)
    queries = [name_of(rng.randrange(max(1, count))) for _ in range(8)]
    queries.append("Karamana")  # probe an arbitrary non-stored name too
    for query in queries:
        got = attached.candidate_rowids(query, None)
        want = fresh.candidate_rowids(query, None)
        assert got == want, (
            f"candidate divergence for {query!r}: {got} != {want}"
        )
    db.storage.close()


def last_committed(output: str) -> int:
    committed = 0
    for line in output.splitlines():
        if line.startswith("committed "):
            committed = int(line.split()[1])
    return committed


def spawn_child(data_dir: str, *, fail_append_at: int = -1,
                fail_checkpoint_at: int = -1,
                fail_post_rename_at: int = -1) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            __file__,
            "--child",
            data_dir,
            str(fail_append_at),
            str(fail_checkpoint_at),
            str(fail_post_rename_at),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=str(REPO_ROOT),
    )


def kill_round(base: Path, rng: random.Random, round_no: int) -> None:
    data_dir = str(base / f"kill-{round_no}")
    child = spawn_child(data_dir)
    # Read acknowledgements live; kill after a seeded number of them.
    target = rng.randint(2, CHILD_ROWS - 2)
    committed = 0
    assert child.stdout is not None
    for line in child.stdout:
        if line.startswith("committed "):
            committed = int(line.split()[1])
            if committed >= target:
                break
    os.kill(child.pid, signal.SIGKILL)
    child.wait()
    child.stdout.close()
    # The insert after the last acknowledged commit may also have hit
    # the disk (killed between fsync and print): slack 1.
    verify(data_dir, committed, slack=1)
    print(
        f"  kill round {round_no}: SIGKILL after {committed} commits "
        f"-> recovered OK"
    )


def torn_round(base: Path, rng: random.Random) -> None:
    data_dir = str(base / "torn")
    fail_at = rng.randint(5, CHILD_ROWS - 5)
    child = spawn_child(data_dir, fail_append_at=fail_at)
    output, _ = child.communicate(timeout=600)
    assert child.returncode == 3, (
        f"child should die on the torn append (rc={child.returncode}):\n"
        f"{output}"
    )
    committed = last_committed(output)
    assert committed == fail_at, (committed, fail_at)
    # The torn half-record must be truncated, nothing else lost.
    verify(data_dir, committed, slack=0)
    print(f"  torn-WAL round: half record at row {fail_at} truncated OK")


def aborted_checkpoint_round(base: Path, rng: random.Random) -> None:
    data_dir = str(base / "ckpt")
    fail_at = rng.randint(5, CHILD_ROWS - 5)
    child = spawn_child(data_dir, fail_checkpoint_at=fail_at)
    output, _ = child.communicate(timeout=600)
    assert child.returncode == 0, (
        f"child should survive the aborted checkpoint "
        f"(rc={child.returncode}):\n{output}"
    )
    assert f"checkpoint aborted at {fail_at}" in output, output
    verify(data_dir, CHILD_ROWS, slack=0)
    print(
        f"  aborted-checkpoint round: abort at row {fail_at} "
        f"left recovery intact"
    )


def post_rename_round(base: Path, rng: random.Random) -> None:
    data_dir = str(base / "post-rename")
    fail_at = rng.randint(5, CHILD_ROWS - 5)
    child = spawn_child(data_dir, fail_post_rename_at=fail_at)
    output, _ = child.communicate(timeout=600)
    assert child.returncode == 4, (
        f"child should die in the rename/reset window "
        f"(rc={child.returncode}):\n{output}"
    )
    assert f"post-rename crash at {fail_at}" in output, output
    # New checkpoint + stale untruncated WAL: recovery must skip the
    # already-folded records, not replay them over the checkpoint.
    verify(data_dir, fail_at, slack=0)
    print(
        f"  post-rename round: crash between checkpoint rename and "
        f"WAL reset at row {fail_at} recovered OK"
    )


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        return run_child(
            sys.argv[2], int(sys.argv[3]), int(sys.argv[4]),
            int(sys.argv[5]),
        )
    import tempfile

    rng = random.Random(SEED)
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="recovery-smoke-") as tmp:
        base = Path(tmp)
        print(f"recovery smoke (seed {SEED}, {CHILD_ROWS} rows/child)")
        for round_no in range(KILL_ROUNDS):
            kill_round(base, rng, round_no)
        torn_round(base, rng)
        aborted_checkpoint_round(base, rng)
        post_rename_round(base, rng)
    print(f"recovery smoke OK in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
