"""The tagged multiscript lexicon (paper Section 4.1).

Each base name yields one *group*: its English spelling plus mechanical
Hindi and Tamil conversions, all sharing a tag number.  "Any match of two
multilingual strings is considered to be correct if their tag-numbers are
the same, and considered to be a false-positive otherwise" — the quality
harness (:mod:`repro.evaluation.quality`) applies exactly that rule.

Entries carry their phonemic (IPA) form, produced by the corresponding
TTP converter, so downstream code never re-derives it inconsistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.data.names_american import AMERICAN_NAMES
from repro.data.names_generic import GENERIC_NAMES
from repro.data.names_indian import INDIAN_NAMES
from repro.data.transliterate import (
    adapt_english_to_indic,
    romanization_to_indic_phonemes,
    to_devanagari,
    to_kannada,
    to_tamil,
)
from repro.errors import DatasetError
from repro.phonetics.parse import format_phonemes, parse_ipa
from repro.ttp.registry import TTPRegistry, default_registry

# Names excluded from the default lexicon because their groups collide
# phonetically with another group's (rhyme families such as Rajan/Ranjan,
# cross-domain homophones such as Hari/Harry).  The paper's lexicon came
# from *random* directory picks, which are far sparser in such collisions
# than exhaustive common-name lists; this exclusion list (computed once,
# greedily, from the pairwise distance matrix at the default
# configuration) restores comparable sparsity while deliberately leaving
# ~40 colliding pairs in place — the paper, too, reports a residual ~15%
# false-positive rate at its operating point.  Pass
# ``exclude_collisions=False`` to build_lexicon for the raw lists.
COLLISION_EXCLUSIONS: frozenset[str] = frozenset(
    ['Acetylene', 'Adam', 'Aditya', 'Aishwarya', 'Alan', 'Aluminium', 'Amala', 'Amarnath', 'Amber', 'Amit', 'Ammonium', 'Amol', 'Amrish', 'Anand', 'Anchor', 'Anderson', 'Andrea', 'Anil', 'Anita', 'Anjali', 'Ankur', 'Anuradha', 'Arizona', 'Arjun', 'Asha', 'Ashok', 'Aspartame', 'Athens', 'Austin', 'Badri', 'Baker', 'Balaji', 'Balram', 'Banerjee', 'Barnes', 'Barrel', 'Basket', 'Bell', 'Bennett', 'Benzene', 'Beth', 'Bhagat', 'Bharat', 'Bhavana', 'Bhuvan', 'Boston', 'Bottle', 'Brenda', 'Brian', 'Bromine', 'Brooklyn', 'Bruce', 'Bryan', 'Bucket', 'Button', 'Cabinet', 'Caffeine', 'Camera', 'Canada', 'Candle', 'Carbon', 'Carburetor', 'Carol', 'Caroline', 'Carolyn', 'Carter', 'Catherine', 'Chandan', 'Chandran', 'Chatterjee', 'Chawla', 'Chlorine', 'Chopra', 'Christine', 'Christopher', 'Cindy', 'Compass', 'Cooper', 'Copper', 'Craig', 'Dakota', 'Dallas', 'Danielle', 'Davis', 'Daya', 'Debra', 'Deepak', 'Dennis', 'Desmond', 'Devendra', 'Dharma', 'Diamond', 'Diana', 'Dinesh', 'Divya', 'Dominic', 'Doris', 'Dorothy', 'Drum', 'Edwards', 'Elaine', 'Eleanora', 'Emily', 'Emma', 'Evans', 'Fisher', 'Foster', 'Fred', 'Frederick', 'Funnel', 'Gajendra', 'Gallium', 'Ganesh', 'Garg', 'Gary', 'Gaurav', 'Gauri', 'Georgia', 'Gerald', 'Goblet', 'Gopal', 'Govind', 'Gray', 'Griffin', 'Gyroscope', 'Hammer', 'Hari', 'Harish', 'Harriet', 'Harris', 'Harrison', 'Harry', 'Harsha', 'Helen', 'Helium', 'Hemalatha', 'Hill', 'Houston', 'Humphrey', 'Hunter', 'Inder', 'Indiana', 'Irene', 'Jagan', 'Jain', 'James', 'Jane', 'Jason', 'Jayant', 'Jeffrey', 'Jennifer', 'Jerry', 'Joan', 'John', 'Johnson', 'Joshi', 'Judy', 'Julie', 'Kailash', 'Kakkar', 'Kala', 'Kamal', 'Kamala', 'Kannan', 'Karan', 'Karen', 'Kathleen', 'Kathryn', 'Kathy', 'Kavita', 'Kelly', 'Kennedy', 'Kettle', 'Kimberly', 'Kiran', 'Kishore', 'Kolkata', 'Krishnan', 'Krypton', 'Kuldeep', 'Kumar', 'Kyle', 'Ladder', 'Lakshmi', 'Larry', 'Lauren', 'Lawrence', 'Leela', 'Lewis', 'Lisa', 'Lithium', 'Lockwood', 'Lois', 'Lokesh', 'London', 'Louis', 'Machine', 'Madan', 'Madhav', 'Madhuri', 'Madras', 'Magnesium', 'Mahesh', 'Malati', 'Mamta', 'Manganese', 'Manila', 'Manoj', 'Maria', 'Martha', 'Mary', 'Meera', 'Megan', 'Mehra', 'Methanol', 'Methylene', 'Michael', 'Michelle', 'Milan', 'Miller', 'Mitchell', 'Mohan', 'Montana', 'Murali', 'Murray', 'Murthy', 'Mysore', 'Nagalakshmi', 'Nagendra', 'Nagesh', 'Nair', 'Nanda', 'Narayan', 'Nathan', 'Naveen', 'Needle', 'Neela', 'Nelson', 'Nikhil', 'Nilesh', 'Nitin', 'Nitrogen', 'Norma', 'Oxford', 'Palmer', 'Pandey', 'Paraffin', 'Paresh', 'Paris', 'Parker', 'Patrick', 'Patterson', 'Pavan', 'Pedal', 'Perry', 'Peter', 'Peterson', 'Philip', 'Phyllis', 'Pillai', 'Pillar', 'Pitcher', 'Portland', 'Pramod', 'Prema', 'Prescott', 'Price', 'Pulley', 'Radha', 'Radium', 'Raghunath', 'Rajan', 'Rajendra', 'Rajesh', 'Rakesh', 'Raman', 'Randy', 'Rani', 'Ranjan', 'Raymond', 'Reed', 'Ribbon', 'Roberts', 'Rogers', 'Rohan', 'Ronald', 'Rose', 'Russell', 'Saccharin', 'Sagar', 'Samantha', 'Sanchez', 'Sanders', 'Sandra', 'Santhanam', 'Sarala', 'Sarita', 'Sean', 'Seattle', 'Shanta', 'Sharad', 'Sharma', 'Sharon', 'Shashi', 'Shekhar', 'Shenoy', 'Shetty', 'Shirley', 'Shivani', 'Shovel', 'Silicon', 'Simmons', 'Sinha', 'Sita', 'Smita', 'Somasundaram', 'Sridhar', 'Srinivas', 'Steven', 'Subramaniam', 'Sudhir', 'Sullivan', 'Suman', 'Sunita', 'Suraj', 'Suresh', 'Susan', 'Swati', 'Tartar', 'Tarun', 'Thakur', 'Theodore', 'Theresa', 'Tina', 'Tiwari', 'Toluene', 'Tunnel', 'Tyler', 'Vani', 'Varun', 'Venice', 'Victor', 'Vienna', 'Vimal', 'Vinay', 'Vivek', 'Walker', 'Walter', 'Washington', 'Watson', 'William', 'Wright', 'Xenon', 'Yashwant', 'Young', 'Zebediah', 'Zirconium']
)

_DOMAIN_SOURCES: dict[str, tuple[str, ...]] = {
    "indian": INDIAN_NAMES,
    "american": AMERICAN_NAMES,
    "generic": GENERIC_NAMES,
}


@dataclass(frozen=True)
class LexiconEntry:
    """One string of the tagged lexicon."""

    name: str
    language: str
    tag: int
    ipa: str
    domain: str

    @property
    def lexicographic_length(self) -> int:
        return len(self.name)

    @property
    def phonemic_length(self) -> int:
        return len(parse_ipa(self.ipa))


class MultiscriptLexicon:
    """An in-memory tagged multiscript lexicon."""

    def __init__(self, entries: list[LexiconEntry]):
        if not entries:
            raise DatasetError("empty lexicon")
        self.entries = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def groups(self) -> dict[int, list[LexiconEntry]]:
        """Entries keyed by tag number."""
        groups: dict[int, list[LexiconEntry]] = {}
        for entry in self.entries:
            groups.setdefault(entry.tag, []).append(entry)
        return groups

    def by_language(self, language: str) -> list[LexiconEntry]:
        language = language.lower()
        return [e for e in self.entries if e.language == language]

    def languages(self) -> tuple[str, ...]:
        return tuple(sorted({e.language for e in self.entries}))

    # ---------------------------------------------------------- statistics

    def average_lengths(self) -> tuple[float, float]:
        """(average lexicographic length, average phonemic length).

        The paper reports 7.35 / 7.16 for its lexicon (Figure 10).
        """
        lex = sum(e.lexicographic_length for e in self.entries)
        pho = sum(e.phonemic_length for e in self.entries)
        return lex / len(self.entries), pho / len(self.entries)

    def length_histogram(self, kind: str = "lexicographic") -> dict[int, int]:
        """String-length frequency distribution (Figure 10 data)."""
        histogram: dict[int, int] = {}
        for entry in self.entries:
            if kind == "lexicographic":
                length = entry.lexicographic_length
            elif kind == "phonemic":
                length = entry.phonemic_length
            else:
                raise DatasetError(f"unknown histogram kind {kind!r}")
            histogram[length] = histogram.get(length, 0) + 1
        return dict(sorted(histogram.items()))

    # ----------------------------------------------------------------- I/O

    def save_tsv(self, path: str | Path) -> None:
        """Write the lexicon as a TSV file (tag, language, name, ipa)."""
        lines = ["tag\tlanguage\tdomain\tname\tipa"]
        for e in self.entries:
            lines.append(
                f"{e.tag}\t{e.language}\t{e.domain}\t{e.name}\t{e.ipa}"
            )
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load_tsv(cls, path: str | Path) -> MultiscriptLexicon:
        """Read a lexicon written by :meth:`save_tsv`."""
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        if not lines or not lines[0].startswith("tag\t"):
            raise DatasetError(f"{path}: not a lexicon TSV file")
        entries = []
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) != 5:
                raise DatasetError(f"{path}:{lineno}: expected 5 columns")
            tag, language, domain, name, ipa = parts
            entries.append(
                LexiconEntry(
                    name=name,
                    language=language,
                    tag=int(tag),
                    ipa=ipa,
                    domain=domain,
                )
            )
        return cls(entries)


def build_lexicon(
    domains: tuple[str, ...] = ("indian", "american", "generic"),
    languages: tuple[str, ...] = ("english", "hindi", "tamil"),
    registry: TTPRegistry | None = None,
    limit_per_domain: int | None = None,
    exclude_collisions: bool = True,
) -> MultiscriptLexicon:
    """Build the tagged multiscript lexicon from the base name lists.

    For each base name the English entry is the name itself; the Hindi
    and Tamil entries come from the transliteration channel
    (:mod:`repro.data.transliterate`): Indian names are read with Indic
    romanization conventions (the spelling approximates an Indic
    original), while American/generic names are transliterated from
    their English pronunciation folded onto the Indic inventory — both
    mirror how the paper's hand conversion worked.  Every entry's IPA is
    then produced by that language's own TTP converter, so each script
    contributes its own reading — the source of the controlled fuzziness
    the experiments measure.
    """
    registry = registry or default_registry()
    seen: set[str] = set()
    entries: list[LexiconEntry] = []
    tag = 0
    for domain in domains:
        if domain not in _DOMAIN_SOURCES:
            raise DatasetError(f"unknown lexicon domain {domain!r}")
        names = _DOMAIN_SOURCES[domain]
        if limit_per_domain is not None:
            names = names[:limit_per_domain]
        for name in names:
            if exclude_collisions and name in COLLISION_EXCLUSIONS:
                continue
            key = name.lower()
            if key in seen:
                continue
            seen.add(key)
            tag += 1
            if domain == "indian":
                intent = romanization_to_indic_phonemes(name)
            else:
                english = registry.transform(name, "english")
                intent = adapt_english_to_indic(english)
            scripts = {
                "english": name,
                "hindi": to_devanagari(intent),
                "tamil": to_tamil(intent),
                "kannada": to_kannada(intent),
            }
            for language in languages:
                if language not in scripts:
                    raise DatasetError(
                        f"no transliteration path for {language!r}"
                    )
                text = scripts[language]
                ipa = format_phonemes(registry.transform(text, language))
                entries.append(
                    LexiconEntry(
                        name=text,
                        language=language,
                        tag=tag,
                        ipa=ipa,
                        domain=domain,
                    )
                )
    return MultiscriptLexicon(entries)


_DEFAULT_LEXICON: MultiscriptLexicon | None = None


def default_lexicon() -> MultiscriptLexicon:
    """The full three-script lexicon (cached; ~2400 entries)."""
    global _DEFAULT_LEXICON
    if _DEFAULT_LEXICON is None:
        _DEFAULT_LEXICON = build_lexicon()
    return _DEFAULT_LEXICON
