"""The synthetic performance dataset (paper Section 5).

"Since the real multiscript lexicon ... was not large enough for
performance experiments, we synthetically generated a large dataset ...
Specifically, we concatenated each string with all remaining strings
*within a given language*.  The generated set contained about 200,000
names, with an average lexicographic length of 14.71 and average phonemic
length of 14.31."

:func:`generate_performance_dataset` reproduces that construction with a
configurable target size: pairs are drawn deterministically (round-robin
over increasing index offsets) so any two runs — and any two machines —
produce the same dataset.  Phonemic forms are concatenated from the
constituents' IPA, matching the paper's per-string transformation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.lexicon import MultiscriptLexicon
from repro.errors import DatasetError


@dataclass(frozen=True)
class GeneratedName:
    """One synthetic name: a concatenation of two lexicon strings."""

    name: str
    language: str
    ipa: str


def generate_performance_dataset(
    lexicon: MultiscriptLexicon,
    target_size: int = 200_000,
    languages: tuple[str, ...] | None = None,
) -> list[GeneratedName]:
    """Concatenate lexicon strings within each language.

    Pair selection is deterministic: for offsets 1, 2, ... each entry
    ``i`` pairs with entry ``(i + offset) mod n`` of the same language,
    until the per-language quota (``target_size`` split evenly) is met.
    This covers "each string with all remaining strings" in the limit
    while allowing any smaller target.
    """
    if target_size <= 0:
        raise DatasetError(f"target_size must be positive, got {target_size}")
    langs = languages or lexicon.languages()
    per_language = target_size // len(langs)
    extra = target_size - per_language * len(langs)
    result: list[GeneratedName] = []
    for lang_index, language in enumerate(langs):
        entries = lexicon.by_language(language)
        n = len(entries)
        if n < 2:
            raise DatasetError(
                f"language {language!r} has fewer than 2 lexicon entries"
            )
        quota = per_language + (1 if lang_index < extra else 0)
        if quota > n * (n - 1):
            raise DatasetError(
                f"cannot draw {quota} distinct pairs from {n} entries "
                f"of language {language!r}"
            )
        produced = 0
        offset = 1
        while produced < quota:
            for i in range(n):
                if produced >= quota:
                    break
                j = (i + offset) % n
                if j == i:
                    continue
                first, second = entries[i], entries[j]
                result.append(
                    GeneratedName(
                        name=first.name + second.name,
                        language=language,
                        ipa=first.ipa + second.ipa,
                    )
                )
                produced += 1
            offset += 1
            if offset >= n:
                break
    return result


def dataset_length_stats(
    dataset: list[GeneratedName],
) -> tuple[float, float]:
    """(avg lexicographic length, avg phonemic length) of a dataset.

    The paper reports 14.71 / 14.31 for its generated set (Figure 13).
    """
    from repro.phonetics.parse import ipa_length

    if not dataset:
        raise DatasetError("empty dataset")
    lex = sum(len(g.name) for g in dataset) / len(dataset)
    pho = sum(ipa_length(g.ipa) for g in dataset) / len(dataset)
    return lex, pho


def dataset_length_histogram(
    dataset: list[GeneratedName], kind: str = "lexicographic"
) -> dict[int, int]:
    """Length-frequency distribution of a generated dataset (Figure 13)."""
    from repro.phonetics.parse import ipa_length

    histogram: dict[int, int] = {}
    for g in dataset:
        if kind == "lexicographic":
            length = len(g.name)
        elif kind == "phonemic":
            length = ipa_length(g.ipa)
        else:
            raise DatasetError(f"unknown histogram kind {kind!r}")
        histogram[length] = histogram.get(length, 0) + 1
    return dict(sorted(histogram.items()))
