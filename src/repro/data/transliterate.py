"""Mechanical transliteration: romanized names → Indic orthography.

The paper's lexicon was built by *hand-converting* each romanized name
into Hindi and Tamil script.  This module reproduces that channel
mechanically, in two stages that mirror what a human transliterator does:

1. :func:`romanization_to_indic_phonemes` reads the Latin spelling the
   way an Indian-language speaker would (``a`` → ``ə``, ``th`` → ``t̪ʰ``,
   ``ee`` → ``iː`` ...), yielding the *intended* Indic pronunciation.
   This deliberately differs from English letter-to-sound rules — the
   same gap a human introduces, and the main source of cross-script
   fuzziness in the lexicon (English reads ``Nathan`` with ``eɪ``/``θ``,
   the Indic reading has ``aː``/``t̪ʰ``).

2. :func:`to_devanagari` / :func:`to_tamil` spell that pronunciation in
   each script under its native conventions: Devanagari keeps voicing,
   aspiration and the dental/retroflex contrast; Tamil folds voicing and
   aspiration into single letters (gemination marks voiceless
   intervocalic stops), has no ``f``/``z``, and distinguishes initial
   dental ``ந`` from medial ``ன`` — so reading the Tamil spelling back
   through :class:`~repro.ttp.tamil.TamilConverter` loses exactly what
   the paper says Tamil loses.
"""

from __future__ import annotations

from repro.errors import DatasetError
from repro.phonetics.inventory import get_phoneme
from repro.phonetics.parse import PhonemeString, parse_ipa

# --------------------------------------------------------------- stage 1

# Multi-letter sequences, longest first.  Values are IPA strings.
_ROMAN_DIGRAPHS: tuple[tuple[str, str], ...] = (
    ("chh", "tʃʰ"),
    ("sh", "ʃ"),
    ("ch", "tʃ"),
    ("th", "t̪ʰ"),
    ("dh", "d̪ʱ"),
    ("ph", "pʰ"),
    ("bh", "bʱ"),
    ("gh", "gʱ"),
    ("kh", "kʰ"),
    ("jh", "dʒʱ"),
    ("zh", "ɻ"),
    ("ny", "ɲ"),
    ("ng", "ŋg"),
    ("ck", "k"),
    ("aa", "aː"),
    ("ai", "ɛː"),
    ("au", "ɔː"),
    ("ay", "eː"),
    ("ee", "iː"),
    ("ea", "iː"),
    ("ei", "eː"),
    ("ey", "eː"),
    ("ie", "iː"),
    ("oa", "oː"),
    ("oo", "uː"),
    ("ou", "aʊ"),
)

_ROMAN_SINGLES: dict[str, str] = {
    "a": "ə", "b": "b", "d": "d̪", "e": "eː", "f": "f", "g": "g",
    "h": "ɦ", "i": "ɪ", "j": "dʒ", "k": "k", "l": "l", "m": "m",
    "n": "n", "o": "oː", "p": "p", "q": "k", "r": "r", "s": "s",
    "t": "t̪", "u": "ʊ", "v": "ʋ", "w": "ʋ", "x": "ks", "y": "j",
    "z": "z",
}

_FRONT_LETTERS = frozenset("eiy")


def romanization_to_indic_phonemes(name: str) -> PhonemeString:
    """Read a romanized name with Indic letter-to-sound conventions."""
    from repro.ttp.normalize import normalize_latin

    word = normalize_latin(name)
    phonemes: list[str] = []
    i = 0
    n = len(word)
    while i < n:
        matched = False
        for fragment, ipa in _ROMAN_DIGRAPHS:
            if word.startswith(fragment, i):
                phonemes.extend(parse_ipa(ipa))
                i += len(fragment)
                matched = True
                break
        if matched:
            continue
        ch = word[i]
        nxt = word[i + 1] if i + 1 < n else ""
        # Doubled consonant letters read as a single sound.
        if nxt == ch and ch not in "aeiou":
            i += 1
            continue
        if ch == "c":
            phonemes.append("s" if nxt in _FRONT_LETTERS else "k")
            i += 1
            continue
        if ch == "e":
            # Word-final silent e after a consonant (Catherine, George);
            # and "-er" before a consonant or word end reads as ər.
            if i == n - 1 and phonemes and not _ends_in_vowel(phonemes):
                i += 1
                continue
            if nxt == "r" and (i + 2 >= n or word[i + 2] not in "aeiouy"):
                phonemes.extend(("ə", "r"))
                i += 2
                continue
        if ch == "y" and nxt not in "aeiou":
            # Consonantal y only before a vowel; syllabic elsewhere.
            phonemes.append("ɪ")
            i += 1
            continue
        if ch == "a" and i == n - 1:
            phonemes.append("aː")  # final -a reads long: Rama, Gita
            i += 1
            continue
        ipa = _ROMAN_SINGLES.get(ch)
        if ipa is None:
            raise DatasetError(
                f"cannot read letter {ch!r} of {name!r} as Indic"
            )
        phonemes.extend(parse_ipa(ipa))
        i += 1
    return tuple(phonemes)


def _ends_in_vowel(phonemes: list[str]) -> bool:
    return bool(phonemes) and get_phoneme(phonemes[-1]).is_vowel


# ------------------------------------------------------------ stage 1b

# English phoneme (pairs first) -> Indic phoneme sequence.  This is how a
# bilingual transliterator carries an *English-origin* name into an Indic
# script: from its sound, folded onto the Indic phoneme inventory
# (English alveolar stops are heard as retroflex, NURSE becomes ər,
# diphthongs become long vowels, ...).
_ENGLISH_PAIR_ADAPTATIONS: dict[tuple[str, str], str] = {
    ("e", "ɪ"): "eː",   # FACE
    ("o", "ʊ"): "oː",   # GOAT
    ("a", "ɪ"): "aːɪ",  # PRICE
    ("a", "ʊ"): "aːʊ",  # MOUTH
    ("ɔ", "ɪ"): "ɔːɪ",  # CHOICE
}

_ENGLISH_SINGLE_ADAPTATIONS: dict[str, str] = {
    "æ": "ɛː", "ʌ": "ə", "ɑ": "aː", "ɒ": "ɔ", "ɔ": "ɔː",
    "ɛ": "eː", "i": "iː", "u": "uː", "ɜ": "ər", "ɐ": "ə",
    "t": "ʈ", "d": "ɖ", "θ": "t̪ʰ", "ð": "d̪",
    "ɹ": "r", "w": "ʋ", "v": "ʋ", "h": "ɦ",
}


def adapt_english_to_indic(phonemes: PhonemeString) -> PhonemeString:
    """Fold an English phoneme string onto the Indic inventory."""
    adapted: list[str] = []
    i = 0
    n = len(phonemes)
    while i < n:
        if i + 1 < n:
            pair = (phonemes[i], phonemes[i + 1])
            replacement = _ENGLISH_PAIR_ADAPTATIONS.get(pair)
            if replacement is not None:
                adapted.extend(parse_ipa(replacement))
                i += 2
                continue
        symbol = phonemes[i]
        replacement = _ENGLISH_SINGLE_ADAPTATIONS.get(symbol)
        if replacement is not None:
            adapted.extend(parse_ipa(replacement))
        else:
            adapted.append(symbol)
        i += 1
    return tuple(adapted)


# --------------------------------------------------------------- stage 2a

# IPA -> Devanagari consonant letter.
_DEVA_CONSONANTS: dict[str, str] = {
    "k": "क", "kʰ": "ख", "g": "ग", "gʱ": "घ", "ŋ": "ङ",
    "tʃ": "च", "tʃʰ": "छ", "dʒ": "ज", "dʒʱ": "झ", "ɲ": "ञ",
    "ʈ": "ट", "ʈʰ": "ठ", "ɖ": "ड", "ɖʱ": "ढ", "ɳ": "ण",
    "t̪": "त", "t̪ʰ": "थ", "d̪": "द", "d̪ʱ": "ध", "n": "न", "n̪": "न",
    "p": "प", "pʰ": "फ", "b": "ब", "bʱ": "भ", "m": "म",
    "j": "य", "r": "र", "ɾ": "र", "ɹ": "र", "l": "ल", "ʋ": "व",
    "v": "व", "w": "व", "ʃ": "श", "ʂ": "ष", "s": "स", "h": "ह",
    "ɦ": "ह", "f": "फ़", "z": "ज़", "ʒ": "झ़", "q": "क़", "x": "ख़",
    "ɣ": "ग़", "ɽ": "ड़", "ɽʱ": "ढ़",
    # Foreign coronals fold onto the nearest native letters.
    "t": "त", "d": "द", "tʰ": "थ", "dʱ": "ध",
    "θ": "थ", "ð": "द", "ts": "च", "dz": "ज",
    "ɭ": "ल", "ɫ": "ल", "ɻ": "र", "ʎ": "य", "ç": "श", "ʐ": "झ़",
    "c": "क", "ɟ": "ग", "ʔ": "", "ɸ": "फ", "β": "ब",
}

# IPA vowel -> (independent letter, matra).  The inherent vowel ə has an
# empty matra.
_DEVA_VOWELS: dict[str, tuple[str, str]] = {
    "ə": ("अ", ""),
    "a": ("अ", ""),
    "ɐ": ("अ", ""),
    "ʌ": ("अ", ""),
    "aː": ("आ", "ा"),
    "ɑ": ("आ", "ा"),
    "ɒ": ("ऑ", "ॉ"),
    "ɪ": ("इ", "ि"),
    "i": ("इ", "ि"),
    "iː": ("ई", "ी"),
    "ʊ": ("उ", "ु"),
    "u": ("उ", "ु"),
    "uː": ("ऊ", "ू"),
    "e": ("ए", "े"),
    "eː": ("ए", "े"),
    "ɛ": ("ऍ", "ॅ"),
    "ɛː": ("ऐ", "ै"),
    "æ": ("ऐ", "ै"),
    "o": ("ओ", "ो"),
    "oː": ("ओ", "ो"),
    "ɔ": ("ऑ", "ॉ"),
    "ɔː": ("औ", "ौ"),
    "ɜ": ("अ", ""),
    "y": ("इ", "ि"),
    "ø": ("ए", "े"),
    "œ": ("ऐ", "ै"),
    "ɯ": ("उ", "ु"),
}

_VIRAMA = "्"
_ANUSVARA = "ं"
_CANDRABINDU = "ँ"


def _vowel_key(symbol: str) -> str:
    """Fold nasality (and length, for vowels whose long form has no
    distinct spelling) down to a key present in the vowel tables."""
    plain = symbol.replace("̃", "")
    for candidate in (symbol, plain, plain.replace("ː", "")):
        if candidate in _DEVA_VOWELS or candidate in _TAMIL_VOWELS:
            return candidate
    raise DatasetError(f"no Indic spelling for vowel {symbol!r}")


def to_devanagari(phonemes: PhonemeString) -> str:
    """Spell a phoneme string in Devanagari."""
    output: list[str] = []
    pending_consonant = False  # last letter is a consonant w/o vowel sign
    for idx, symbol in enumerate(phonemes):
        ph = get_phoneme(symbol)
        if ph.is_vowel:
            nasal = ph.nasal
            key = _vowel_key(symbol)
            letter, matra = _DEVA_VOWELS[key]
            if pending_consonant:
                output.append(matra)
            else:
                output.append(letter)
            if nasal:
                output.append(_CANDRABINDU)
            pending_consonant = False
            continue
        # ŋ before a consonant is conventionally spelled with anusvara.
        nxt = phonemes[idx + 1] if idx + 1 < len(phonemes) else None
        if (
            symbol == "ŋ"
            and nxt is not None
            and not get_phoneme(nxt).is_vowel
        ):
            if pending_consonant:
                output.append(_VIRAMA)  # shouldn't normally occur
                pending_consonant = False
            output.append(_ANUSVARA)
            continue
        letter = _DEVA_CONSONANTS.get(symbol)
        if letter is None:
            raise DatasetError(f"no Devanagari spelling for {symbol!r}")
        if letter == "":
            continue  # glottal stop: unwritten
        if pending_consonant:
            output.append(_VIRAMA)
        output.append(letter)
        pending_consonant = True
    return "".join(output)


# --------------------------------------------------------------- stage 2b

# IPA -> Tamil consonant letter.  Voicing and aspiration fold away; the
# gemination convention for intervocalic voiceless stops is handled in
# :func:`to_tamil`.
_TAMIL_CONSONANTS: dict[str, str] = {
    "k": "க", "kʰ": "க", "g": "க", "gʱ": "க", "x": "க", "ɣ": "க",
    "c": "க", "ɟ": "க", "q": "க", "ŋ": "ங",
    "tʃ": "ச", "tʃʰ": "ச", "ʒ": "ஜ", "dʒ": "ஜ", "dʒʱ": "ஜ",
    "ts": "ச", "dz": "ஜ", "ɲ": "ஞ",
    "ʈ": "ட", "ʈʰ": "ட", "ɖ": "ட", "ɖʱ": "ட", "ɳ": "ண",
    "t̪": "த", "t̪ʰ": "த", "d̪": "த", "d̪ʱ": "த", "t": "த", "d": "த",
    "tʰ": "த", "dʱ": "த", "θ": "த", "ð": "த",
    "p": "ப", "pʰ": "ப", "b": "ப", "bʱ": "ப", "f": "ப", "ɸ": "ப",
    "β": "ப", "v": "வ", "m": "ம",
    # positional value chosen in to_tamil (ந initially, ன elsewhere)
    "n": "ன", "n̪": "ன",
    "j": "ய", "r": "ர", "ɾ": "ர", "ɹ": "ர", "ɽ": "ர", "ɽʱ": "ர",
    "l": "ல", "ɭ": "ள", "ɫ": "ல", "ʎ": "ய", "ɻ": "ழ",
    "ʋ": "வ", "w": "வ",
    "ʃ": "ஷ", "ʂ": "ஷ", "ç": "ஷ", "s": "ஸ", "z": "ஜ",
    "ʐ": "ஜ", "θ": "த", "ð": "த", "x": "க", "ɣ": "க",
    "h": "ஹ", "ɦ": "ஹ", "ʔ": "",
}

#: Letters whose intervocalic occurrence is geminated to keep the
#: voiceless reading (classical Tamil orthography).
_TAMIL_VOICELESS = {"k": "க", "tʃ": "ச", "ʈ": "ட", "t̪": "த", "p": "ப",
                    "t": "த", "kʰ": "க", "tʃʰ": "ச", "ʈʰ": "ட",
                    "t̪ʰ": "த", "pʰ": "ப"}

# IPA vowel -> (independent letter, matra).
_TAMIL_VOWELS: dict[str, tuple[str, str]] = {
    "a": ("அ", ""),
    "ə": ("அ", ""),
    "ɐ": ("அ", ""),
    "ʌ": ("அ", ""),
    "æ": ("ஆ", "ா"),
    "ɑ": ("ஆ", "ா"),
    "aː": ("ஆ", "ா"),
    "ɒ": ("ஒ", "ொ"),
    "i": ("இ", "ி"),
    "ɪ": ("இ", "ி"),
    "y": ("இ", "ி"),
    "iː": ("ஈ", "ீ"),
    "u": ("உ", "ு"),
    "ʊ": ("உ", "ு"),
    "ɯ": ("உ", "ு"),
    "uː": ("ஊ", "ூ"),
    "e": ("எ", "ெ"),
    "ɛ": ("எ", "ெ"),
    "ø": ("எ", "ெ"),
    "œ": ("எ", "ெ"),
    "eː": ("ஏ", "ே"),
    "ɛː": ("ஏ", "ே"),
    "o": ("ஒ", "ொ"),
    "ɔ": ("ஒ", "ொ"),
    "oː": ("ஓ", "ோ"),
    "ɔː": ("ஓ", "ோ"),
    "ɜ": ("அ", ""),
}

_PULLI = "்"


def to_tamil(phonemes: PhonemeString) -> str:
    """Spell a phoneme string in Tamil script."""
    output: list[str] = []
    pending: str | None = None  # consonant letter awaiting a vowel sign
    prev_was_vowel = False

    def flush(with_matra: str | None) -> None:
        nonlocal pending
        if pending is None:
            return
        output.append(pending)
        if with_matra is None:
            output.append(_PULLI)
        elif with_matra:
            output.append(with_matra)
        pending = None

    for idx, symbol in enumerate(phonemes):
        ph = get_phoneme(symbol)
        if ph.is_vowel:
            key = _vowel_key(symbol)
            if key not in _TAMIL_VOWELS:
                raise DatasetError(f"no Tamil spelling for vowel {symbol!r}")
            letter, matra = _TAMIL_VOWELS[key]
            if pending is not None:
                flush(matra)
            else:
                output.append(letter)
            prev_was_vowel = True
            continue
        letter = _TAMIL_CONSONANTS.get(symbol)
        if letter is None:
            raise DatasetError(f"no Tamil spelling for {symbol!r}")
        if letter == "":
            continue
        # n: dental letter word-initially, alveolar elsewhere.
        if symbol in ("n", "n̪"):
            letter = "ந" if not output and pending is None else "ன"
        flush(None)  # previous consonant had no vowel: pulli
        # Gemination: a voiceless stop *between vowels* doubles so the
        # positional reading rules keep it voiceless.
        nxt = phonemes[idx + 1] if idx + 1 < len(phonemes) else None
        next_is_vowel = nxt is not None and get_phoneme(nxt).is_vowel
        if prev_was_vowel and next_is_vowel and symbol in _TAMIL_VOICELESS:
            output.append(letter)
            output.append(_PULLI)
        pending = letter
        prev_was_vowel = False
    flush(None)
    return "".join(output)


# --------------------------------------------------------------- stage 2c

# IPA -> Kannada consonant letter (mirrors the Devanagari table; Kannada
# keeps voicing and aspiration, so the mapping is near-isomorphic).
_KANNADA_CONSONANTS: dict[str, str] = {
    "k": "ಕ", "kʰ": "ಖ", "g": "ಗ", "gʱ": "ಘ", "ŋ": "ಂ",  # see below
    "tʃ": "ಚ", "tʃʰ": "ಛ", "dʒ": "ಜ", "dʒʱ": "ಝ", "ɲ": "ಞ",
    "ʈ": "ಟ", "ʈʰ": "ಠ", "ɖ": "ಡ", "ɖʱ": "ಢ", "ɳ": "ಣ",
    "t̪": "ತ", "t̪ʰ": "ಥ", "d̪": "ದ", "d̪ʱ": "ಧ", "n": "ನ", "n̪": "ನ",
    "p": "ಪ", "pʰ": "ಫ", "b": "ಬ", "bʱ": "ಭ", "m": "ಮ",
    "j": "ಯ", "r": "ರ", "ɾ": "ರ", "ɹ": "ರ", "l": "ಲ", "ʋ": "ವ",
    "v": "ವ", "w": "ವ", "ʃ": "ಶ", "ʂ": "ಷ", "s": "ಸ", "h": "ಹ",
    "ɦ": "ಹ", "ɭ": "ಳ", "ɻ": "ಳ", "f": "ಫ", "z": "ಜ",
    "t": "ತ", "d": "ದ", "tʰ": "ಥ", "dʱ": "ಧ",
    "θ": "ಥ", "ð": "ದ", "ts": "ಚ", "dz": "ಜ",
    "ɫ": "ಲ", "ʎ": "ಯ", "ç": "ಶ", "ʐ": "ಝ", "ʒ": "ಝ",
    "c": "ಕ", "ɟ": "ಗ", "q": "ಕ", "x": "ಖ", "ɣ": "ಗ",
    "ɽ": "ಡ", "ɽʱ": "ಢ", "ʔ": "", "ɸ": "ಫ", "β": "ಬ",
}

_KANNADA_VOWELS: dict[str, tuple[str, str]] = {
    "a": ("ಅ", ""),
    "ə": ("ಅ", ""),
    "ɐ": ("ಅ", ""),
    "ʌ": ("ಅ", ""),
    "aː": ("ಆ", "ಾ"),
    "ɑ": ("ಆ", "ಾ"),
    "æ": ("ಆ", "ಾ"),
    "i": ("ಇ", "ಿ"),
    "ɪ": ("ಇ", "ಿ"),
    "y": ("ಇ", "ಿ"),
    "iː": ("ಈ", "ೀ"),
    "u": ("ಉ", "ು"),
    "ʊ": ("ಉ", "ು"),
    "ɯ": ("ಉ", "ು"),
    "uː": ("ಊ", "ೂ"),
    "e": ("ಎ", "ೆ"),
    "ɛ": ("ಎ", "ೆ"),
    "ø": ("ಎ", "ೆ"),
    "œ": ("ಎ", "ೆ"),
    "eː": ("ಏ", "ೇ"),
    "ɛː": ("ಏ", "ೇ"),
    "o": ("ಒ", "ೊ"),
    "ɔ": ("ಒ", "ೊ"),
    "ɒ": ("ಒ", "ೊ"),
    "oː": ("ಓ", "ೋ"),
    "ɔː": ("ಓ", "ೋ"),
    "ɜ": ("ಅ", ""),
}

_KANNADA_VIRAMA = "್"
_KANNADA_ANUSVARA = "ಂ"


def to_kannada(phonemes: PhonemeString) -> str:
    """Spell a phoneme string in Kannada script."""
    output: list[str] = []
    pending_consonant = False
    for idx, symbol in enumerate(phonemes):
        ph = get_phoneme(symbol)
        if ph.is_vowel:
            key = _vowel_key(symbol)
            if key not in _KANNADA_VOWELS:
                raise DatasetError(
                    f"no Kannada spelling for vowel {symbol!r}"
                )
            letter, matra = _KANNADA_VOWELS[key]
            if pending_consonant:
                output.append(matra)
            else:
                output.append(letter)
            if ph.nasal:
                output.append(_KANNADA_ANUSVARA)
            pending_consonant = False
            continue
        # ŋ is conventionally spelled with anusvara before a consonant.
        nxt = phonemes[idx + 1] if idx + 1 < len(phonemes) else None
        if (
            symbol == "ŋ"
            and nxt is not None
            and not get_phoneme(nxt).is_vowel
        ):
            if pending_consonant:
                output.append(_KANNADA_VIRAMA)
                pending_consonant = False
            output.append(_KANNADA_ANUSVARA)
            continue
        letter = _KANNADA_CONSONANTS.get(symbol)
        if symbol == "ŋ":
            letter = "ಙ"  # standalone velar nasal letter
        if letter is None:
            raise DatasetError(f"no Kannada spelling for {symbol!r}")
        if letter == "":
            continue
        if pending_consonant:
            output.append(_KANNADA_VIRAMA)
        output.append(letter)
        pending_consonant = True
    return "".join(output)
