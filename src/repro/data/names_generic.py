"""Generic names: places, objects and chemicals (OED domain).

Stands in for the paper's third source, "generic names representing
Places, Objects and Chemicals ... picked from the Oxford English
Dictionary".
"""

GENERIC_NAMES: tuple[str, ...] = (
    # -- places
    "Alabama", "Alaska", "Amazon", "Amsterdam", "Arizona", "Athens",
    "Atlanta", "Austin", "Baghdad", "Bangalore", "Barcelona", "Beijing",
    "Berlin", "Bombay", "Boston", "Brazil", "Brooklyn", "Cairo",
    "Calcutta", "California", "Canada", "Canberra", "Chennai", "Chicago",
    "Colombo", "Colorado", "Dakota", "Dallas", "Delhi", "Denver",
    "Dublin", "Egypt", "Florida", "Geneva", "Georgia", "Glasgow",
    "Hamburg", "Havana", "Houston", "Hyderabad", "Indiana", "Istanbul",
    "Jaipur", "Jakarta", "Kashmir", "Kerala", "Kolkata", "Lisbon",
    "London", "Lucknow", "Madras", "Madrid", "Malta", "Manila",
    "Melbourne", "Memphis", "Mexico", "Milan", "Montana", "Montreal",
    "Moscow", "Munich", "Mysore", "Nagasaki", "Nairobi", "Nevada",
    "Norway", "Orlando", "Oslo", "Ottawa", "Oxford", "Panama", "Paris",
    "Patna", "Peru", "Portland", "Prague", "Pune", "Quebec", "Rangoon",
    "Rome", "Sahara", "Salem", "Santiago", "Seattle", "Seoul", "Sydney",
    "Tokyo", "Toledo", "Toronto", "Tripoli", "Vancouver", "Venice",
    "Vermont", "Vienna", "Virginia", "Warsaw", "Wyoming", "Zanzibar",
    # -- objects
    "Anchor", "Arrow", "Balloon", "Banner", "Barrel", "Basket", "Beacon",
    "Blanket", "Bottle", "Bridge", "Bucket", "Button", "Cabinet",
    "Camera", "Candle", "Canvas", "Carpet", "Chariot", "Chisel",
    "Compass", "Curtain", "Cushion", "Diamond", "Drum", "Engine",
    "Fountain", "Funnel", "Garland", "Goblet", "Hammer", "Handle",
    "Helmet", "Kettle", "Ladder", "Lantern", "Locket", "Machine",
    "Magnet", "Mirror", "Needle", "Pedal", "Pencil", "Pillar", "Piston",
    "Pitcher", "Pulley", "Ribbon", "Saddle", "Satchel", "Scissors",
    "Shovel", "Shutter", "Spindle", "Sponge", "Statue", "Tablet",
    "Telescope", "Trumpet", "Tunnel", "Turbine", "Vessel", "Wagon",
    "Whistle", "Window",
    # -- chemicals
    "Acetone", "Acetylene", "Alumina", "Aluminium", "Ammonia", "Argon",
    "Arsenic", "Barium", "Benzene", "Bromine", "Butane", "Cadmium",
    "Calcium", "Carbon", "Cellulose", "Chlorine", "Chromium", "Cobalt",
    "Copper", "Cyanide", "Ethanol", "Fluorine", "Gallium", "Glucose",
    "Glycerine", "Helium", "Hydrogen", "Iodine", "Iridium", "Krypton",
    "Lactose", "Lithium", "Magnesium", "Manganese", "Mercury", "Methane",
    "Methanol", "Naphthalene", "Neon", "Nickel", "Nicotine", "Nitrogen",
    "Oxygen", "Ozone", "Paraffin", "Pepsin", "Phosphorus", "Platinum",
    "Potassium", "Propane", "Quinine", "Radium", "Silicon", "Sodium",
    "Sulphur", "Tartar", "Titanium", "Toluene", "Tungsten", "Uranium",
    "Vanadium", "Xenon", "Zinc", "Zirconium",
    # -- additional names (OED breadth)
    "Abyssinia", "Antarctica", "Appalachia", "Bucharest", "Casablanca",
    "Constantinople", "Copenhagen", "Dusseldorf", "Guadalajara",
    "Johannesburg", "Kathmandu", "Kilimanjaro", "Ljubljana",
    "Madagascar", "Marrakesh", "Montevideo", "Novosibirsk", "Nuremberg",
    "Okinawa", "Patagonia", "Philadelphia", "Reykjavik", "Samarkand",
    "Scandinavia", "Stalingrad", "Stockholm", "Timbuktu", "Trivandrum",
    "Vladivostok", "Yokohama",
    "Accordion", "Barometer", "Binoculars", "Calculator", "Carburetor",
    "Chandelier", "Escalator", "Gramophone", "Gyroscope", "Harmonium",
    "Hourglass", "Kaleidoscope", "Metronome", "Microscope", "Pendulum",
    "Periscope", "Projector", "Refrigerator", "Stethoscope", "Thermostat",
    "Typewriter", "Ventilator", "Wheelbarrow", "Windmill", "Xylophone",
    "Adrenaline", "Ammonium", "Aspartame", "Bicarbonate", "Caffeine",
    "Chloroform", "Cholesterol", "Formaldehyde", "Glutamate", "Glycogen",
    "Hemoglobin", "Histamine", "Insulin", "Kerosene", "Magnesia",
    "Melatonin", "Methylene", "Naphtha", "Nitroglycerin", "Penicillin",
    "Peroxide", "Phosphate", "Polyethylene", "Saccharin", "Serotonin",
    "Strychnine", "Turpentine",
)
