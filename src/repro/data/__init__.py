"""Datasets: the tagged multiscript lexicon and the performance dataset.

The paper's quality experiments run over a hand-built lexicon of ~800
names drawn from three sources — the Bangalore telephone directory
(Indian names), the San Francisco physicians directory (American names)
and the Oxford English Dictionary (generic places/objects/chemicals) —
each hand-converted into Hindi and Tamil script and tagged with a group
number (Section 4.1).  The performance experiments use a ~200k-row
synthetic dataset obtained by concatenating lexicon strings within each
language (Section 5).

This package rebuilds both mechanically:

* :mod:`repro.data.names_indian` / ``names_american`` / ``names_generic``
  — the base name lists (same three domains);
* :mod:`repro.data.transliterate` — the romanization reader and the
  phoneme → Devanagari / Tamil orthography generators that stand in for
  the paper's hand conversion;
* :mod:`repro.data.lexicon` — the tagged multiscript lexicon builder;
* :mod:`repro.data.generator` — the synthetic concatenation dataset.
"""

from repro.data.lexicon import (
    LexiconEntry,
    MultiscriptLexicon,
    build_lexicon,
)
from repro.data.generator import generate_performance_dataset
from repro.data.transliterate import (
    romanization_to_indic_phonemes,
    to_devanagari,
    to_tamil,
)

__all__ = [
    "LexiconEntry",
    "MultiscriptLexicon",
    "build_lexicon",
    "generate_performance_dataset",
    "romanization_to_indic_phonemes",
    "to_devanagari",
    "to_tamil",
]
