"""Versioned, checksummed snapshots of the engine's index structures.

The point of a snapshot is that reopening a database *attaches* its
indexes instead of rebuilding them — for the phonetic structures that
skips the TTP pass over every row, which dominates cold-start time.

Container format (``dump``/``load``): an 8-byte magic, the snapshot
``kind`` (so a B-tree file cannot be loaded as a BK-tree), the format
version, a CRC32 of the pickled payload, and the payload itself.  A
truncated, corrupt or wrong-kind file raises
:class:`~repro.errors.StorageError` — recovery treats that as "rebuild
this index from the heap", never as silent data loss.

Structure codecs:

* :func:`btree_state` / :func:`restore_btree` — a B+ tree as its
  in-order ``(key, bucket)`` items.  Rebuilding via the linear-time
  ``bulk_load`` sidesteps pickling the node graph (the leaf ``next``
  chain of a 200k-row tree is thousands of links deep — deeper than
  the pickle recursion limit) and re-validates key order on load.
* :func:`bktree_state` / :func:`restore_bktree` — BK-tree nodes as a
  flat parent-linked list; restoring performs **zero** distance calls.
* :func:`encoded_table_state` / :func:`restore_encoded_table` — the
  CSR arrays of a :class:`~repro.parallel.table.EncodedNameTable`; the
  cost matrices are recomputed from the (small) symbol list rather than
  stored.
* :func:`ann_index_state` / :func:`restore_ann_index` — the quantized
  articulatory-embedding matrix of :mod:`repro.matching.embed` with its
  tombstone mask and position→rowid map; the embedding model itself is
  recomputed from the symbol list, and a model/matrix width mismatch
  returns None ("rebuild from the heap") instead of a stale index.
  This codec — and the ``.ann`` sidecar filename it is stored under —
  is the storage layer's own business (see
  :data:`repro.storage.layout.ANN_INDEX_SUFFIX`).
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib

from repro.errors import StorageError
from repro.storage.layout import FORMAT_VERSION

_MAGIC = b"LEXSNAP\x01"
_HEAD = struct.Struct("<HHIQ")  # kind_len, version, crc32, payload size


def dump(fh: io.BufferedIOBase, kind: str, payload: object) -> None:
    """Write one snapshot container to a binary stream."""
    kind_bytes = kind.encode("utf-8")
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    fh.write(_MAGIC)
    fh.write(
        _HEAD.pack(len(kind_bytes), FORMAT_VERSION, zlib.crc32(body), len(body))
    )
    fh.write(kind_bytes)
    fh.write(body)


def load(fh: io.BufferedIOBase, kind: str) -> object:
    """Read one snapshot container, verifying magic, kind and CRC."""
    magic = fh.read(len(_MAGIC))
    if magic != _MAGIC:
        raise StorageError(f"bad snapshot magic {magic!r}")
    head = fh.read(_HEAD.size)
    if len(head) != _HEAD.size:
        raise StorageError("truncated snapshot header")
    kind_len, version, crc, size = _HEAD.unpack(head)
    if version != FORMAT_VERSION:
        raise StorageError(
            f"snapshot format v{version} != supported v{FORMAT_VERSION}"
        )
    found_kind = fh.read(kind_len).decode("utf-8")
    if found_kind != kind:
        raise StorageError(
            f"snapshot kind {found_kind!r} where {kind!r} expected"
        )
    body = fh.read(size)
    if len(body) != size or zlib.crc32(body) != crc:
        raise StorageError(f"snapshot {kind!r} failed its CRC check")
    return pickle.loads(body)


# --------------------------------------------------------------- B+ tree


def btree_state(tree) -> dict:
    """A B+ tree as ``{"order", "items": [(key, [values...]), ...]}``."""
    return {
        "order": tree.order,
        "items": [(key, bucket) for key, bucket in tree.items()],
    }


def restore_btree(state: dict):
    """Rebuild a B+ tree from :func:`btree_state` output.

    ``items()`` yields in key order, so the linear-time ``bulk_load``
    path applies — no per-entry tree descent on the recovery path.
    """
    from repro.minidb.btree import BPlusTree

    return BPlusTree.bulk_load(state["items"], order=state["order"])


# --------------------------------------------------------------- BK-tree


def bktree_state(tree) -> dict:
    """A BK-tree as a flat list of parent-linked node rows.

    Each row is ``(parent_index, bucket, tokens, items)``; the root has
    ``parent_index = -1``.  Iterative, so arbitrarily deep trees
    serialize without recursion.
    """
    nodes = []
    root = getattr(tree, "_root", None)
    if root is not None:
        stack = [(root, -1, 0)]
        while stack:
            node, parent, bucket = stack.pop()
            index = len(nodes)
            nodes.append(
                (parent, bucket, tuple(node.tokens), list(node.items))
            )
            for child_bucket, child in node.children.items():
                stack.append((child, index, child_bucket))
    return {"resolution": tree._resolution, "nodes": nodes}


def restore_bktree(state: dict, distance):
    """Rebuild a BK-tree from :func:`bktree_state` without distance calls."""
    from repro.matching.bktree import BKTree, _Node

    tree = BKTree(distance, state["resolution"])
    built: list = []
    size = 0
    for parent, bucket, tokens, items in state["nodes"]:
        node = _Node(tuple(tokens), None)
        node.items = list(items)
        size += len(node.items)
        built.append(node)
        if parent < 0:
            tree._root = node
        else:
            built[parent].children[bucket] = node
    tree._size = size
    return tree


# ------------------------------------------------- encoded parallel table


def encoded_table_state(table) -> dict:
    """CSR arrays + symbol list of an ``EncodedNameTable``.

    Cost matrices are *not* stored: they are a pure function of the
    cost model and symbol list, recomputed on restore.
    """
    return {
        "codes": table.codes,
        "offsets": table.offsets,
        "ids": table.ids,
        "lang_codes": table.lang_codes,
        "languages": tuple(table.languages),
        "symbols": list(table.encoded.index),
    }


def restore_encoded_table(state: dict, costs):
    """Rebuild an ``EncodedNameTable`` from :func:`encoded_table_state`."""
    from repro.matching.batch import EncodedCosts
    from repro.parallel.table import EncodedNameTable

    return EncodedNameTable(
        EncodedCosts(costs, list(state["symbols"])),
        state["codes"],
        state["offsets"],
        state["ids"],
        state["lang_codes"],
        tuple(state["languages"]),
    )


# ------------------------------------------- quantized embedding index


def ann_index_state(model, index, rowids) -> dict:
    """Quantized embedding matrix + tombstones + position→rowid map.

    The embedding model is *not* stored: like the cost matrices above it
    is a pure function of the cost model and symbol list, recomputed on
    restore (and cross-checked against the matrix width).
    """
    import numpy as np

    state = index.state()
    state["symbols"] = list(model.encoded.index)
    state["rowids"] = np.asarray(rowids, dtype=np.int64)
    return state


def restore_ann_index(state: dict, costs):
    """Rebuild ``(model, index, rowids)`` from :func:`ann_index_state`.

    Returns None when the recomputed model's dimensionality disagrees
    with the stored matrix (the cost model or embedding layout changed
    since the checkpoint) — the caller rebuilds from the heap.
    """
    from repro.matching.embed import EmbeddingModel, QuantizedMatrixIndex

    model = EmbeddingModel.for_costs(costs, list(state["symbols"]))
    matrix = state["matrix"]
    if matrix.ndim != 2 or model.dim != matrix.shape[1]:
        return None
    index = QuantizedMatrixIndex.from_state(
        {
            "scale": state["scale"],
            "matrix": matrix,
            "alive": state["alive"],
        }
    )
    return model, index, state["rowids"]
