"""Opening a durable database: checkpoint restore + WAL replay + attach.

:func:`open_database` is the recovery sequence (DESIGN.md §10.4):

1. open the :class:`~repro.storage.manager.FileBackend` (which scans
   the WAL, truncating any torn tail);
2. rebuild tables and B+ tree indexes from the last checkpoint —
   heap slot lists are restored verbatim, tombstones included, so
   rowids are exactly what the indexes recorded;
3. replay committed WAL batches through the ordinary catalog mutation
   paths (re-logging suppressed), asserting that every replayed insert
   lands on the rowid the log recorded; records at or below the
   checkpoint's WAL high-water mark are skipped — they are already in
   the checkpoint, and survive on disk only when a crash hit between
   the checkpoint rename and the WAL reset;
4. load the persisted stats catalog (pruned of tables the WAL dropped);
5. re-attach phonetic accelerators from the manifest, restoring their
   snapshot artifacts and delta-syncing any rows committed after the
   last checkpoint — the expensive TTP pass runs only over the delta.
"""

from __future__ import annotations

from repro import obs
from repro.errors import StorageError
from repro.minidb.catalog import Database
from repro.minidb.schema import Column, TableSchema
from repro.minidb.table import HeapTable
from repro.minidb.values import SqlType
from repro.storage import snapshots
from repro.storage.manager import FileBackend
from repro.storage.wal import WalRecord


def open_database(
    data_dir: str,
    *,
    matcher=None,
    sync: bool = True,
    attach_accelerators: bool = True,
    auto_checkpoint_bytes: int | None = None,
) -> Database:
    """Open (or create) a durable database rooted at ``data_dir``.

    ``matcher`` is the :class:`~repro.core.matcher.LexEqualMatcher`
    used to re-attach accelerators (a default one is built when any are
    recorded and none is given).  ``sync=False`` trades the
    fsync-per-commit durability guarantee for bulk-load speed.
    """
    backend = FileBackend(
        data_dir, sync=sync, auto_checkpoint_bytes=auto_checkpoint_bytes
    )
    db = Database(storage=backend)
    backend.replaying = True
    try:
        with obs.timed("storage.open"):
            checkpoint = backend.recovered_checkpoint()
            if checkpoint is not None:
                _restore_checkpoint(db, checkpoint)
            replayed = 0
            for batch in backend.recovered_wal().batches:
                for record in batch:
                    _apply_record(db, record)
                    replayed += 1
            if replayed:
                obs.incr("storage.wal.replayed", replayed)
    finally:
        backend.replaying = False
    from repro.minidb.stats import StatsCatalog

    stats_payload = backend.load_stats()
    if stats_payload is not None:
        db.stats = StatsCatalog.from_dict(stats_payload)
        # stats.json may predate a DROP TABLE replayed from the WAL.
        db.stats.prune(db.table_names())
    if attach_accelerators:
        _attach_accelerators(db, backend, matcher)
    return db


def _restore_checkpoint(db: Database, checkpoint: dict) -> None:
    for entry in checkpoint["tables"]:
        columns = tuple(
            Column(name, SqlType[type_name], nullable)
            for name, type_name, nullable in entry["columns"]
        )
        schema = TableSchema(entry["name"], columns)
        db.attach_table(HeapTable.from_slots(schema, entry["slots"]))
    for entry in checkpoint["indexes"]:
        db.attach_index(
            entry["name"],
            entry["table"],
            entry["column"],
            snapshots.restore_btree(entry["state"]),
        )


def _apply_record(db: Database, record: WalRecord) -> None:
    op, args = record.op, record.args
    if op == "insert":
        table_name, rowid, row = args
        actual = db.insert(table_name, row)
        if actual != rowid:
            raise StorageError(
                f"WAL replay drift: insert into {table_name!r} logged "
                f"rowid {rowid} but replayed to {actual} "
                f"(lsn {record.lsn})"
            )
    elif op == "delete":
        table_name, rowid = args
        db.delete_row(table_name, rowid)
    elif op == "create_table":
        name, columns = args
        db.create_table(
            name,
            [
                Column(cname, SqlType[type_name], nullable)
                for cname, type_name, nullable in columns
            ],
        )
    elif op == "drop_table":
        db.drop_table(args[0])
    elif op == "create_index":
        name, table_name, column_name, order = args
        db.create_index(name, table_name, column_name, order=order)
    elif op == "drop_index":
        db.drop_index(args[0])
    else:
        raise StorageError(
            f"unknown WAL op {op!r} at lsn {record.lsn} "
            "(data written by a newer format?)"
        )


def _attach_accelerators(
    db: Database, backend: FileBackend, matcher
) -> None:
    meta = backend.accelerator_meta()
    if not meta:
        return
    from repro.core.engine import create_phonetic_accelerator
    from repro.core.matcher import LexEqualMatcher

    matcher = matcher or LexEqualMatcher()
    for entry in meta:
        snapshot = backend.load_artifact(entry["artifact"])
        create_phonetic_accelerator(
            db,
            entry["table"],
            entry["column"],
            matcher=matcher,
            method=entry["method"],
            workers=entry.get("workers"),
            allow_lossy=entry.get("allow_lossy", False),
            restore=snapshot,
        )
        if snapshot is not None:
            obs.incr("storage.accelerator.attached")
        else:
            obs.incr("storage.accelerator.rebuilt")
