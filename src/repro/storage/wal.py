"""The write-ahead log: length-prefixed, CRC-checked, commit-marked.

Record format (little-endian, DESIGN.md §10.2)::

    [u32 payload_len][u32 crc32(payload)][payload]
    payload = pickle((lsn, op, args))

Mutations append records; :meth:`WriteAheadLog.commit` appends a commit
marker and fsyncs, so the durability boundary is exactly the commit
marker: replay applies a batch of records only when the marker that
closes it was fully on disk.  A torn or corrupt record (a crash mid
``write(2)``) ends replay at the last committed batch and the damaged
tail is truncated away — committed state is never affected by an
uncommitted tail.

Failpoints (``repro.faults``): ``storage.wal.append`` tears a record in
half mid-write (then poisons the log — the writing process is presumed
dead), ``storage.wal.fsync`` fires just before ``fsync`` (configure it
with ``error=io`` to simulate a failing disk), ``storage.checkpoint``
aborts a checkpoint between WAL append and the checkpoint rename, and
``storage.checkpoint.post_rename`` aborts it in the window between the
checkpoint rename and the WAL reset (recovery must then *skip* the
stale records the new checkpoint already folded in).
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import NamedTuple

from repro import faults, obs
from repro.errors import StorageError
from repro.storage import layout

_HEADER = struct.Struct("<II")

#: The op name of the commit marker record.
COMMIT_OP = "commit"


class WalRecord(NamedTuple):
    """One decoded WAL record."""

    lsn: int
    op: str
    args: tuple


class WalReplay(NamedTuple):
    """Result of scanning a WAL file."""

    batches: list[list[WalRecord]]  # committed batches, in log order
    next_lsn: int
    valid_bytes: int  # offset just past the last commit marker
    damaged: bool  # True when a torn/corrupt record ended the scan


def _encode(lsn: int, op: str, args: tuple) -> bytes:
    payload = pickle.dumps((lsn, op, args), protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def replay(path: str) -> WalReplay:
    """Scan a WAL file into committed batches (uncommitted tail dropped).

    Never raises on damage: a short header, short payload, CRC mismatch
    or unpicklable payload simply ends the scan at the last committed
    batch, with ``damaged=True`` so the caller can truncate.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return WalReplay([], 1, 0, False)
    batches: list[list[WalRecord]] = []
    pending: list[WalRecord] = []
    next_lsn = 1
    valid_bytes = 0
    damaged = False
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _HEADER.size > size:
            damaged = True
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            damaged = True
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            damaged = True
            break
        try:
            lsn, op, args = pickle.loads(payload)
        except Exception:
            damaged = True
            break
        next_lsn = lsn + 1
        if op == COMMIT_OP:
            if pending:
                batches.append(pending)
                pending = []
            valid_bytes = end
        else:
            pending.append(WalRecord(lsn, op, tuple(args)))
        offset = end
    # ``pending`` (records after the last commit marker) is discarded:
    # those writes never committed.
    return WalReplay(batches, next_lsn, valid_bytes, damaged)


class WriteAheadLog:
    """Append/commit interface over one WAL file."""

    def __init__(self, path: str, *, sync: bool = True, next_lsn: int = 1):
        self.path = path
        self.sync = sync
        self._next_lsn = next_lsn
        self._poisoned = False
        created = not os.path.exists(path)
        self._file = open(path, "ab")
        if created:
            # The directory entry must be durable too, or a power loss
            # could drop the file while later appends "committed".
            layout.fsync_dir(os.path.dirname(path))
        self._dirty = False

    @classmethod
    def open(
        cls, path: str, *, sync: bool = True
    ) -> tuple["WriteAheadLog", WalReplay]:
        """Open (creating if missing), truncating any damaged tail.

        Returns the log positioned for appends plus the committed
        batches found on disk, which the caller replays into the
        catalog.
        """
        info = replay(path)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size > info.valid_bytes:
            if info.damaged:
                obs.incr("storage.wal.torn_tail_truncated")
            with open(path, "ab") as fh:
                fh.truncate(info.valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        return cls(path, sync=sync, next_lsn=info.next_lsn), info

    @property
    def tail_bytes(self) -> int:
        """Bytes appended since the file head (auto-checkpoint input)."""
        return self._file.tell()

    @property
    def last_lsn(self) -> int:
        """The highest LSN handed out so far (0 = nothing appended)."""
        return self._next_lsn - 1

    def ensure_next_lsn(self, min_next: int) -> None:
        """Raise the next LSN to at least ``min_next``.

        Recovery calls this with the checkpoint's WAL high-water mark
        + 1: LSNs must stay monotonic *across* checkpoints and process
        restarts, or records written after a reset would sort at or
        below the mark and be skipped by the next recovery.
        """
        if min_next > self._next_lsn:
            self._next_lsn = min_next

    def append(self, op: str, args: tuple) -> int:
        """Append one record (buffered; durable only after commit)."""
        if self._poisoned:
            raise StorageError(
                f"WAL {self.path!r} is poisoned by an earlier torn write"
            )
        lsn = self._next_lsn
        self._next_lsn += 1
        record = _encode(lsn, op, args)
        if faults.fire("storage.wal.append"):
            # Simulate a crash mid-write: half the record reaches the
            # disk, then the process "dies".  The log refuses further
            # appends so a surviving test harness cannot write past the
            # tear.
            self._file.write(record[: max(1, len(record) // 2)])
            self._file.flush()
            os.fsync(self._file.fileno())
            self._poisoned = True
            raise StorageError(
                f"injected torn WAL record at lsn {lsn} ({self.path!r})"
            )
        self._file.write(record)
        self._dirty = True
        obs.incr("storage.wal.records")
        return lsn

    def commit(self) -> None:
        """Append a commit marker and make everything before it durable."""
        if not self._dirty:
            return
        lsn = self._next_lsn
        self._next_lsn += 1
        self._file.write(_encode(lsn, COMMIT_OP, ()))
        self._file.flush()
        faults.fire("storage.wal.fsync")
        if self.sync:
            os.fsync(self._file.fileno())
        self._dirty = False
        obs.incr("storage.wal.commits")

    def reset(self) -> None:
        """Truncate the log after a successful checkpoint."""
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._dirty = False

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - best effort on teardown
            pass
