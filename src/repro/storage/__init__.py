"""``repro.storage`` — pluggable durability for the minidb engine.

The subsystem the paper's "database system support" framing implies but
our reproduction lacked: a :class:`~repro.storage.manager.StorageManager`
interface with an in-memory backend (the previous behaviour) and a
durable file backend — write-ahead log with fsync-on-commit,
checkpointing, crash recovery by WAL replay — plus snapshot
serialization of the phonetic B-trees, q-gram tables, BK-trees and
CSR-encoded parallel tables so a reopened database *attaches* its
indexes instead of re-deriving phonemes for every row.

Usage::

    from repro.storage import open_database

    db = open_database("data/")          # recovers committed state
    db.execute("ANALYZE")                # refresh + persist statistics
    db.checkpoint()                      # fold the WAL into a snapshot

All durable-format knowledge (file names, record layouts) lives inside
this package; lint rule LEX-A006 keeps it that way.
"""

from repro.storage.manager import FileBackend, MemoryBackend, StorageManager

__all__ = [
    "FileBackend",
    "MemoryBackend",
    "StorageManager",
    "open_database",
]


def __getattr__(name: str):
    # Lazy: bootstrap imports the catalog, which imports this package's
    # manager — resolving open_database on first use keeps the import
    # graph acyclic.
    if name == "open_database":
        from repro.storage.bootstrap import open_database

        return open_database
    raise AttributeError(name)
