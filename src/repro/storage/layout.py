"""On-disk layout of a LexEQUAL data directory (DESIGN.md §10).

Every durable artifact name lives here and nowhere else: the lint rule
LEX-A006 flags these literals (and ``.idx``-suffixed paths) anywhere
outside ``repro.storage``, so the durability invariants — what gets
fsynced when, which files the WAL protects — cannot leak into other
subsystems.

A data directory looks like::

    data/
      MANIFEST.json     # format version, accelerator meta
      wal.log           # write-ahead log since the last checkpoint
      checkpoint.bin    # schemas + heap slots + index snapshots
                        # + the WAL high-water mark it folded in
      stats.json        # ANALYZE output (the persisted stats catalog)
      indexes/          # one .idx snapshot per registered artifact
        accel_books_author.idx
        accel_books_author.ann   # embedding-matrix sidecar (if any)
"""

from __future__ import annotations

import os

#: Bump when the WAL record schema or checkpoint payload changes shape.
FORMAT_VERSION = 1

MANIFEST_FILENAME = "MANIFEST.json"
WAL_FILENAME = "wal.log"
CHECKPOINT_FILENAME = "checkpoint.bin"
STATS_FILENAME = "stats.json"
INDEX_DIRNAME = "indexes"
INDEX_SUFFIX = ".idx"
#: Sidecar holding an accelerator's quantized embedding matrix (the
#: bulky part of an ``ann`` snapshot, checkpointed separately so the
#: main ``.idx`` artifact stays small and a corrupt sidecar degrades to
#: "rebuild the embedding index" without losing the rest).
ANN_INDEX_SUFFIX = ".ann"

#: Artifact names must be path-safe (they become ``indexes/<name>.idx``).
_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-."
)


def safe_artifact_name(name: str) -> str:
    """Normalize an artifact name into a path-safe filename stem."""
    return "".join(c if c in _SAFE else "_" for c in name) or "artifact"


def fsync_dir(path: str) -> None:
    """fsync a directory so renames/creations inside it are durable.

    POSIX only guarantees a rename (or a new file's directory entry)
    survives power loss once the *containing directory's* metadata is
    on disk; fsyncing the file alone is not enough.  Platforms where
    directories cannot be opened (e.g. Windows) skip silently — there
    the rename-durability semantics differ anyway.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path or ".", flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync support
        pass
    finally:
        os.close(fd)


def manifest_path(data_dir: str) -> str:
    return os.path.join(data_dir, MANIFEST_FILENAME)


def wal_path(data_dir: str) -> str:
    return os.path.join(data_dir, WAL_FILENAME)


def checkpoint_path(data_dir: str) -> str:
    return os.path.join(data_dir, CHECKPOINT_FILENAME)


def stats_path(data_dir: str) -> str:
    return os.path.join(data_dir, STATS_FILENAME)


def index_dir(data_dir: str) -> str:
    return os.path.join(data_dir, INDEX_DIRNAME)


def index_path(data_dir: str, artifact_name: str) -> str:
    return os.path.join(
        index_dir(data_dir), safe_artifact_name(artifact_name) + INDEX_SUFFIX
    )


def ann_index_path(data_dir: str, artifact_name: str) -> str:
    return os.path.join(
        index_dir(data_dir),
        safe_artifact_name(artifact_name) + ANN_INDEX_SUFFIX,
    )
