"""Pluggable storage backends for the minidb catalog.

A :class:`~repro.minidb.catalog.Database` notifies its
:class:`StorageManager` of every committed mutation.  The
:class:`MemoryBackend` (the default) ignores them — today's in-memory
behaviour, zero durability, zero overhead beyond a no-op call.  The
:class:`FileBackend` turns them into WAL records with fsync-on-commit,
periodically folds the log into a checkpoint (heap slots, B+ tree
snapshots, registered accelerator artifacts), and replays the WAL over
the last checkpoint at open — the classical recovery contract: after a
crash, exactly the committed mutations are visible.

The backend also owns the persisted stats catalog (``ANALYZE`` output)
and the accelerator manifest, so :func:`repro.storage.open_database`
can re-attach phonetic indexes instead of rebuilding them.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager

from repro import faults, obs
from repro.errors import StorageError
from repro.locks import make_rlock
from repro.storage import layout, snapshots
from repro.storage.wal import WalReplay, WriteAheadLog


class StorageManager:
    """Interface the catalog drives; base class is fully in-memory."""

    #: True when mutations survive process death (drives WAL/manifest
    #: bookkeeping in callers that is pointless for the memory backend).
    persistent = False

    #: True while recovery replays logged state into the catalog
    #: (mutation hooks and stats persistence must not re-log it).
    replaying = False

    # -- catalog mutation hooks (called with the catalog lock held) ----

    def on_create_table(self, schema) -> None:
        pass

    def on_drop_table(self, name: str) -> None:
        pass

    def on_create_index(
        self, name: str, table_name: str, column_name: str, order: int
    ) -> None:
        pass

    def on_drop_index(self, name: str) -> None:
        pass

    def on_insert(self, table_name: str, rowid: int, row: tuple) -> None:
        pass

    def on_delete(self, table_name: str, rowid: int) -> None:
        pass

    # -- grouping / durability ----------------------------------------

    @property
    def wal_high_water_lsn(self) -> int | None:
        """Last committed WAL LSN, or ``None`` for non-durable backends.

        Surfaced by the server's ``health`` op so operators (and the
        cluster supervisor) can see replication/recovery progress.
        """
        return None

    @contextmanager
    def transaction(self):
        """Group mutations into one commit (no-op in memory)."""
        yield self

    def checkpoint(self, db) -> None:
        """Fold the WAL into a new checkpoint (no-op in memory)."""

    def close(self) -> None:
        pass

    # -- stats + artifacts --------------------------------------------

    def save_stats(self, payload: dict) -> None:
        pass

    def load_stats(self) -> dict | None:
        return None

    def register_artifact(self, name: str, provider) -> None:
        """Register ``provider() -> picklable state`` snapshotted at
        checkpoint time (e.g. an accelerator's index structures)."""

    def load_artifact(self, name: str) -> object | None:
        return None

    def register_accelerator_meta(self, meta: dict) -> None:
        pass

    def accelerator_meta(self) -> list[dict]:
        return []


class MemoryBackend(StorageManager):
    """The current in-memory behaviour: nothing is durable."""


class FileBackend(StorageManager):
    """Durable single-directory backend: WAL + checkpoint + artifacts."""

    persistent = True

    def __init__(
        self,
        data_dir: str,
        *,
        sync: bool = True,
        auto_checkpoint_bytes: int | None = None,
    ):
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        os.makedirs(layout.index_dir(data_dir), exist_ok=True)
        self._lock = make_rlock("storage.backend")
        self._txn_depth = 0
        self._auto_checkpoint_bytes = auto_checkpoint_bytes
        self._artifacts: dict[str, object] = {}
        self._db = None
        #: True while open_database() replays recovered state; mutation
        #: hooks must not re-log what the WAL already holds.
        self.replaying = False
        self._manifest = self._load_manifest()
        self._checkpoint = self._load_checkpoint()
        #: WAL high-water mark folded into the last checkpoint: records
        #: at or below it are already in the checkpoint and must never
        #: be replayed again (a crash between the checkpoint rename and
        #: the WAL reset leaves them behind on disk).
        self._checkpoint_wal_lsn = (
            (self._checkpoint or {}).get("wal_lsn", 0)
        )
        self._wal, self._replay = WriteAheadLog.open(
            layout.wal_path(data_dir), sync=sync
        )
        self._wal.ensure_next_lsn(self._checkpoint_wal_lsn + 1)

    # ------------------------------------------------------- recovery

    def _load_manifest(self) -> dict:
        try:
            with open(layout.manifest_path(self.data_dir)) as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            return {"format_version": layout.FORMAT_VERSION, "accelerators": []}
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"unreadable manifest in {self.data_dir!r}: {exc}"
            ) from exc
        version = manifest.get("format_version")
        if version != layout.FORMAT_VERSION:
            raise StorageError(
                f"data dir {self.data_dir!r} has format v{version}, "
                f"this build supports v{layout.FORMAT_VERSION}"
            )
        return manifest

    def _load_checkpoint(self) -> dict | None:
        path = layout.checkpoint_path(self.data_dir)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as fh:
            return snapshots.load(fh, "checkpoint")

    def recovered_checkpoint(self) -> dict | None:
        """The last checkpoint payload, or None (fresh directory).

        The payload cached at open is released on first call (heap
        slots can be large); later calls re-read the file.
        """
        if self._checkpoint is not None:
            payload, self._checkpoint = self._checkpoint, None
            return payload
        return self._load_checkpoint()

    def recovered_wal(self) -> WalReplay:
        """Committed WAL batches newer than the checkpoint (replayed
        over it by :func:`repro.storage.open_database`).

        Records at or below the checkpoint's WAL high-water mark are
        already folded into the checkpoint — they survive on disk only
        when a crash hit between the checkpoint rename and the WAL
        reset — and replaying them again would double-apply mutations,
        so they are dropped here.
        """
        if not self._checkpoint_wal_lsn:
            return self._replay
        batches = [
            [r for r in batch if r.lsn > self._checkpoint_wal_lsn]
            for batch in self._replay.batches
        ]
        skipped = len(self._replay.batches) - sum(1 for b in batches if b)
        if skipped:
            obs.incr("storage.wal.stale_batches_skipped", skipped)
        return self._replay._replace(batches=[b for b in batches if b])

    def bind(self, db) -> None:
        """Give the backend its database (for auto-checkpointing)."""
        self._db = db

    @property
    def wal_high_water_lsn(self) -> int | None:
        return self._wal.last_lsn

    # ------------------------------------------------- mutation hooks

    def _log(self, op: str, args: tuple) -> None:
        if self.replaying:
            return
        with self._lock:
            self._wal.append(op, args)
            commit = self._txn_depth == 0
            if commit:
                self._wal.commit()
        # Auto-checkpoint outside the backend lock: checkpoint() takes
        # the catalog write lock first (lock order catalog -> backend),
        # so it must not be entered while holding only the backend lock.
        if commit:
            self._maybe_auto_checkpoint()

    def on_create_table(self, schema) -> None:
        columns = [
            (c.name, c.type.name, c.nullable) for c in schema.columns
        ]
        self._log("create_table", (schema.name, columns))

    def on_drop_table(self, name: str) -> None:
        self._log("drop_table", (name,))

    def on_create_index(
        self, name: str, table_name: str, column_name: str, order: int
    ) -> None:
        self._log("create_index", (name, table_name, column_name, order))

    def on_drop_index(self, name: str) -> None:
        self._log("drop_index", (name,))

    def on_insert(self, table_name: str, rowid: int, row: tuple) -> None:
        self._log("insert", (table_name, rowid, row))

    def on_delete(self, table_name: str, rowid: int) -> None:
        self._log("delete", (table_name, rowid))

    # ------------------------------------------------------ grouping

    @contextmanager
    def transaction(self):
        """Batch mutations into one WAL commit (one fsync at the end)."""
        with self._lock:
            self._txn_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._txn_depth -= 1
                commit = self._txn_depth == 0 and not self.replaying
                if commit:
                    self._wal.commit()
            if commit:
                self._maybe_auto_checkpoint()

    def _maybe_auto_checkpoint(self) -> None:
        if (
            self._auto_checkpoint_bytes is not None
            and self._db is not None
            and self._wal.tail_bytes >= self._auto_checkpoint_bytes
        ):
            self.checkpoint(self._db)

    # ---------------------------------------------------- checkpoint

    def checkpoint(self, db) -> None:
        """Atomically replace the checkpoint and truncate the WAL.

        Crash-safe ordering: artifacts and the new checkpoint — which
        records the WAL high-water mark (``wal_lsn``) it folded in —
        are written to temp files, fsynced, renamed into place, and
        the containing directory fsynced; only then does the WAL
        reset.  A crash before the rename leaves the old checkpoint +
        full WAL; a crash between the rename and the reset leaves the
        new checkpoint + a stale WAL whose records all sit at or below
        the recorded high-water mark, so recovery skips them instead
        of replaying them twice (the ``storage.checkpoint.post_rename``
        failpoint exercises exactly this window).

        Lock order is catalog -> backend, the same order the mutation
        hooks use (they fire under the catalog write lock and then take
        the backend lock), so a checkpoint can never deadlock against a
        concurrent writer.
        """
        with db.write_lock, self._lock, obs.timed("storage.checkpoint"):
            state = db.snapshot_state()
            wal_lsn = self._wal.last_lsn
            payload = {
                "wal_lsn": wal_lsn,
                "tables": state["tables"],
                "indexes": [
                    {
                        "name": ix["name"],
                        "table": ix["table"],
                        "column": ix["column"],
                        "state": snapshots.btree_state(ix["tree"]),
                    }
                    for ix in state["indexes"]
                ],
            }
            for name, provider in self._artifacts.items():
                artifact = provider()
                if artifact is None:
                    continue
                ann_state = None
                if isinstance(artifact, dict) and "ann" in artifact:
                    # The quantized embedding matrix goes to its own
                    # sidecar: the main .idx artifact stays small and a
                    # corrupt sidecar degrades to an embedding rebuild.
                    artifact = dict(artifact)
                    ann_state = artifact.pop("ann")
                self._write_atomic(
                    layout.index_path(self.data_dir, name),
                    lambda fh, a=artifact: snapshots.dump(fh, "artifact", a),
                )
                ann_path = layout.ann_index_path(self.data_dir, name)
                if ann_state is not None:
                    self._write_atomic(
                        ann_path,
                        lambda fh, a=ann_state: snapshots.dump(
                            fh, "ann-index", a
                        ),
                    )
                elif os.path.exists(ann_path):
                    # The accelerator no longer carries an embedding
                    # index: drop the stale sidecar so a later reopen
                    # cannot resurrect it.
                    os.remove(ann_path)
                    layout.fsync_dir(os.path.dirname(ann_path))
            if faults.fire("storage.checkpoint"):
                raise StorageError(
                    "injected checkpoint abort before rename "
                    f"({self.data_dir!r})"
                )
            self._write_atomic(
                layout.checkpoint_path(self.data_dir),
                lambda fh: snapshots.dump(fh, "checkpoint", payload),
            )
            self._write_manifest()
            if faults.fire("storage.checkpoint.post_rename"):
                raise StorageError(
                    "injected crash between checkpoint rename and WAL "
                    f"reset ({self.data_dir!r})"
                )
            self._wal.reset()
            self._checkpoint_wal_lsn = wal_lsn
            obs.incr("storage.checkpoint.completed")

    def _write_atomic(self, path: str, write_fn) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        # The rename itself is durable only once the directory entry is.
        layout.fsync_dir(os.path.dirname(path))

    def _write_manifest(self) -> None:
        body = json.dumps(self._manifest, indent=2, sort_keys=True)
        self._write_atomic(
            layout.manifest_path(self.data_dir),
            lambda fh: fh.write(body.encode("utf-8")),
        )

    # -------------------------------------------------------- stats

    def save_stats(self, payload: dict) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True)
        self._write_atomic(
            layout.stats_path(self.data_dir),
            lambda fh: fh.write(body.encode("utf-8")),
        )

    def load_stats(self) -> dict | None:
        try:
            with open(layout.stats_path(self.data_dir)) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            obs.incr("storage.stats.unreadable")
            return None

    # ---------------------------------------------------- artifacts

    def register_artifact(self, name: str, provider) -> None:
        with self._lock:
            self._artifacts[name] = provider

    def load_artifact(self, name: str) -> object | None:
        """A persisted artifact's state; None means "rebuild instead".

        Corruption is deliberately non-fatal here: an index snapshot is
        derived data, so the worst case of a damaged ``.idx`` file is a
        slower open, never wrong answers.
        """
        path = layout.index_path(self.data_dir, name)
        try:
            with open(path, "rb") as fh:
                artifact = snapshots.load(fh, "artifact")
        except FileNotFoundError:
            return None
        except (StorageError, OSError):
            obs.incr("storage.artifact.unreadable")
            return None
        if isinstance(artifact, dict):
            ann_state = self._load_ann_sidecar(name)
            if ann_state is not None:
                artifact["ann"] = ann_state
        return artifact

    def _load_ann_sidecar(self, name: str) -> object | None:
        """The ``.ann`` embedding sidecar, if present and intact."""
        path = layout.ann_index_path(self.data_dir, name)
        try:
            with open(path, "rb") as fh:
                return snapshots.load(fh, "ann-index")
        except FileNotFoundError:
            return None
        except (StorageError, OSError):
            obs.incr("storage.artifact.unreadable")
            return None

    def register_accelerator_meta(self, meta: dict) -> None:
        """Record an accelerator in the manifest (written immediately,
        so a reopen before the first checkpoint still re-creates it)."""
        with self._lock:
            entries = [
                entry
                for entry in self._manifest.setdefault("accelerators", [])
                if not (
                    entry["table"] == meta["table"]
                    and entry["column"] == meta["column"]
                )
            ]
            entries.append(meta)
            self._manifest["accelerators"] = entries
            self._write_manifest()

    def accelerator_meta(self) -> list[dict]:
        return list(self._manifest.get("accelerators", []))

    # ------------------------------------------------------ lifecycle

    def close(self) -> None:
        with self._lock:
            self._wal.close()
