"""Reporters: render findings as terminal text or a JSON document."""

from __future__ import annotations

import json

from repro.analysis.findings import Finding


def render_text(
    findings: list[Finding],
    *,
    suppressed: int = 0,
    rules_run: int = 0,
) -> str:
    """Compiler-style listing: ``file:line: rule [severity] message``."""
    lines = [
        f"{f.location}: {f.rule} [{f.severity}] {f.message}"
        for f in sorted(findings, key=Finding.sort_key)
    ]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    summary = (
        f"{len(findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s))"
    )
    if suppressed:
        summary += f", {suppressed} baselined"
    if rules_run:
        summary += f" — {rules_run} rule(s) run"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    *,
    root: str = "",
    rules: list[dict] | None = None,
    suppressed: list[Finding] | None = None,
) -> str:
    """Machine-readable report (consumed by the CI ``lint-domain`` job)."""
    doc = {
        "version": 1,
        "root": root,
        "rules": rules or [],
        "findings": [
            f.to_dict() for f in sorted(findings, key=Finding.sort_key)
        ],
        "suppressed": [
            f.to_dict()
            for f in sorted(suppressed or [], key=Finding.sort_key)
        ],
    }
    return json.dumps(doc, indent=2, ensure_ascii=False)
