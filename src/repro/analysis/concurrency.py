"""LEX-C — the concurrency and resource-safety rule family.

Five whole-program AST rules over the concurrent half of the system
(DESIGN.md §8), all judged against the declarative sanctioned spec in
:mod:`repro.analysis.lockspec` — a violation is fixed or sanctioned in
the spec with a reason, never baselined:

- **LEX-C001** ``lock-order``: every (held, acquired) lock pair in the
  interprocedural lock graph must follow the sanctioned rank order, and
  every discovered lock must be ranked.
- **LEX-C002** ``async-blocking``: no blocking calls (``time.sleep``,
  ``os.fsync``, synchronous sockets/files, untimed ``.acquire()``)
  inside ``async def`` bodies on the server/cluster event loops.
- **LEX-C003** ``fork-signal-safety``: no lock acquisition or thread
  creation reachable from ``os.register_at_fork`` hooks or
  ``signal.signal`` handlers outside sanctioned sites.
- **LEX-C004** ``resource-lifecycle``: files, sockets, and shared-memory
  segments are opened under ``with``, a ``try/finally``, or stored on
  ``self`` for object-lifecycle cleanup.
- **LEX-C005** ``deadline-polls``: ``while`` loops on the DP/match hot
  paths poll the cooperative deadline.

Every rule takes its file list (and spec) as constructor arguments so
tests can point it at fixture trees with seeded violations.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.base import AnalysisContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.lockgraph import LockGraph
from repro.analysis.lockspec import (
    ASYNC_SCOPES,
    DEFAULT_SPEC,
    HOT_PATH_FILES,
    SANCTIONED_ASYNC_SITES,
    SANCTIONED_FORK_SITES,
    SANCTIONED_SIGNAL_SITES,
    SANCTIONED_UNPOLLED_LOOPS,
    LockOrderSpec,
)


def _dotted(func: ast.AST) -> str:
    """Best-effort dotted name of a call target (``os.fsync`` etc.)."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _functions(
    tree: ast.Module,
) -> Iterable[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """(qualname, node) for every top-level function and method."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield f"{node.name}.{item.name}", item


class LockOrder(Rule):
    """LEX-C001: the interprocedural lock graph follows sanctioned order."""

    rule_id = "LEX-C001"
    name = "lock-order"
    description = (
        "lock acquisitions (propagated through call edges) must follow "
        "the sanctioned rank order in repro.analysis.lockspec, and "
        "every lock must be ranked"
    )

    def __init__(
        self,
        files: list[str] | None = None,
        spec: LockOrderSpec = DEFAULT_SPEC,
    ):
        self.files = files
        self.spec = spec

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        graph = LockGraph(ctx, files=self.files, spec=self.spec)
        spec = self.spec
        # Every discovered lock must have a rank: an unranked lock has
        # no sanctioned position, so no nesting involving it can be
        # judged.
        reported_unranked: set[str] = set()
        for creation in graph.creations:
            if spec.rank(creation.lock) is not None:
                continue
            if creation.lock in reported_unranked:
                continue
            reported_unranked.add(creation.lock)
            owner = (
                f"{creation.cls}.{creation.attr}"
                if creation.cls
                else creation.attr
            )
            yield self.finding(
                creation.file,
                creation.line,
                f"lock '{creation.lock}' ({owner}) has no rank in the "
                "sanctioned-order spec (repro/analysis/lockspec.py)",
            )
        # Factory names must agree with the spec's resolution tables,
        # or the static and runtime views of the same lock diverge.
        for creation in graph.creations:
            if creation.factory_name is None:
                continue
            expected = None
            if creation.cls is not None:
                expected = spec.class_attrs.get(
                    (creation.cls, creation.attr)
                )
            else:
                expected = spec.module_vars.get(
                    (creation.file, creation.attr)
                )
            if expected is not None and expected != creation.factory_name:
                yield self.finding(
                    creation.file,
                    creation.line,
                    f"lock factory name '{creation.factory_name}' "
                    f"disagrees with the spec name '{expected}' for "
                    f"{creation.cls or creation.file}.{creation.attr}",
                )
        # The graph itself: every nesting must be sanctioned.
        for edge in graph.edges():
            if spec.allows(edge.outer, edge.inner):
                continue
            outer_rank = spec.rank(edge.outer)
            inner_rank = spec.rank(edge.inner)
            if outer_rank is None or inner_rank is None:
                unranked = (
                    edge.outer if outer_rank is None else edge.inner
                )
                yield self.finding(
                    edge.file,
                    edge.line,
                    f"unranked lock '{unranked}' in nesting "
                    f"'{edge.outer}' -> '{edge.inner}' ({edge.path})",
                )
            else:
                yield self.finding(
                    edge.file,
                    edge.line,
                    f"lock order inversion: '{edge.inner}' "
                    f"(rank {inner_rank}) acquired while holding "
                    f"'{edge.outer}' (rank {outer_rank}) via "
                    f"{edge.path}; the sanctioned order acquires "
                    "lower ranks first",
                )
        # Lock-looking references the resolver could not bind are
        # blind spots, not passes.
        for info in graph.functions.values():
            for line, text in info.unresolved:
                yield self.finding(
                    info.file,
                    line,
                    f"unresolvable lock reference '{text}' in "
                    f"{info.qualname}: name it in the spec's "
                    "resolution tables",
                    severity="warning",
                )


#: Call targets that block the event loop outright.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "socket.socket",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)


class AsyncBlocking(Rule):
    """LEX-C002: no blocking calls inside event-loop coroutine bodies."""

    rule_id = "LEX-C002"
    name = "async-blocking"
    description = (
        "async def bodies in repro.server/repro.cluster must not call "
        "time.sleep, os.fsync, blocking socket/file I/O, or untimed "
        ".acquire()"
    )

    def __init__(
        self,
        files: list[str] | None = None,
        scopes: tuple[str, ...] = ASYNC_SCOPES,
        sanctioned: dict[tuple[str, str], str] | None = None,
    ):
        self.files = files
        self.scopes = scopes
        self.sanctioned = (
            sanctioned
            if sanctioned is not None
            else dict(SANCTIONED_ASYNC_SITES)
        )

    def _scoped(self, ctx: AnalysisContext) -> list[str]:
        if self.files is not None:
            return self.files
        return [
            f
            for f in ctx.python_files()
            if any(f.startswith(scope) for scope in self.scopes)
        ]

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for file in self._scoped(ctx):
            try:
                tree = ctx.tree(file)
            except (OSError, SyntaxError):
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_async(file, node)

    def _check_async(
        self, file: str, func: ast.AsyncFunctionDef
    ) -> Iterable[Finding]:
        if (file, func.name) in self.sanctioned:
            return
        for node in self._body_walk(func):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in BLOCKING_CALLS or dotted == "open":
                    yield self.finding(
                        file,
                        node.lineno,
                        f"blocking call {dotted}() inside async def "
                        f"{func.name}: use the worker pool / "
                        "run_in_executor",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and not node.args
                    and not any(
                        kw.arg == "timeout" for kw in node.keywords
                    )
                ):
                    yield self.finding(
                        file,
                        node.lineno,
                        f"untimed .acquire() inside async def "
                        f"{func.name} can block the event loop",
                    )
            elif isinstance(node, ast.With):
                for item in node.items:
                    text = ""
                    try:
                        text = ast.unparse(item.context_expr)
                    except Exception:  # pragma: no cover - defensive
                        pass
                    if "lock" in text.lower() and not isinstance(
                        item.context_expr, ast.Call
                    ):
                        yield self.finding(
                            file,
                            item.context_expr.lineno,
                            f"synchronous 'with {text}' inside async "
                            f"def {func.name} blocks the event loop "
                            "while contended",
                        )

    def _body_walk(self, func: ast.AsyncFunctionDef) -> Iterable[ast.AST]:
        """Walk the coroutine body, skipping nested function defs.

        A nested synchronous ``def`` is typically shipped to an
        executor (repro.cluster.links does exactly this); nested async
        defs are visited by the outer file walk on their own.
        """
        stack: list[ast.AST] = [
            node
            for node in func.body
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
        ]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                stack.append(child)


class ForkSignalSafety(Rule):
    """LEX-C003: fork hooks and signal handlers stay lock- and thread-free."""

    rule_id = "LEX-C003"
    name = "fork-signal-safety"
    description = (
        "no lock acquisition or thread creation reachable from "
        "os.register_at_fork hooks or signal.signal handlers outside "
        "sanctioned sites"
    )

    def __init__(
        self,
        files: list[str] | None = None,
        spec: LockOrderSpec = DEFAULT_SPEC,
        sanctioned_fork: dict[tuple[str, str], str] | None = None,
        sanctioned_signal: dict[tuple[str, str], str] | None = None,
    ):
        self.files = files
        self.spec = spec
        self.sanctioned_fork = (
            sanctioned_fork
            if sanctioned_fork is not None
            else dict(SANCTIONED_FORK_SITES)
        )
        self.sanctioned_signal = (
            sanctioned_signal
            if sanctioned_signal is not None
            else dict(SANCTIONED_SIGNAL_SITES)
        )

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        graph = LockGraph(ctx, files=self.files, spec=self.spec)
        for reg in graph.registrations:
            sanctioned = (
                self.sanctioned_fork
                if reg.kind == "fork"
                else self.sanctioned_signal
            )
            hook = (
                f"{reg.kind} hook '{reg.handler}' "
                f"(registered in {reg.file})"
            )
            roots = graph.resolve_handler(reg)
            if not roots:
                yield self.finding(
                    reg.file,
                    reg.line,
                    f"unresolvable handler '{reg.handler}' for "
                    f"{reg.kind} registration",
                    severity="warning",
                )
                continue
            for key in sorted(graph.reachable(roots)):
                info = graph.functions[key]
                if (info.file, info.qualname) in sanctioned:
                    continue
                for acq in info.acquires:
                    yield self.finding(
                        info.file,
                        acq.line,
                        f"lock '{acq.lock}' acquired in "
                        f"{info.qualname}, reachable from {hook}: "
                        "a fork child or signal frame may find it "
                        "held forever",
                    )
                for line in info.thread_lines:
                    yield self.finding(
                        info.file,
                        line,
                        f"thread started in {info.qualname}, "
                        f"reachable from {hook}",
                    )


#: Calls that allocate an OS resource needing deterministic cleanup.
RESOURCE_CALLS = frozenset(
    {
        "open",
        "io.open",
        "os.fdopen",
        "gzip.open",
        "socket.socket",
        "socket.create_connection",
        "SharedMemory",
        "shared_memory.SharedMemory",
    }
)

_CLEANUP_ATTRS = frozenset(
    {"close", "unlink", "shutdown", "terminate", "release"}
)


class ResourceLifecycle(Rule):
    """LEX-C004: OS resources are opened under with/try-finally/self."""

    rule_id = "LEX-C004"
    name = "resource-lifecycle"
    description = (
        "files, sockets, and shared-memory segments must be opened "
        "under with, a try/finally, returned, or stored on self for "
        "object-lifecycle cleanup"
    )

    def __init__(self, files: list[str] | None = None):
        self.files = files

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        files = (
            self.files if self.files is not None else ctx.python_files()
        )
        for file in files:
            try:
                tree = ctx.tree(file)
            except (OSError, SyntaxError):
                continue
            for qualname, func in _functions(tree):
                yield from self._check_function(file, qualname, func)

    def _check_function(
        self,
        file: str,
        qualname: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterable[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(func):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted not in RESOURCE_CALLS:
                continue
            verdict = self._classify(node, func, parents)
            if verdict is not None:
                yield self.finding(
                    file,
                    node.lineno,
                    f"{dotted}() in {qualname} {verdict}",
                )

    def _classify(
        self,
        call: ast.Call,
        func: ast.AST,
        parents: dict[ast.AST, ast.AST],
    ) -> str | None:
        """None when the resource is safely scoped, else the complaint."""
        node: ast.AST = call
        while node in parents:
            parent = parents[node]
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                if any(
                    item.context_expr is node
                    or self._contains(item.context_expr, call)
                    for item in parent.items
                ):
                    return None
            if isinstance(parent, ast.Return):
                return None  # ownership transferred to the caller
            if isinstance(parent, ast.Assign):
                return self._check_assign(parent, func)
            node = parent
        return (
            "opens a resource with no with/try-finally and no owner "
            "to close it"
        )

    @staticmethod
    def _contains(root: ast.AST, target: ast.AST) -> bool:
        return any(node is target for node in ast.walk(root))

    def _check_assign(
        self, assign: ast.Assign, func: ast.AST
    ) -> str | None:
        names: list[str] = []
        for target in assign.targets:
            elements = (
                target.elts if isinstance(target, ast.Tuple) else [target]
            )
            for element in elements:
                if isinstance(element, ast.Attribute) and isinstance(
                    element.value, ast.Name
                ) and element.value.id == "self":
                    return None  # object owns the lifecycle
                if isinstance(element, ast.Name):
                    names.append(element.id)
        if not names:
            return None
        for name in names:
            if self._name_managed(name, func):
                return None
        return (
            f"assigns a resource to '{names[0]}' without a "
            "with/try-finally cleanup path"
        )

    @staticmethod
    def _name_managed(name: str, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        if isinstance(sub, ast.Name) and sub.id == name:
                            return True
            elif isinstance(node, ast.Try) and node.finalbody:
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Attribute)
                            and sub.attr in _CLEANUP_ATTRS
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id == name
                        ):
                            return True
                        if (
                            isinstance(sub, ast.Call)
                            and any(
                                isinstance(arg, ast.Name)
                                and arg.id == name
                                for arg in sub.args
                            )
                        ):
                            return True
            elif isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        return False


class DeadlinePolls(Rule):
    """LEX-C005: hot-path while loops poll the cooperative deadline."""

    rule_id = "LEX-C005"
    name = "deadline-polls"
    description = (
        "while loops on the DP/match hot paths must poll repro.deadline "
        "(or be sanctioned as bounded in the spec)"
    )

    def __init__(
        self,
        files: tuple[str, ...] | list[str] = HOT_PATH_FILES,
        sanctioned: dict[tuple[str, str], str] | None = None,
    ):
        self.files = list(files)
        self.sanctioned = (
            sanctioned
            if sanctioned is not None
            else dict(SANCTIONED_UNPOLLED_LOOPS)
        )

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for file in self.files:
            try:
                tree = ctx.tree(file)
            except (OSError, SyntaxError):
                continue
            polling_funcs = self._polling_functions(tree)
            for qualname, func in _functions(tree):
                if (file, qualname) in self.sanctioned:
                    continue
                snapshots = self._deadline_snapshots(func)
                func_polls = bool(snapshots) or self._polls(
                    func, snapshots, polling_funcs
                )
                for node in ast.walk(func):
                    if not isinstance(node, ast.While):
                        continue
                    if self._polls(node, snapshots, polling_funcs):
                        continue
                    # A bounded scan inside a function that polls at
                    # its own cadence (per DP row) is fine; a
                    # ``while True`` must poll in-body, and a function
                    # that never polls gets no credit at all.
                    unbounded = (
                        isinstance(node.test, ast.Constant)
                        and node.test.value is True
                    )
                    if func_polls and not unbounded:
                        continue
                    yield self.finding(
                        file,
                        node.lineno,
                        f"while loop in {qualname} never polls the "
                        "cooperative deadline; long inputs cannot "
                        "be cancelled",
                    )

    @staticmethod
    def _deadline_snapshots(func: ast.AST) -> set[str]:
        """Names bound from ``deadline.*`` calls (the snapshot idiom)."""
        out: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and "deadline" in _dotted(node.value.func).lower()
            ):
                for target in node.targets:
                    elements = (
                        target.elts
                        if isinstance(target, ast.Tuple)
                        else [target]
                    )
                    for element in elements:
                        if isinstance(element, ast.Name):
                            out.add(element.id)
        return out

    @staticmethod
    def _polling_functions(tree: ast.Module) -> set[str]:
        """Same-file functions that themselves touch the deadline."""
        out: set[str] = set()
        for qualname, func in _functions(tree):
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and "deadline" in _dotted(node.func).lower()
                ):
                    out.add(qualname.rsplit(".", 1)[-1])
                    break
        return out

    @staticmethod
    def _polls(
        loop: ast.While, snapshots: set[str], polling_funcs: set[str]
    ) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if "deadline" in dotted.lower():
                    return True
                if dotted.rsplit(".", 1)[-1] in polling_funcs:
                    return True
            elif isinstance(node, ast.Name) and node.id in snapshots:
                return True
            elif (
                isinstance(node, ast.Raise)
                and node.exc is not None
                and "deadline" in ast.dump(node.exc).lower()
            ):
                return True
        return False
