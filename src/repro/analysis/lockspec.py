"""The sanctioned concurrency spec: lock order, fork/signal sites, loops.

This module is **data, not code** — the single declarative source of
truth shared by the static LEX-C rules (:mod:`repro.analysis.concurrency`)
and the runtime lock-order sanitizer (:mod:`repro.analysis.sanitizer`).
Every lock in the system has a canonical dotted name and a rank; locks
must only ever be acquired in ascending rank order.  Exceptions — fork
hooks that may touch a lock, hot-path loops that poll their deadline
through a callback the analyzer cannot see — are sanctioned *here*, each
with a reason string, never via the lint baseline (DESIGN.md §8).

Keep this file import-light: it is imported by production code paths
when ``REPRO_LOCKSAN=1`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --------------------------------------------------------------- ranks
#
# The sanctioned total order.  Lower rank = acquired first (outermost).
# The load-bearing chain is the PR 7 invariant:
#
#   cluster.supervisor < minidb.catalog.write < {minidb.table.write,
#   storage.backend} < registries/caches < faults < shm < obs
#
# i.e. the catalog write lock is always taken before the storage
# backend lock (checkpoint does ``with db.write_lock, self._lock``),
# and observability/fault instrumentation locks are leaves that any
# holder may take but that must never wrap a structural lock.

LOCK_RANKS: dict[str, int] = {
    "cluster.supervisor": 10,
    "minidb.catalog.write": 20,
    "minidb.table.write": 30,
    "storage.backend": 35,
    "ttp.default": 50,
    "ttp.registry": 52,
    "server.cache": 55,
    "server.breaker_board": 60,
    "server.breaker": 62,
    "faults.registry": 70,
    "parallel.shm.counter": 80,
    "parallel.shm.live": 81,
    "parallel.shm.tracker": 82,
    "obs.registry": 90,
    "obs.instrument": 92,
}

#: ``(outer, inner)`` pairs allowed even though ranks would forbid (or
#: not order) them.  Empty today: every observed nesting follows the
#: rank order.  Add pairs here — with a comment — rather than
#: baselining a LEX-C001 finding.
SANCTIONED_EDGES: frozenset[tuple[str, str]] = frozenset()

# ------------------------------------------------- static resolution
#
# How the static analyzer maps source-level references back to
# canonical names.  ``self.<attr>`` inside a class resolves through
# CLASS_ATTRS; module-level names through MODULE_VARS; cross-object
# attribute references (``db.write_lock``) through ATTR_ALIASES, which
# must only contain attribute names that are unambiguous repo-wide.

CLASS_ATTRS: dict[tuple[str, str], str] = {
    ("ShardSupervisor", "_lock"): "cluster.supervisor",
    ("Database", "_write_lock"): "minidb.catalog.write",
    ("HeapTable", "_write_lock"): "minidb.table.write",
    ("FileBackend", "_lock"): "storage.backend",
    ("TTPRegistry", "_lock"): "ttp.registry",
    ("StatementCache", "_lock"): "server.cache",
    ("BreakerBoard", "_lock"): "server.breaker_board",
    ("CircuitBreaker", "_lock"): "server.breaker",
    ("FaultRegistry", "_lock"): "faults.registry",
    ("InMemoryMetricsRegistry", "_lock"): "obs.registry",
    ("Counter", "_lock"): "obs.instrument",
    ("Timer", "_lock"): "obs.instrument",
    ("Histogram", "_lock"): "obs.instrument",
}

MODULE_VARS: dict[tuple[str, str], str] = {
    ("src/repro/parallel/shm.py", "_counter_lock"): "parallel.shm.counter",
    ("src/repro/parallel/shm.py", "_live_lock"): "parallel.shm.live",
    ("src/repro/parallel/shm.py", "_tracker_patch_lock"): (
        "parallel.shm.tracker"
    ),
    ("src/repro/ttp/registry.py", "_DEFAULT_LOCK"): "ttp.default",
}

ATTR_ALIASES: dict[str, str] = {
    # Database.write_lock is the public property over _write_lock; it
    # is the only lock reached through a cross-object attribute today.
    "write_lock": "minidb.catalog.write",
}

#: Files the lock rules skip entirely, with reasons.  The sanitizer is
#: the measuring instrument — its internal state lock wraps tracked
#: acquisitions by construction and must not be graded by the rules it
#: implements.
EXCLUDED_FILES: dict[str, str] = {
    "src/repro/locks.py": "lock factory: creates locks, never holds them",
    "src/repro/analysis/sanitizer.py": (
        "sanitizer internals: the instrument, not the subject"
    ),
}

# ------------------------------------------------ fork / signal sites
#
# Functions reachable from an ``os.register_at_fork`` hook or a
# ``signal.signal`` handler that are allowed to touch locks or spawn
# threads, keyed ``(repo-relative file, qualname)``.

SANCTIONED_FORK_SITES: dict[tuple[str, str], str] = {}

SANCTIONED_SIGNAL_SITES: dict[tuple[str, str], str] = {}

# ------------------------------------------------- hot-path loop spec
#
# Files whose ``while`` loops must poll the cooperative deadline
# (LEX-C005), and the loops sanctioned as bounded by other means.

HOT_PATH_FILES: tuple[str, ...] = (
    "src/repro/matching/editdist.py",
    "src/repro/matching/batch.py",
    "src/repro/matching/bktree.py",
    "src/repro/parallel/executor.py",
)

SANCTIONED_UNPOLLED_LOOPS: dict[tuple[str, str], str] = {
    ("src/repro/matching/bktree.py", "BKTree.add"): (
        "descent is bounded by tree height; the build path runs "
        "without an armed deadline"
    ),
    ("src/repro/parallel/executor.py", "_worker_main"): (
        "worker idle loop: bounded by the 1s poll timeout plus the "
        "orphaned-parent check; workers disarm inherited deadlines"
    ),
    ("src/repro/parallel/executor.py", "_worker_match"): (
        "work-stealing claim loop: bounded by the shared claim counter "
        "reaching steal_stop; cancellation is enforced parent-side "
        "because workers disarm inherited deadlines"
    ),
    ("src/repro/parallel/executor.py", "_worker_join"): (
        "work-stealing claim loop: bounded by the shared claim counter "
        "reaching steal_stop; cancellation is enforced parent-side "
        "because workers disarm inherited deadlines"
    ),
    (
        "src/repro/parallel/executor.py",
        "ParallelMatchExecutor._drain_stale",
    ): (
        "drains only already-queued results: poll() without a timeout "
        "returns False immediately once the pipe is empty"
    ),
}

#: Package prefixes whose ``async def`` bodies LEX-C002 scans.
ASYNC_SCOPES: tuple[str, ...] = (
    "src/repro/server",
    "src/repro/cluster",
)

#: ``async def`` bodies allowed to make nominally-blocking calls.
SANCTIONED_ASYNC_SITES: dict[tuple[str, str], str] = {}


# ------------------------------------------------------- spec object


@dataclass(frozen=True)
class LockOrderSpec:
    """One bundled, overridable view of the sanctioned concurrency spec.

    Rules and the sanitizer take a spec instance (defaulting to
    :data:`DEFAULT_SPEC`) so tests can point the same machinery at
    fixture trees with seeded violations.
    """

    ranks: dict[str, int] = field(default_factory=lambda: dict(LOCK_RANKS))
    sanctioned_edges: frozenset[tuple[str, str]] = SANCTIONED_EDGES
    class_attrs: dict[tuple[str, str], str] = field(
        default_factory=lambda: dict(CLASS_ATTRS)
    )
    module_vars: dict[tuple[str, str], str] = field(
        default_factory=lambda: dict(MODULE_VARS)
    )
    attr_aliases: dict[str, str] = field(
        default_factory=lambda: dict(ATTR_ALIASES)
    )
    excluded_files: dict[str, str] = field(
        default_factory=lambda: dict(EXCLUDED_FILES)
    )

    def rank(self, name: str) -> int | None:
        return self.ranks.get(name)

    def allows(self, outer: str, inner: str) -> bool:
        """True when acquiring ``inner`` while holding ``outer`` is OK."""
        if outer == inner:
            # Reentrancy (RLock) or same-name sibling instances; the
            # static rule cannot order instances and the sanitizer
            # handles reentrancy by depth.
            return True
        if (outer, inner) in self.sanctioned_edges:
            return True
        outer_rank, inner_rank = self.rank(outer), self.rank(inner)
        if outer_rank is None or inner_rank is None:
            # Unranked locks have no sanctioned position; the caller
            # reports them separately.
            return False
        return outer_rank < inner_rank


DEFAULT_SPEC = LockOrderSpec()
