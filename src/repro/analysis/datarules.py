"""Data/contract analyzers: phonetic tables, clusterings, cost metrics.

These rules check the *domain data* the matcher is built on — the IPA
literals inside every TTP rule table, the phoneme-cluster partition, the
metric axioms of the cost models, rule-table reachability, and each
converter's coverage of its script's codepoint range.  A typo in any of
these tables silently degrades match quality (or, for a non-metric cost
model, silently drops true matches out of BK-tree range searches), which
is exactly the class of bug ordinary linters cannot see.
"""

from __future__ import annotations

import ast
import unicodedata
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.analysis.base import AnalysisContext, Rule
from repro.analysis.findings import Finding
from repro.errors import PhonemeError, ReproError

# ------------------------------------------------------------ LEX-D001


@dataclass(frozen=True)
class TableSpec:
    """One module-level table whose entries carry IPA literals.

    ``kind`` selects how IPA strings are pulled out of the literal:

    * ``"values"`` — dict mapping graphemes to IPA strings;
    * ``"pair_values"`` — dict mapping graphemes to tuples of IPA
      strings (Tamil's positional plosive values);
    * ``"rule_ipa"`` — NRL rule rows ``(left, fragment, right, ipa)``,
      the fourth column is the IPA output;
    * ``"symbols"`` — a flat collection of inventory symbols;
    * ``"symbol_groups"`` — nested groups of inventory symbols (the
      cluster table).
    """

    file: str
    attr: str
    kind: str = "values"


#: Every shipped table holding IPA output literals or inventory symbols.
DEFAULT_TABLES: tuple[TableSpec, ...] = (
    TableSpec("src/repro/ttp/hindi.py", "_CONSONANTS"),
    TableSpec("src/repro/ttp/hindi.py", "_VOWELS"),
    TableSpec("src/repro/ttp/hindi.py", "_MATRAS"),
    TableSpec("src/repro/ttp/kannada.py", "_CONSONANTS"),
    TableSpec("src/repro/ttp/kannada.py", "_VOWELS"),
    TableSpec("src/repro/ttp/kannada.py", "_MATRAS"),
    TableSpec("src/repro/ttp/tamil.py", "_PLOSIVES", "pair_values"),
    TableSpec("src/repro/ttp/tamil.py", "_FIXED"),
    TableSpec("src/repro/ttp/tamil.py", "_VOWELS"),
    TableSpec("src/repro/ttp/tamil.py", "_MATRAS"),
    TableSpec("src/repro/ttp/arabic.py", "_CONSONANTS"),
    TableSpec("src/repro/ttp/arabic.py", "_TANWIN"),
    TableSpec("src/repro/ttp/greek.py", "_DIGRAPHS"),
    TableSpec("src/repro/ttp/greek.py", "_SINGLES"),
    TableSpec("src/repro/ttp/english.py", "_RULES", "rule_ipa"),
    TableSpec("src/repro/ttp/english.py", "_EXCEPTIONS"),
    TableSpec("src/repro/ttp/french.py", "_RULES", "rule_ipa"),
    TableSpec("src/repro/ttp/spanish.py", "_RULES", "rule_ipa"),
    TableSpec("src/repro/matching/costs.py", "WEAK_PHONEMES", "symbols"),
    TableSpec(
        "src/repro/phonetics/clusters.py",
        "_DEFAULT_CLUSTERS",
        "symbol_groups",
    ),
)


def _iter_ipa(spec: TableSpec, value) -> Iterable[str]:
    """IPA strings (or inventory symbols) contained in a table literal."""
    if spec.kind == "values":
        yield from value.values()
    elif spec.kind == "pair_values":
        for pair in value.values():
            yield from pair
    elif spec.kind == "rule_ipa":
        for row in value:
            if isinstance(row, tuple) and len(row) == 4:
                yield row[3]
    elif spec.kind == "symbols":
        yield from value
    elif spec.kind == "symbol_groups":
        for group in value:
            yield from group
    else:  # pragma: no cover - manifest typo
        raise ValueError(f"unknown table kind {spec.kind!r}")


class IpaLiterals(Rule):
    """Every IPA literal in every phonetic table parses against the
    phoneme inventory."""

    rule_id = "LEX-D001"
    name = "ipa-literals"
    description = (
        "IPA output literals in TTP tables, rule tables and cost tables "
        "must tokenize into inventory phonemes"
    )

    def __init__(self, tables: tuple[TableSpec, ...] = DEFAULT_TABLES):
        self.tables = tables

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        from repro.phonetics.inventory import is_known_symbol
        from repro.phonetics.parse import parse_ipa

        for spec in self.tables:
            value = ctx.literal(spec.file, spec.attr)
            if value is None:
                yield self.finding(
                    spec.file,
                    1,
                    f"table {spec.attr} not found or not a literal",
                )
                continue
            for ipa in _iter_ipa(spec, value):
                if not isinstance(ipa, str):
                    yield self.finding(
                        spec.file,
                        ctx.assignment_line(spec.file, spec.attr),
                        f"{spec.attr}: non-string entry {ipa!r}",
                    )
                    continue
                if spec.kind in ("symbols", "symbol_groups"):
                    if not is_known_symbol(ipa):
                        yield self.finding(
                            spec.file,
                            ctx.literal_line(spec.file, spec.attr, ipa),
                            f"{spec.attr}: {ipa!r} is not an inventory "
                            "phoneme symbol",
                        )
                    continue
                try:
                    parse_ipa(ipa)
                except PhonemeError as exc:
                    yield self.finding(
                        spec.file,
                        ctx.literal_line(spec.file, spec.attr, ipa),
                        f"{spec.attr}: bad IPA literal {ipa!r}: {exc}",
                    )


# ------------------------------------------------------------ LEX-D002


class ClusterPartition(Rule):
    """The phoneme-cluster table forms a proper partition."""

    rule_id = "LEX-D002"
    name = "cluster-partition"
    description = (
        "cluster groups must be non-empty, disjoint, made of inventory "
        "symbols, and modifier variants must cluster with their base"
    )

    def __init__(
        self,
        file: str = "src/repro/phonetics/clusters.py",
        attr: str = "_DEFAULT_CLUSTERS",
        *,
        check_default: bool = True,
    ):
        self.file = file
        self.attr = attr
        #: Also verify the live default clustering's variant invariant
        #: (only meaningful when pointed at the real clusters module).
        self.check_default = check_default

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        from repro.phonetics.inventory import INVENTORY, is_known_symbol

        groups = ctx.literal(self.file, self.attr)
        if groups is None:
            yield self.finding(
                self.file,
                1,
                f"cluster table {self.attr} not found or not a literal",
            )
            return
        seen: dict[str, int] = {}
        for index, group in enumerate(groups):
            if not group:
                yield self.finding(
                    self.file,
                    ctx.assignment_line(self.file, self.attr),
                    f"{self.attr}: cluster #{index} is empty",
                )
                continue
            for sym in group:
                if not isinstance(sym, str) or not is_known_symbol(sym):
                    yield self.finding(
                        self.file,
                        ctx.literal_line(self.file, self.attr, sym),
                        f"{self.attr}: cluster #{index} contains "
                        f"non-inventory symbol {sym!r}",
                    )
                    continue
                if sym in seen:
                    yield self.finding(
                        self.file,
                        ctx.literal_line(self.file, self.attr, sym),
                        f"{self.attr}: phoneme {sym!r} appears in both "
                        f"cluster #{seen[sym]} and cluster #{index} — "
                        "not a partition",
                    )
                    continue
                seen[sym] = index
        if not self.check_default:
            return
        # Variant invariant of the live clustering: length, nasalization
        # and aspiration variants must share their base phoneme's cluster
        # (this is what lets Hindi /d̪ʱ/ match English /d/ cheaply).
        from repro.phonetics.clusters import default_clustering
        from repro.phonetics.inventory import base_symbol

        clustering = default_clustering()
        anchor = ctx.assignment_line(self.file, self.attr)
        for sym in sorted(INVENTORY):
            try:
                base = base_symbol(sym)
            except PhonemeError:  # pragma: no cover - inventory invariant
                continue
            if base != sym and not clustering.same_cluster(sym, base):
                yield self.finding(
                    self.file,
                    anchor,
                    f"default clustering separates {sym!r} from its "
                    f"base phoneme {base!r}",
                )


# ------------------------------------------------------------ LEX-D003


class MetricAxioms(Rule):
    """The shipped cost models satisfy the metric axioms exhaustively."""

    rule_id = "LEX-D003"
    name = "metric-axioms"
    description = (
        "cost models used for BK-tree pruning must satisfy positivity, "
        "identity, symmetry and the triangle inequality over the full "
        "phoneme inventory"
    )

    def __init__(
        self,
        models: list[tuple[str, object]] | None = None,
        file: str = "src/repro/matching/costs.py",
        symbols: tuple[str, ...] | None = None,
        max_report: int = 5,
    ):
        self._models = models
        self.file = file
        self.symbols = symbols
        self.max_report = max_report

    def models(self) -> list[tuple[str, object]]:
        if self._models is not None:
            return self._models
        from repro.matching.costs import UNIT_COST, ClusteredCost

        return [
            ("ClusteredCost(default)", ClusteredCost()),
            ("LevenshteinCost", UNIT_COST),
        ]

    def _class_line(self, ctx: AnalysisContext, model: object) -> int:
        try:
            tree = ctx.tree(self.file)
        except (OSError, SyntaxError):
            return 1
        for node in tree.body:
            if (
                isinstance(node, ast.ClassDef)
                and node.name == type(model).__name__
            ):
                return node.lineno
        return 1

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        from repro.matching.metric import check_metric_axioms

        for label, model in self.models():
            violations = check_metric_axioms(model, self.symbols)
            line = self._class_line(ctx, model)
            for violation in violations[: self.max_report]:
                yield self.finding(
                    self.file, line, f"{label}: {violation}"
                )
            extra = len(violations) - self.max_report
            if extra > 0:
                yield self.finding(
                    self.file,
                    line,
                    f"{label}: {extra} further metric violation(s) "
                    "suppressed",
                )


# ------------------------------------------------------------ LEX-D004

#: NRL rule tables checked for shadowed/unreachable rules.
DEFAULT_RULE_TABLES: tuple[tuple[str, str], ...] = (
    ("src/repro/ttp/english.py", "_RULES"),
    ("src/repro/ttp/spanish.py", "_RULES"),
    ("src/repro/ttp/french.py", "_RULES"),
)


class TtpShadowing(Rule):
    """No rule in an NRL rule table is shadowed by an earlier rule."""

    rule_id = "LEX-D004"
    name = "ttp-shadowing"
    description = (
        "NRL rule groups are first-match-wins: a rule is dead if an "
        "earlier rule of its group always matches first"
    )

    def __init__(
        self, tables: tuple[tuple[str, str], ...] = DEFAULT_RULE_TABLES
    ):
        self.tables = tables

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for file, attr in self.tables:
            rows = ctx.tuple_lines(file, attr)
            if not rows:
                yield self.finding(
                    file, 1, f"rule table {attr} not found or empty"
                )
                continue
            groups: dict[str, list[tuple[tuple, int]]] = {}
            for values, line in rows:
                if len(values) != 4 or not all(
                    isinstance(v, str) for v in values
                ):
                    yield self.finding(
                        file, line, f"{attr}: malformed rule row {values!r}"
                    )
                    continue
                if not values[1]:
                    yield self.finding(
                        file, line, f"{attr}: rule with empty fragment"
                    )
                    continue
                groups.setdefault(values[1][0], []).append((values, line))
            for group in groups.values():
                for i, (rule, line) in enumerate(group):
                    left, fragment, right, _ = rule
                    for earlier, earlier_line in (g for g in group[:i]):
                        e_left, e_fragment, e_right, _ = earlier
                        if (e_left, e_fragment, e_right) == (
                            left,
                            fragment,
                            right,
                        ):
                            yield self.finding(
                                file,
                                line,
                                f"{attr}: rule ({left!r}, {fragment!r}, "
                                f"{right!r}) duplicates the rule at line "
                                f"{earlier_line} and can never fire",
                            )
                            break
                        if (
                            e_left == ""
                            and e_right == ""
                            and fragment.startswith(e_fragment)
                        ):
                            yield self.finding(
                                file,
                                line,
                                f"{attr}: rule ({left!r}, {fragment!r}, "
                                f"{right!r}) is unreachable — the "
                                f"unconditional rule for {e_fragment!r} "
                                f"at line {earlier_line} always matches "
                                "first",
                            )
                            break


# ------------------------------------------------------------ LEX-D005


@dataclass(frozen=True)
class ScriptSpec:
    """Declared codepoint coverage of one converter.

    ``ranges`` holds ``(start, end, template)`` triples: every assigned
    codepoint in ``[start, end]`` must convert when substituted for the
    ``{}`` in ``template`` (dependent signs need a carrier consonant).
    """

    language: str
    file: str
    ranges: tuple[tuple[int, int, str], ...] = field(default_factory=tuple)


_LATIN = ((0x61, 0x7A, "{}"),)

#: Declared script coverage per shipped converter.  Arabic deliberately
#: excludes U+063B–063F (non-classical extension letters the converter
#: does not claim) and the Indic ranges exclude digits/punctuation.
DEFAULT_SCRIPTS: tuple[ScriptSpec, ...] = (
    ScriptSpec("english", "src/repro/ttp/english.py", _LATIN),
    ScriptSpec("spanish", "src/repro/ttp/spanish.py", _LATIN),
    ScriptSpec("french", "src/repro/ttp/french.py", _LATIN),
    ScriptSpec(
        "hindi",
        "src/repro/ttp/hindi.py",
        (
            (0x0905, 0x0914, "{}"),   # independent vowels
            (0x0915, 0x0939, "{}"),   # consonants
            (0x093E, 0x094C, "क{}"),  # matras on a carrier
            (0x0901, 0x0903, "का{}"),  # candrabindu/anusvara/visarga
            (0x093C, 0x093C, "क{}"),  # nukta
            (0x094D, 0x094D, "क{}"),  # virama
            (0x0950, 0x0950, "{}"),   # om
        ),
    ),
    ScriptSpec(
        "tamil",
        "src/repro/ttp/tamil.py",
        (
            (0x0B85, 0x0B94, "{}"),   # independent vowels
            (0x0B95, 0x0BB9, "{}"),   # consonants (incl. Grantha)
            (0x0BBE, 0x0BCC, "க{}"),  # matras on a carrier
            (0x0BCD, 0x0BCD, "க{}"),  # pulli
            (0x0B83, 0x0B83, "{}"),   # aytham
        ),
    ),
    ScriptSpec(
        "kannada",
        "src/repro/ttp/kannada.py",
        (
            (0x0C85, 0x0C94, "{}"),   # independent vowels
            (0x0C95, 0x0CB9, "{}"),   # consonants
            (0x0CBE, 0x0CCC, "ಕ{}"),  # matras on a carrier
            (0x0CCD, 0x0CCD, "ಕ{}"),  # virama
            (0x0C82, 0x0C83, "ಕ{}"),  # anusvara/visarga
        ),
    ),
    ScriptSpec(
        "greek",
        "src/repro/ttp/greek.py",
        ((0x03B1, 0x03C9, "{}"),),    # lowercase alpha..omega
    ),
    ScriptSpec(
        "arabic",
        "src/repro/ttp/arabic.py",
        (
            (0x0621, 0x063A, "{}"),   # hamza..ghain
            (0x0641, 0x064A, "{}"),   # feh..yeh
            (0x064B, 0x0652, "ن{}"),  # harakat on a carrier
        ),
    ),
)

#: Cap on per-language findings so one broken table stays readable.
_MAX_PER_LANGUAGE = 10


class ScriptCoverage(Rule):
    """Each converter actually converts its declared codepoint ranges."""

    rule_id = "LEX-D005"
    name = "script-coverage"
    description = (
        "every assigned codepoint of a converter's declared script "
        "ranges must survive a real conversion"
    )

    def __init__(self, scripts: tuple[ScriptSpec, ...] = DEFAULT_SCRIPTS):
        self.scripts = scripts

    def _anchor(self, ctx: AnalysisContext, file: str) -> int:
        try:
            tree = ctx.tree(file)
        except (OSError, SyntaxError):
            return 1
        classes = [n for n in tree.body if isinstance(n, ast.ClassDef)]
        return classes[0].lineno if len(classes) == 1 else 1

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        from repro.ttp.registry import default_registry

        registry = default_registry()
        for spec in self.scripts:
            try:
                converter = registry.converter_for(spec.language)
            except ReproError as exc:
                yield self.finding(
                    spec.file, 1, f"{spec.language}: no converter: {exc}"
                )
                continue
            anchor = self._anchor(ctx, spec.file)
            reported = 0
            skipped = 0
            for start, end, template in spec.ranges:
                for codepoint in range(start, end + 1):
                    ch = chr(codepoint)
                    if unicodedata.category(ch) == "Cn":
                        continue  # unassigned codepoint
                    sample = template.replace("{}", ch)
                    try:
                        converter.to_phonemes(sample)
                    except ReproError as exc:
                        if reported >= _MAX_PER_LANGUAGE:
                            skipped += 1
                            continue
                        reported += 1
                        yield self.finding(
                            spec.file,
                            anchor,
                            f"{spec.language}: U+{codepoint:04X} {ch!r} "
                            f"does not convert (as {sample!r}): {exc}",
                        )
            if skipped:
                yield self.finding(
                    spec.file,
                    anchor,
                    f"{spec.language}: {skipped} further uncovered "
                    "codepoint(s) suppressed",
                )
