"""Baseline suppression: accepted findings that should not fail CI.

The baseline file (``.lint-baseline.json`` at the repo root) records
findings that are known and deliberately tolerated — the escape hatch
that lets a new rule land while its pre-existing violations are burned
down incrementally.  Entries match on ``(rule, file, message)``; line
numbers are excluded so unrelated edits cannot un-suppress a finding.

The shipped baseline is empty: every analyzer runs clean on the repo,
and the CI ``lint-domain`` job fails on any non-baselined finding.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

#: Default baseline filename, resolved against the repo root.
BASELINE_FILENAME = ".lint-baseline.json"


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Suppression keys from a baseline file (empty if it is missing)."""
    p = Path(path)
    if not p.is_file():
        return set()
    data = json.loads(p.read_text(encoding="utf-8"))
    suppressions = data.get("suppressions", [])
    keys: set[tuple[str, str, str]] = set()
    for entry in suppressions:
        keys.add((entry["rule"], entry["file"], entry["message"]))
    return keys


def save_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write a baseline suppressing every finding in ``findings``."""
    payload = {
        "version": 1,
        "suppressions": [
            {"rule": f.rule, "file": f.file, "message": f.message}
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, ensure_ascii=False) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (active, suppressed) against a baseline."""
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        if finding.baseline_key() in baseline:
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed
