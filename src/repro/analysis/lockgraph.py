"""Static lock-order graph extraction for the LEX-C rule family.

Two passes over the scanned files:

1. **Discovery** — find every lock *creation* site: ``threading.Lock()``
   / ``RLock()`` assignments (``self.attr = ...`` or module-level) and
   ``repro.locks.make_lock("name")`` / ``make_rlock("name")`` factory
   calls, whose string argument *is* the canonical name.  Raw creations
   resolve through the declarative spec
   (:mod:`repro.analysis.lockspec`); locks the spec does not know get a
   ``Class.attr`` fallback identity so LEX-C001 can demand they be
   ranked.

2. **Scan** — walk every function simulating the held-lock stack
   through ``with`` statements, recording each acquisition (with the
   locks held at that point), each call (with the held snapshot, for
   interprocedural propagation), thread creations, and
   ``os.register_at_fork`` / ``signal.signal`` registrations.

Call resolution is deliberately CHA-lite: ``self.m()`` binds within the
enclosing class (then same-file classes), bare names bind to same-file
or ``from``-imported functions, ``alias.f()`` follows import aliases,
and ``obj.m()`` unions over every scanned class defining ``m`` — capped
and stop-listed so ubiquitous method names cannot weld the graph into
one blob.  The closure of acquired locks per function is computed to a
fixpoint, then every (held, acquired) pair becomes an edge checked
against the sanctioned order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.base import AnalysisContext
from repro.analysis.lockspec import DEFAULT_SPEC, LockOrderSpec

#: Method names too generic to resolve through class-hierarchy analysis.
CHA_STOPLIST = frozenset(
    {
        "append", "add", "clear", "close", "copy", "decode", "encode",
        "extend", "fileno", "get", "info", "items", "join", "keys",
        "pop", "poll", "put", "read", "recv", "release", "acquire",
        "run", "send", "set", "sort", "split", "start", "stop",
        "strip", "unlink", "update", "values", "wait", "write",
    }
)

#: Give up on ``obj.m()`` when more classes than this define ``m``.
CHA_MAX_CANDIDATES = 4


@dataclass
class LockCreation:
    """One lock creation site."""

    lock: str  # canonical name
    file: str
    line: int
    cls: str | None  # owning class, None for module-level
    attr: str  # attribute / variable name
    factory_name: str | None  # make_lock("...") argument, if any


@dataclass
class Acquisition:
    """One lock acquisition with the locks already held at that point."""

    lock: str
    line: int
    held: tuple[str, ...]
    via: str  # "with" or "acquire"


@dataclass
class CallSite:
    """One call with the held snapshot, resolved to candidates later."""

    kind: str  # "self" | "name" | "attr"
    name: str  # method or function name
    line: int
    held: tuple[str, ...]


@dataclass
class Registration:
    """An ``os.register_at_fork`` or ``signal.signal`` registration."""

    kind: str  # "fork" or "signal"
    handler: str  # bare handler name as written
    file: str
    line: int
    when: str  # fork: hook kwarg; signal: signal expression text


@dataclass
class FunctionInfo:
    """Per-function facts extracted by the scan pass."""

    key: str  # "<file>::<qualname>"
    file: str
    qualname: str
    cls: str | None
    line: int
    acquires: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    thread_lines: list[int] = field(default_factory=list)
    unresolved: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class Edge:
    """``inner`` acquired while ``outer`` held, anchored to a site."""

    outer: str
    inner: str
    file: str
    line: int
    path: str  # human-readable provenance


def _is_lock_ctor(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``RLock()`` / bare ``Lock()`` call."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in ("Lock", "RLock")
    if isinstance(func, ast.Name):
        return func.id in ("Lock", "RLock")
    return False


def _factory_name(node: ast.AST) -> str | None:
    """The string argument of a ``make_lock``/``make_rlock`` call."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name not in ("make_lock", "make_rlock"):
        return None
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def _find_lock_value(node: ast.AST) -> tuple[ast.AST | None, str | None]:
    """Locate a lock creation inside an assignment RHS.

    Handles the direct form and the ``lock or threading.Lock()``
    default idiom.  Returns ``(creation_node, factory_name)``.
    """
    candidates = [node]
    if isinstance(node, ast.BoolOp):
        candidates = list(node.values)
    for cand in candidates:
        name = _factory_name(cand)
        if name is not None:
            return cand, name
        if _is_lock_ctor(cand):
            return cand, None
    return None, None


def _lockish(text: str) -> bool:
    return "lock" in text.lower()


class LockGraph:
    """Whole-program lock model over an :class:`AnalysisContext`."""

    def __init__(
        self,
        ctx: AnalysisContext,
        files: list[str] | None = None,
        spec: LockOrderSpec = DEFAULT_SPEC,
    ):
        self.ctx = ctx
        self.spec = spec
        self.files = [
            f
            for f in (files if files is not None else ctx.python_files())
            if f not in spec.excluded_files
        ]
        self.creations: list[LockCreation] = []
        self.functions: dict[str, FunctionInfo] = {}
        self.registrations: list[Registration] = []
        # Resolution tables built during discovery.
        self._class_locks: dict[tuple[str, str], str] = dict(
            spec.class_attrs
        )
        self._module_locks: dict[tuple[str, str], str] = dict(
            spec.module_vars
        )
        self._method_index: dict[str, list[str]] = {}
        self._module_funcs: dict[tuple[str, str], str] = {}
        self._imports: dict[str, dict[str, str]] = {}
        self._build()

    # ---------------------------------------------------------- passes

    def _build(self) -> None:
        trees: dict[str, ast.Module] = {}
        for file in self.files:
            try:
                trees[file] = self.ctx.tree(file)
            except (OSError, SyntaxError):
                continue
        for file, tree in trees.items():
            self._discover(file, tree)
        for file, tree in trees.items():
            self._scan(file, tree)

    # Pass 1: creations, function/method indexes, import aliases.

    def _discover(self, file: str, tree: ast.Module) -> None:
        imports: dict[str, str] = {}
        self._imports[file] = imports
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._module_funcs[(file, node.name)] = (
                    f"{file}::{node.name}"
                )
            elif isinstance(node, ast.Assign):
                self._discover_module_lock(file, node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        key = f"{file}::{node.name}.{item.name}"
                        self._method_index.setdefault(
                            item.name, []
                        ).append(key)
                        self._discover_attr_locks(file, node.name, item)

    def _discover_module_lock(self, file: str, node: ast.Assign) -> None:
        creation, factory = _find_lock_value(node.value)
        if creation is None:
            return
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            canonical = (
                factory
                or self._module_locks.get((file, target.id))
                or f"{file}:{target.id}"
            )
            self._module_locks[(file, target.id)] = canonical
            self.creations.append(
                LockCreation(
                    lock=canonical,
                    file=file,
                    line=node.lineno,
                    cls=None,
                    attr=target.id,
                    factory_name=factory,
                )
            )

    def _discover_attr_locks(
        self, file: str, cls: str, method: ast.AST
    ) -> None:
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            creation, factory = _find_lock_value(node.value)
            if creation is None:
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                canonical = (
                    factory
                    or self._class_locks.get((cls, target.attr))
                    or f"{cls}.{target.attr}"
                )
                self._class_locks[(cls, target.attr)] = canonical
                self.creations.append(
                    LockCreation(
                        lock=canonical,
                        file=file,
                        line=node.lineno,
                        cls=cls,
                        attr=target.attr,
                        factory_name=factory,
                    )
                )

    # Pass 2: per-function scan.

    def _scan(self, file: str, tree: ast.Module) -> None:
        module_regs = _Scanner(self, file, None, "<module>")
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(file, None, node.name, node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._scan_function(
                            file,
                            node.name,
                            f"{node.name}.{item.name}",
                            item,
                        )
            else:
                # Module-level statements can register fork/signal
                # hooks (repro.parallel.shm does).
                module_regs.visit(node)

    def _scan_function(
        self, file: str, cls: str | None, qualname: str, node: ast.AST
    ) -> None:
        info = FunctionInfo(
            key=f"{file}::{qualname}",
            file=file,
            qualname=qualname,
            cls=cls,
            line=node.lineno,
        )
        self.functions[info.key] = info
        scanner = _Scanner(self, file, cls, qualname, info)
        for stmt in node.body:
            scanner.visit(stmt)

    # ------------------------------------------------------ resolution

    def resolve_lock(
        self, expr: ast.AST, file: str, cls: str | None
    ) -> str | None:
        """Canonical lock name for a reference expression, if known."""
        if isinstance(expr, ast.Name):
            return self._module_locks.get((file, expr.id))
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and cls is not None
            ):
                hit = self._class_locks.get((cls, expr.attr))
                if hit is not None:
                    return hit
            if isinstance(base, ast.Name):
                # Imported module attribute: shm_mod._live_lock.
                module = self._imports.get(file, {}).get(base.id)
                if module is not None:
                    mod_file = self._module_file(module)
                    if mod_file is not None:
                        hit = self._module_locks.get((mod_file, expr.attr))
                        if hit is not None:
                            return hit
            return self.spec.attr_aliases.get(expr.attr)
        return None

    def _module_file(self, dotted: str) -> str | None:
        if not dotted.startswith("repro"):
            return None
        rel = "src/" + dotted.replace(".", "/")
        for candidate in (f"{rel}.py", f"{rel}/__init__.py"):
            if candidate in set(self.files):
                return candidate
        return None

    def resolve_call(self, site: CallSite, caller: FunctionInfo) -> list[str]:
        """Candidate function keys for one call site."""
        if site.kind == "self" and caller.cls is not None:
            key = f"{caller.file}::{caller.cls}.{site.name}"
            if key in self.functions:
                return [key]
            # Same-file classes approximate single-file inheritance.
            local = [
                k
                for k in self._method_index.get(site.name, ())
                if k.startswith(f"{caller.file}::")
            ]
            if local:
                return local
            return self._cha(site.name)
        if site.kind == "name":
            key = self._module_funcs.get((caller.file, site.name))
            if key is not None:
                return [key]
            imported = self._imports.get(caller.file, {}).get(site.name)
            if imported is not None and "." in imported:
                module, _, func = imported.rpartition(".")
                mod_file = self._module_file(module)
                if mod_file is not None:
                    key = self._module_funcs.get((mod_file, func))
                    if key is not None:
                        return [key]
            return []
        if site.kind == "attr":
            # alias.f() through an imported module, else CHA.
            module = None
            if "." in site.name:
                base, _, name = site.name.rpartition(".")
                module = self._imports.get(caller.file, {}).get(base)
                if module is not None:
                    mod_file = self._module_file(module)
                    if mod_file is None:
                        # A known external module (os.kill, np.sum):
                        # never fold it into class-hierarchy analysis.
                        return []
                    key = self._module_funcs.get((mod_file, name))
                    return [key] if key is not None else []
                return self._cha(name)
            return self._cha(site.name)
        return []

    def _cha(self, method: str) -> list[str]:
        if method.startswith("__") or method in CHA_STOPLIST:
            return []
        candidates = self._method_index.get(method, [])
        if 0 < len(candidates) <= CHA_MAX_CANDIDATES:
            return list(candidates)
        return []

    def resolve_handler(self, reg: Registration) -> list[str]:
        """Function keys a fork/signal handler name may refer to."""
        key = self._module_funcs.get((reg.file, reg.handler))
        if key is not None:
            return [key]
        imported = self._imports.get(reg.file, {}).get(reg.handler)
        if imported is not None and "." in imported:
            module, _, func = imported.rpartition(".")
            mod_file = self._module_file(module)
            if mod_file is not None:
                key = self._module_funcs.get((mod_file, func))
                if key is not None:
                    return [key]
        return []

    # ----------------------------------------------------- derivations

    def acquire_closure(self) -> dict[str, set[str]]:
        """Locks acquired by each function, directly or transitively."""
        closure: dict[str, set[str]] = {
            key: {a.lock for a in info.acquires}
            for key, info in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for key, info in self.functions.items():
                acc = closure[key]
                before = len(acc)
                for call in info.calls:
                    for callee in self.resolve_call(call, info):
                        acc |= closure.get(callee, set())
                if len(acc) != before:
                    changed = True
        return closure

    def edges(self) -> list[Edge]:
        """Every (held, acquired) pair, deduped on the lock-name pair."""
        closure = self.acquire_closure()
        seen: dict[tuple[str, str], Edge] = {}

        def record(
            outer: str, inner: str, file: str, line: int, path: str
        ) -> None:
            seen.setdefault(
                (outer, inner),
                Edge(outer=outer, inner=inner, file=file, line=line,
                     path=path),
            )

        for info in self.functions.values():
            for acq in info.acquires:
                if acq.lock in acq.held:
                    continue  # reentrant re-acquire orders nothing new
                for outer in acq.held:
                    record(
                        outer, acq.lock, info.file, acq.line,
                        f"{info.qualname} acquires directly",
                    )
            for call in info.calls:
                if not call.held:
                    continue
                for callee in self.resolve_call(call, info):
                    for inner in closure.get(callee, ()):
                        if inner in call.held:
                            continue  # reentrant through the callee
                        for outer in call.held:
                            callee_name = callee.split("::", 1)[1]
                            record(
                                outer, inner, info.file, call.line,
                                f"{info.qualname} -> {callee_name}",
                            )
        return sorted(
            seen.values(), key=lambda e: (e.file, e.line, e.outer, e.inner)
        )

    def reachable(self, roots: list[str]) -> set[str]:
        """Function keys reachable from ``roots`` via resolved calls."""
        out: set[str] = set()
        stack = [k for k in roots if k in self.functions]
        while stack:
            key = stack.pop()
            if key in out:
                continue
            out.add(key)
            info = self.functions[key]
            for call in info.calls:
                for callee in self.resolve_call(call, info):
                    if callee not in out:
                        stack.append(callee)
        return out


class _Scanner(ast.NodeVisitor):
    """Held-stack simulation over one function (or module) body."""

    def __init__(
        self,
        graph: LockGraph,
        file: str,
        cls: str | None,
        qualname: str,
        info: FunctionInfo | None = None,
    ):
        self.graph = graph
        self.file = file
        self.cls = cls
        self.qualname = qualname
        self.info = info
        self.held: list[str] = []

    # -- helpers

    def _resolve(self, expr: ast.AST) -> str | None:
        return self.graph.resolve_lock(expr, self.file, self.cls)

    def _expr_text(self, expr: ast.AST) -> str:
        try:
            return ast.unparse(expr)
        except Exception:  # pragma: no cover - defensive
            return "<expr>"

    def _record_acquire(self, lock: str, line: int, via: str) -> None:
        if self.info is not None:
            self.info.acquires.append(
                Acquisition(
                    lock=lock, line=line, held=tuple(self.held), via=via
                )
            )

    # -- structure

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            lock = self._resolve(item.context_expr)
            if lock is not None:
                self._record_acquire(lock, item.context_expr.lineno, "with")
                self.held.append(lock)
                pushed += 1
            else:
                if (
                    self.info is not None
                    and isinstance(
                        item.context_expr, (ast.Name, ast.Attribute)
                    )
                    and _lockish(self._expr_text(item.context_expr))
                ):
                    self.info.unresolved.append(
                        (
                            item.context_expr.lineno,
                            self._expr_text(item.context_expr),
                        )
                    )
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested(node)

    def _nested(self, node: ast.AST) -> None:
        # A nested def runs later, not under the current held set: scan
        # it as its own function, reachable by bare name.
        qual = f"{self.qualname}.<locals>.{node.name}"
        self.graph._module_funcs.setdefault(
            (self.file, node.name), f"{self.file}::{qual}"
        )
        self.graph._scan_function(self.file, self.cls, qual, node)

    # -- calls

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        handled = False
        if isinstance(func, ast.Attribute):
            if func.attr == "acquire":
                lock = self._resolve(func.value)
                if lock is not None:
                    self._record_acquire(lock, node.lineno, "acquire")
                    handled = True
                elif self.info is not None and _lockish(
                    self._expr_text(func.value)
                ):
                    self.info.unresolved.append(
                        (node.lineno, self._expr_text(func))
                    )
                    handled = True
            elif func.attr in ("Thread", "Timer"):
                if self.info is not None:
                    self.info.thread_lines.append(node.lineno)
                handled = True
            elif func.attr == "register_at_fork":
                self._registration("fork", node)
                handled = True
            elif func.attr == "signal" and isinstance(
                func.value, ast.Name
            ) and func.value.id == "signal":
                self._registration("signal", node)
                handled = True
            if not handled and self.info is not None:
                if isinstance(func.value, ast.Name):
                    if func.value.id == "self":
                        self.info.calls.append(
                            CallSite(
                                kind="self",
                                name=func.attr,
                                line=node.lineno,
                                held=tuple(self.held),
                            )
                        )
                    else:
                        self.info.calls.append(
                            CallSite(
                                kind="attr",
                                name=f"{func.value.id}.{func.attr}",
                                line=node.lineno,
                                held=tuple(self.held),
                            )
                        )
                else:
                    self.info.calls.append(
                        CallSite(
                            kind="attr",
                            name=func.attr,
                            line=node.lineno,
                            held=tuple(self.held),
                        )
                    )
        elif isinstance(func, ast.Name):
            if func.id == "Thread":
                if self.info is not None:
                    self.info.thread_lines.append(node.lineno)
            elif self.info is not None:
                self.info.calls.append(
                    CallSite(
                        kind="name",
                        name=func.id,
                        line=node.lineno,
                        held=tuple(self.held),
                    )
                )
        if isinstance(func, ast.Attribute):
            # A chained receiver can itself create something that must
            # be seen: ``threading.Thread(...).start()``.
            self.visit(func.value)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def _registration(self, kind: str, node: ast.Call) -> None:
        if kind == "fork":
            for kw in node.keywords:
                if kw.arg in (
                    "before", "after_in_parent", "after_in_child"
                ) and isinstance(kw.value, ast.Name):
                    self.graph.registrations.append(
                        Registration(
                            kind="fork",
                            handler=kw.value.id,
                            file=self.file,
                            line=node.lineno,
                            when=kw.arg,
                        )
                    )
        else:
            if len(node.args) == 2 and isinstance(node.args[1], ast.Name):
                self.graph.registrations.append(
                    Registration(
                        kind="signal",
                        handler=node.args[1].id,
                        file=self.file,
                        line=node.lineno,
                        when=self._expr_text(node.args[0]),
                    )
                )
