"""The finding model shared by every analyzer and reporter."""

from __future__ import annotations

from dataclasses import dataclass

#: Finding severities, most severe first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a ``file:line`` location.

    ``file`` is repository-relative (posix separators) whenever the
    offending file lives under the repo root, so findings are stable
    across checkouts — which is what lets the baseline file and CI
    artifact diffs work.
    """

    rule: str
    file: str
    line: int
    message: str
    severity: str = "error"
    #: True for analyzer *crashes* (the rule did not run to completion,
    #: so nothing was actually checked).  Internal findings are never
    #: baselined and drive the CLI's distinct exit code 2.
    internal: bool = False

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r} "
                f"(known: {', '.join(SEVERITIES)})"
            )

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.rule, self.message)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline suppression.

        Line numbers are deliberately excluded: a baselined finding must
        stay suppressed when unrelated edits shift it down the file.
        """
        return (self.rule, self.file, self.message)

    def to_dict(self) -> dict:
        doc = {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "message": self.message,
        }
        if self.internal:
            doc["internal"] = True
        return doc
