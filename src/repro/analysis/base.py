"""Rule base class and the shared analysis context.

A rule is a small object with a stable ``rule_id`` (``LEX-D001`` ...), a
human ``name`` (``ipa-literals``), and a ``run(ctx)`` method yielding
:class:`~repro.analysis.findings.Finding` objects.  Rules are
constructed with their *targets* (table specs, file lists, registries)
defaulting to the real repo artifacts, so tests can point the same rule
at fixture tables with seeded violations and assert it fires.

:class:`AnalysisContext` memoizes source text and parsed ASTs per file
and knows how to locate literals inside table assignments, so data rules
can report precise ``file:line`` anchors for dict/tuple entries.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterable
from pathlib import Path

from repro.analysis.findings import Finding


def detect_repo_root() -> Path:
    """The repository root: the ancestor of ``repro`` with pyproject.toml.

    Falls back to the current directory (useful when linting an sdist
    checkout whose package is installed elsewhere).
    """
    import repro

    package = Path(repro.__file__).resolve().parent
    for candidate in package.parents:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return Path.cwd()


class AnalysisContext:
    """Shared, cached view of the repository for one analysis run."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else detect_repo_root()
        self._sources: dict[Path, str] = {}
        self._trees: dict[Path, ast.Module] = {}

    # ------------------------------------------------------------ paths

    def resolve(self, path: str | Path) -> Path:
        p = Path(path)
        return p if p.is_absolute() else self.root / p

    def rel(self, path: str | Path) -> str:
        """Repo-relative posix path when possible, else the path as-is."""
        p = Path(path).resolve()
        try:
            return p.relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return p.as_posix()

    def python_files(self, subdir: str = "src/repro") -> list[str]:
        base = self.resolve(subdir)
        return sorted(
            self.rel(p) for p in base.rglob("*.py") if p.is_file()
        )

    # ----------------------------------------------------------- caches

    def source(self, path: str | Path) -> str:
        p = self.resolve(path).resolve()
        if p not in self._sources:
            self._sources[p] = p.read_text(encoding="utf-8")
        return self._sources[p]

    def tree(self, path: str | Path) -> ast.Module:
        p = self.resolve(path).resolve()
        if p not in self._trees:
            self._trees[p] = ast.parse(self.source(p), filename=str(p))
        return self._trees[p]

    # ------------------------------------------------- literal location

    def assignment(self, path: str | Path, attr: str) -> ast.AST | None:
        """The value expression assigned to module-level name ``attr``."""
        for node in self.tree(path).body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return node.value
        return None

    def literal(self, path: str | Path, attr: str):
        """Evaluate the literal assigned to module-level name ``attr``.

        Handles plain literals plus the ``frozenset({...})`` /
        ``tuple([...])`` constructor idiom.  Returns ``None`` when the
        name is missing or its value is not a literal.
        """
        try:
            value = self.assignment(path, attr)
        except (OSError, SyntaxError):
            return None
        if value is None:
            return None
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("frozenset", "set", "tuple", "list", "dict")
            and len(value.args) == 1
            and not value.keywords
        ):
            value = value.args[0]
        try:
            return ast.literal_eval(value)
        except (ValueError, SyntaxError):
            return None

    def assignment_line(self, path: str | Path, attr: str) -> int:
        """Line of the module-level assignment to ``attr`` (1 if absent)."""
        try:
            value = self.assignment(path, attr)
        except (OSError, SyntaxError):
            return 1
        return getattr(value, "lineno", 1)

    def literal_line(
        self, path: str | Path, attr: str, literal: str
    ) -> int:
        """Line of the string constant ``literal`` inside ``attr``'s value.

        Falls back to the assignment's first line, then to 1.
        """
        try:
            value = self.assignment(path, attr)
        except (OSError, SyntaxError):
            return 1
        if value is None:
            return 1
        for node in ast.walk(value):
            if isinstance(node, ast.Constant) and node.value == literal:
                return node.lineno
        return getattr(value, "lineno", 1)

    def tuple_lines(
        self, path: str | Path, attr: str
    ) -> list[tuple[tuple, int]]:
        """``(values, line)`` for each literal tuple inside ``attr``.

        Used to anchor findings about rule-table entries: the n-th tuple
        of the source literal corresponds to the n-th rule of the loaded
        table.
        """
        try:
            value = self.assignment(path, attr)
        except (OSError, SyntaxError):
            return []
        if value is None:
            return []
        out: list[tuple[tuple, int]] = []
        for element in getattr(value, "elts", []):
            if isinstance(element, ast.Tuple):
                try:
                    values = tuple(
                        ast.literal_eval(item) for item in element.elts
                    )
                except (ValueError, SyntaxError):
                    continue
                out.append((values, element.lineno))
        return out


class Rule(abc.ABC):
    """One analyzer: stable id, human name, severity, and a run method."""

    rule_id: str
    name: str
    description: str
    severity: str = "error"

    @abc.abstractmethod
    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        """Yield findings against the context's repository."""

    def finding(
        self,
        file: str,
        line: int,
        message: str,
        *,
        severity: str | None = None,
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            file=file,
            line=line,
            message=message,
            severity=severity or self.severity,
        )

    def matches(self, token: str) -> bool:
        """True if a ``--select``/``--ignore`` token names this rule."""
        return token in (self.rule_id, self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Rule {self.rule_id} ({self.name})>"
