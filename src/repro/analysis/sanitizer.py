"""Runtime lock-order sanitizer: tracked locks + a happens-before graph.

Opt-in via ``REPRO_LOCKSAN=1`` (see :mod:`repro.locks`): every lock the
factory hands out becomes a :class:`TrackedLock` / :class:`TrackedRLock`
that records per-thread acquisition stacks into a process-global
happens-before graph and raises on:

- **order inversion** — acquiring a lock that the sanctioned rank order
  (:mod:`repro.analysis.lockspec`) places *before* one already held; a
  pair of unranked locks is judged against the first-observed
  acquisition order instead, exactly like a classical lock-order
  watchdog;
- **non-owner release** — releasing a lock a different thread acquired;
- **hold-across-fork** — forking while the forking thread holds a
  tracked lock.  CPython swallows exceptions raised inside at-fork
  hooks, so this one is *deferred*: the offending hold is recorded in
  :func:`violations` (the tier-1 locksan gate in ``tests/conftest.py``
  fails the session on any leftover record) and the poisoned lock
  raises :class:`ForkSafetyViolation` at its release site in the
  parent, which is the nearest frame that can still surface it.

The sanitizer's own bookkeeping uses a raw ``threading.Lock`` — it is
the measuring instrument, excluded from the rules it implements
(``EXCLUDED_FILES`` in the spec).
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field

from repro.analysis.lockspec import DEFAULT_SPEC, LockOrderSpec


class LockSanitizerError(RuntimeError):
    """Base class for sanitizer verdicts."""


class LockOrderViolation(LockSanitizerError):
    """A lock was acquired against the sanctioned (or observed) order."""


class LockOwnershipViolation(LockSanitizerError):
    """A lock was released by a thread that does not own it."""


class ForkSafetyViolation(LockSanitizerError):
    """The process forked while this lock was held."""


# ------------------------------------------------------- global state

#: Raw lock guarding the edge graph and violation list (never tracked).
_state_lock = threading.Lock()
#: First-observed happens-before edges: outer name -> inner names.
_edges: dict[str, set[str]] = {}
#: Provenance of the first observation of each edge.
_edge_sites: dict[tuple[str, str], str] = {}
#: Deferred violations (hold-across-fork) awaiting collection.
_violations: list[str] = []

_local = threading.local()
_fork_hooks_installed = False


@dataclass
class _Held:
    """One live acquisition on some thread's stack."""

    name: str
    stack: str
    fork_poisoned: bool = field(default=False)


def _held_stack() -> list[_Held]:
    stack = getattr(_local, "held", None)
    if stack is None:
        stack = []
        _local.held = stack
    return stack


def _site(skip: int = 3, limit: int = 8) -> str:
    """Compact ``file:line in func`` acquisition stack (innermost last)."""
    frames = traceback.extract_stack()[: -skip or None]
    lines = [
        f"    {frame.filename}:{frame.lineno} in {frame.name}"
        for frame in frames[-limit:]
    ]
    return "\n".join(lines)


def _install_fork_hooks() -> None:
    global _fork_hooks_installed
    if _fork_hooks_installed:
        return
    _fork_hooks_installed = True
    os.register_at_fork(
        before=_before_fork, after_in_child=_after_fork_in_child
    )


def _before_fork() -> None:
    """Flag any lock the forking thread holds (deterministic check).

    Locks held by *other* threads at fork time are a latent hazard too,
    but flagging them would be racy and flaky; the forking thread's own
    holds are the deterministic, always-a-bug case.
    """
    held = _held_stack()
    if not held:
        return
    for entry in held:
        entry.fork_poisoned = True
        message = (
            f"fork while holding tracked lock '{entry.name}' "
            f"acquired at:\n{entry.stack}"
        )
        with _state_lock:
            _violations.append(message)


def _after_fork_in_child() -> None:
    """Reset per-thread and guard state inherited by the fork child."""
    global _state_lock
    _state_lock = threading.Lock()  # parent thread may have held it
    _local.held = []


def _path_exists(src: str, dst: str) -> bool:
    """True when the observed graph already orders ``src`` before ``dst``."""
    with _state_lock:
        stack = [src]
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(_edges.get(node, ()))
    return False


def _check_order(name: str, spec: LockOrderSpec) -> None:
    """Pre-acquire verdict for ``name`` on the current thread."""
    held = _held_stack()
    if not held:
        return
    if any(entry.name == name for entry in held):
        # Same-name nesting: reentrancy is handled by TrackedRLock's
        # depth counter before reaching here; distinct instances
        # sharing a name cannot be ordered by name, mirroring the
        # static rule.
        return
    acquiring_at = _site()
    for entry in held:
        if spec.allows(entry.name, name):
            continue
        outer_rank = spec.rank(entry.name)
        inner_rank = spec.rank(name)
        if outer_rank is not None and inner_rank is not None:
            raise LockOrderViolation(
                f"lock order inversion: acquiring '{name}' "
                f"(rank {inner_rank}) while holding '{entry.name}' "
                f"(rank {outer_rank}); the sanctioned order acquires "
                f"lower ranks first.\n"
                f"  '{entry.name}' acquired at:\n{entry.stack}\n"
                f"  '{name}' being acquired at:\n{acquiring_at}"
            )
        # Unranked pair: first observed order wins.
        if _path_exists(name, entry.name):
            first = _edge_sites.get((name, entry.name), "<unknown>")
            raise LockOrderViolation(
                f"lock order inversion: acquiring '{name}' while "
                f"holding '{entry.name}', but the opposite order was "
                f"observed earlier.\n"
                f"  earlier '{name}' -> '{entry.name}' at:\n{first}\n"
                f"  '{entry.name}' now held, acquired at:"
                f"\n{entry.stack}\n"
                f"  '{name}' being acquired at:\n{acquiring_at}"
            )
    with _state_lock:
        for entry in held:
            if name not in _edges.setdefault(entry.name, set()):
                _edges[entry.name].add(name)
                _edge_sites[(entry.name, name)] = acquiring_at


def _push(name: str) -> _Held:
    entry = _Held(name=name, stack=_site())
    _held_stack().append(entry)
    return entry


def _pop(entry: _Held) -> None:
    stack = _held_stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index] is entry:
            del stack[index]
            return


# ------------------------------------------------------ tracked locks


class TrackedLock:
    """A ``threading.Lock`` wrapper enforcing the sanctioned lock order."""

    _reentrant = False

    def __init__(self, name: str, spec: LockOrderSpec = DEFAULT_SPEC):
        self.name = name
        self._spec = spec
        self._inner = self._make_inner()
        self._owner: int | None = None
        self._entry: _Held | None = None
        _install_fork_hooks()

    def _make_inner(self):
        return threading.Lock()

    # -- lock protocol

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            # A non-blocking attempt cannot deadlock; only a blocking
            # acquire is judged (and recorded) against the order.
            _check_order(self.name, self._spec)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._entry = _push(self.name)
        return acquired

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise LockOwnershipViolation(
                f"thread {threading.get_ident()} releasing lock "
                f"'{self.name}' owned by thread {self._owner}"
            )
        entry = self._entry
        self._owner = None
        self._entry = None
        if entry is not None:
            _pop(entry)
        self._inner.release()
        if entry is not None and entry.fork_poisoned:
            raise ForkSafetyViolation(
                f"lock '{self.name}' was held across a fork; the "
                f"child inherited it locked with no owner thread.\n"
                f"  acquired at:\n{entry.stack}"
            )

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class TrackedRLock(TrackedLock):
    """A ``threading.RLock`` wrapper; only depth 0->1 is order-checked."""

    _reentrant = True

    def __init__(self, name: str, spec: LockOrderSpec = DEFAULT_SPEC):
        super().__init__(name, spec)
        self._depth = 0

    def _make_inner(self):
        return threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            self._inner.acquire(blocking, timeout)
            self._depth += 1
            return True
        if blocking:
            _check_order(self.name, self._spec)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = me
            self._depth = 1
            self._entry = _push(self.name)
        return acquired

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise LockOwnershipViolation(
                f"thread {threading.get_ident()} releasing lock "
                f"'{self.name}' owned by thread {self._owner}"
            )
        self._depth -= 1
        if self._depth > 0:
            self._inner.release()
            return
        entry = self._entry
        self._owner = None
        self._entry = None
        if entry is not None:
            _pop(entry)
        self._inner.release()
        if entry is not None and entry.fork_poisoned:
            raise ForkSafetyViolation(
                f"lock '{self.name}' was held across a fork; the "
                f"child inherited it locked with no owner thread.\n"
                f"  acquired at:\n{entry.stack}"
            )


# -------------------------------------------------------- public API


def held_locks() -> list[str]:
    """Names of tracked locks the current thread holds (outermost first)."""
    return [entry.name for entry in _held_stack()]


def violations() -> list[str]:
    """The deferred (fork) violations recorded so far."""
    with _state_lock:
        return list(_violations)


def take_violations() -> list[str]:
    """Pop and return the deferred violations (consumed by tests)."""
    with _state_lock:
        out = list(_violations)
        _violations.clear()
    return out


def reset() -> None:
    """Clear the edge graph and violations (test isolation helper).

    Only safe while no tracked lock is held anywhere in the process.
    """
    with _state_lock:
        _edges.clear()
        _edge_sites.clear()
        _violations.clear()
    _local.held = []


def observed_edges() -> dict[str, set[str]]:
    """A copy of the happens-before graph (diagnostics)."""
    with _state_lock:
        return {outer: set(inners) for outer, inners in _edges.items()}
