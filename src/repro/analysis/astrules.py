"""AST/drift analyzers: cross-layer name registries and lock discipline.

These rules keep names that live in *two places at once* from drifting
apart: the protocol op set vs the server dispatcher vs the client retry
whitelist vs the protocol docs; failpoint names at ``faults.fire`` call
sites vs the ``FAILPOINTS`` registry; ``repro.obs`` metric names vs the
naming convention; and the shared-state mutation sites of the threaded
classes vs their declared locks.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass

from repro.analysis.base import AnalysisContext, Rule
from repro.analysis.findings import Finding

# ------------------------------------------------------------ LEX-A001


class OpDrift(Rule):
    """Protocol ops, dispatchers, client retries and docs agree.

    Covers both dispatchers: the single-process server *and* the
    cluster router (which reimplements dispatch for fan-out) must each
    handle every declared op — a new op added to one but not the other
    would work single-process and 404 behind ``--cluster``.  The
    degradation field names (``protocol.DEGRADED_FIELDS``) are pinned
    the same way: each must appear as a literal in a producer (service
    or router) and in the protocol docs.
    """

    rule_id = "LEX-A001"
    name = "op-drift"
    description = (
        "protocol.OPS, the server and router dispatchers, the client "
        "retry whitelist, protocol.DEGRADED_FIELDS producers and "
        "DESIGN.md §7 must name the same operations and fields"
    )

    #: Names in protocol.py whose string values form DEGRADED_FIELDS.
    DEGRADED_FIELD_CONSTANTS = (
        "F_DEGRADED",
        "F_FAILED_LANGUAGES",
        "F_FAILED_SHARDS",
    )

    def __init__(
        self,
        protocol_file: str = "src/repro/server/protocol.py",
        server_file: str = "src/repro/server/app.py",
        router_file: str = "src/repro/cluster/router.py",
        client_file: str = "src/repro/server/client.py",
        service_file: str = "src/repro/server/service.py",
        design_file: str = "DESIGN.md",
        design_section: str = "## 7.",
    ):
        self.protocol_file = protocol_file
        self.server_file = server_file
        self.router_file = router_file
        self.client_file = client_file
        self.service_file = service_file
        self.design_file = design_file
        self.design_section = design_section

    @staticmethod
    def _dispatched(
        ctx: AnalysisContext, file: str
    ) -> dict[str, int] | None:
        """Op literal -> line of its ``op == "..."`` comparison."""
        try:
            tree = ctx.tree(file)
        except (OSError, SyntaxError):
            return None
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "_dispatch"
            ):
                ops: dict[str, int] = {}
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Compare)
                        and isinstance(sub.left, ast.Name)
                        and sub.left.id == "op"
                        and len(sub.ops) == 1
                        and isinstance(sub.ops[0], ast.Eq)
                        and isinstance(sub.comparators[0], ast.Constant)
                        and isinstance(sub.comparators[0].value, str)
                    ):
                        ops.setdefault(
                            sub.comparators[0].value, sub.lineno
                        )
                return ops
        return None

    def _design_section_text(
        self, ctx: AnalysisContext
    ) -> tuple[str, int] | None:
        try:
            text = ctx.source(self.design_file)
        except OSError:
            return None
        lines = text.splitlines()
        start = None
        for i, line in enumerate(lines):
            if start is None:
                if line.startswith(self.design_section):
                    start = i
            elif line.startswith("## "):
                return "\n".join(lines[start:i]), start + 1
        if start is None:
            return None
        return "\n".join(lines[start:]), start + 1

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        declared = ctx.literal(self.protocol_file, "OPS")
        if declared is None:
            yield self.finding(
                self.protocol_file, 1, "protocol.OPS not found"
            )
            return
        declared = tuple(declared)
        ops_line = ctx.assignment_line(self.protocol_file, "OPS")

        dispatched = self._dispatched(ctx, self.server_file)
        if dispatched is None:
            yield self.finding(
                self.server_file, 1, "_dispatch method not found"
            )
            return

        retryable = ctx.literal(self.client_file, "RETRYABLE_OPS")
        if retryable is None:
            yield self.finding(
                self.client_file, 1, "client RETRYABLE_OPS not found"
            )
            return
        retry_line = ctx.assignment_line(self.client_file, "RETRYABLE_OPS")

        for op in sorted(set(retryable) - set(dispatched)):
            yield self.finding(
                self.client_file,
                retry_line,
                f"RETRYABLE_OPS contains {op!r}, which the server "
                "dispatcher never handles",
            )
        for op in sorted(set(dispatched) - set(declared)):
            yield self.finding(
                self.server_file,
                dispatched[op],
                f"server dispatches op {op!r} that is not declared in "
                "protocol.OPS",
            )
        for op in sorted(set(declared) - set(dispatched)):
            yield self.finding(
                self.protocol_file,
                ops_line,
                f"protocol.OPS declares {op!r}, which the server "
                "dispatcher never handles",
            )

        routed = self._dispatched(ctx, self.router_file)
        if routed is None:
            yield self.finding(
                self.router_file, 1, "router _dispatch method not found"
            )
        else:
            for op in sorted(set(routed) - set(declared)):
                yield self.finding(
                    self.router_file,
                    routed[op],
                    f"cluster router dispatches op {op!r} that is not "
                    "declared in protocol.OPS",
                )
            for op in sorted(set(declared) - set(routed)):
                yield self.finding(
                    self.protocol_file,
                    ops_line,
                    f"protocol.OPS declares {op!r}, which the cluster "
                    "router never handles (works single-process, fails "
                    "behind --cluster)",
                )

        yield from self._check_degraded_fields(ctx)

        section = self._design_section_text(ctx)
        if section is None:
            yield self.finding(
                self.design_file,
                1,
                f"section {self.design_section!r} not found — protocol "
                "ops are undocumented",
            )
            return
        text, heading_line = section
        for op in declared:
            if f"`{op}`" not in text:
                yield self.finding(
                    self.design_file,
                    heading_line,
                    f"op {op!r} is not documented in the protocol "
                    "section",
                )

    def _check_degraded_fields(
        self, ctx: AnalysisContext
    ) -> Iterable[Finding]:
        """Degradation field names agree across protocol, producers, docs.

        Each ``F_*`` constant's value must be written as a quoted
        literal by at least one producer (the service marks
        ``degraded``/``failed_languages``; the router marks
        ``failed_shards``) and documented in DESIGN.md §7 — renaming
        one side silently breaks clients keying on the old field.
        """
        producers = (self.service_file, self.router_file)
        sources: dict[str, str] = {}
        for file in producers:
            try:
                sources[file] = ctx.source(file)
            except OSError:
                yield self.finding(
                    file, 1, "degradation producer file missing"
                )
        section = self._design_section_text(ctx)
        for constant in self.DEGRADED_FIELD_CONSTANTS:
            value = ctx.literal(self.protocol_file, constant)
            line = ctx.assignment_line(self.protocol_file, constant)
            if not isinstance(value, str):
                yield self.finding(
                    self.protocol_file,
                    1,
                    f"protocol.{constant} not found (degradation field "
                    "registry is stale)",
                )
                continue
            quoted = f'"{value}"'
            if not any(quoted in src for src in sources.values()):
                yield self.finding(
                    self.protocol_file,
                    line,
                    f"degradation field {value!r} ({constant}) is never "
                    "produced by the service or the cluster router",
                )
            if section is not None and f"`{value}`" not in section[0]:
                yield self.finding(
                    self.design_file,
                    section[1],
                    f"degradation field {value!r} is not documented in "
                    "the protocol section",
                )


# ------------------------------------------------------------ LEX-A002


class FailpointDrift(Rule):
    """``faults.fire`` call sites and ``FAILPOINTS`` agree both ways."""

    rule_id = "LEX-A002"
    name = "failpoint-drift"
    description = (
        "every failpoint name fired in the library is registered in "
        "faults.FAILPOINTS, and every registered name has a fire site"
    )

    def __init__(
        self,
        faults_file: str = "src/repro/faults.py",
        subdir: str = "src/repro",
    ):
        self.faults_file = faults_file
        self.subdir = subdir

    def _fire_sites(
        self, ctx: AnalysisContext
    ) -> list[tuple[str, str, int]]:
        sites: list[tuple[str, str, int]] = []
        faults_rel = ctx.rel(self.faults_file)
        for file in ctx.python_files(self.subdir):
            if file == faults_rel:
                continue  # the registry's own fire() implementation
            try:
                tree = ctx.tree(file)
            except (OSError, SyntaxError):
                continue
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fire"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "faults"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    sites.append((node.args[0].value, file, node.lineno))
        return sites

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        registered = ctx.literal(self.faults_file, "FAILPOINTS")
        if registered is None:
            yield self.finding(
                self.faults_file, 1, "faults.FAILPOINTS not found"
            )
            return
        registered = frozenset(registered)
        sites = self._fire_sites(ctx)
        used = set()
        for name, file, line in sites:
            used.add(name)
            if name not in registered:
                yield self.finding(
                    file,
                    line,
                    f"failpoint {name!r} is fired here but not "
                    "registered in faults.FAILPOINTS",
                )
        anchor = ctx.assignment_line(self.faults_file, "FAILPOINTS")
        for name in sorted(registered - used):
            yield self.finding(
                self.faults_file,
                anchor,
                f"FAILPOINTS registers {name!r}, but no "
                "faults.fire(...) site uses it",
            )


# ------------------------------------------------------------ LEX-A003

#: Leading metric-name segments in use; a new subsystem adds its domain
#: here (and to DESIGN.md §6) before shipping counters.
METRIC_DOMAINS = frozenset(
    {
        "accelerator",
        "ann",
        "btree",
        "client",
        "cluster",
        "faults",
        "filters",
        "matching",
        "minidb",
        "parallel",
        "server",
        "storage",
        "strategy",
        "ttp",
        "udf",
    }
)

#: ``repro.obs`` calls whose first argument is a metric name.
_OBS_CALLS = frozenset(
    {"incr", "observe", "counter", "timer", "histogram", "timed"}
)

_SEGMENT_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_*")


def _normalize_metric(name: str) -> str:
    """Collapse cosmetic variation so near-duplicates collide.

    Per segment: drop underscores and one trailing plural ``s``.
    ``server.request`` and ``server.requests`` normalize identically —
    two counters that differ only that way are almost certainly one
    counter drifting apart.
    """
    out = []
    for segment in name.split("."):
        if "*" in segment:
            out.append(segment)
            continue
        segment = segment.replace("_", "")
        if segment.endswith("s"):
            segment = segment[:-1]
        out.append(segment)
    return ".".join(out)


class MetricNames(Rule):
    """Metric names follow the convention and do not nearly collide."""

    rule_id = "LEX-A003"
    name = "metric-names"
    description = (
        "obs metric names are dotted lowercase segments under a known "
        "domain, with no near-duplicate spellings"
    )

    def __init__(
        self,
        subdir: str = "src/repro",
        domains: frozenset[str] = METRIC_DOMAINS,
    ):
        self.subdir = subdir
        self.domains = domains

    def _metric_calls(
        self, ctx: AnalysisContext
    ) -> list[tuple[str, str, int]]:
        calls: list[tuple[str, str, int]] = []
        for file in ctx.python_files(self.subdir):
            try:
                tree = ctx.tree(file)
            except (OSError, SyntaxError):
                continue
            for node in ast.walk(tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _OBS_CALLS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "obs"
                    and node.args
                ):
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    calls.append((arg.value, file, node.lineno))
                elif isinstance(arg, ast.JoinedStr):
                    parts = []
                    for piece in arg.values:
                        if isinstance(piece, ast.Constant):
                            parts.append(str(piece.value))
                        else:
                            parts.append("*")  # runtime-formatted hole
                    calls.append(("".join(parts), file, node.lineno))
        return calls

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        calls = self._metric_calls(ctx)
        by_norm: dict[str, dict[str, tuple[str, int]]] = {}
        for name, file, line in calls:
            segments = name.split(".")
            if any(not s for s in segments):
                yield self.finding(
                    file, line, f"metric {name!r} has an empty segment"
                )
                continue
            bad = [
                s
                for s in segments
                if not set(s) <= _SEGMENT_OK
            ]
            if bad:
                yield self.finding(
                    file,
                    line,
                    f"metric {name!r}: segment(s) "
                    f"{', '.join(repr(s) for s in bad)} not lowercase "
                    "[a-z0-9_]",
                )
                continue
            domain = segments[0]
            if "*" not in domain and domain not in self.domains:
                yield self.finding(
                    file,
                    line,
                    f"metric {name!r}: unknown domain {domain!r} "
                    f"(known: {', '.join(sorted(self.domains))})",
                )
                continue
            by_norm.setdefault(_normalize_metric(name), {}).setdefault(
                name, (file, line)
            )
        for variants in by_norm.values():
            if len(variants) < 2:
                continue
            names = sorted(variants)
            canonical = names[0]
            for other in names[1:]:
                file, line = variants[other]
                yield self.finding(
                    file,
                    line,
                    f"metric {other!r} nearly duplicates {canonical!r} "
                    f"(declared at "
                    f"{variants[canonical][0]}:{variants[canonical][1]})",
                )


# ------------------------------------------------------------ LEX-A004


@dataclass(frozen=True)
class LockSpec:
    """One threaded class: its lock attribute and the state it guards."""

    file: str
    cls: str
    lock: str
    guarded: tuple[str, ...]


#: The shared-state registry of the serving stack.  ``WorkerPool`` is
#: deliberately absent: its coordination is loop-confined by design.
DEFAULT_LOCKS: tuple[LockSpec, ...] = (
    LockSpec(
        "src/repro/server/cache.py",
        "StatementCache",
        "_lock",
        ("_entries", "_hits", "_misses", "_evictions"),
    ),
    LockSpec(
        "src/repro/ttp/registry.py",
        "TTPRegistry",
        "_lock",
        ("_converters", "_cache"),
    ),
    LockSpec(
        "src/repro/minidb/catalog.py",
        "Database",
        "_write_lock",
        (
            "_tables",
            "_indexes",
            "_indexes_by_table",
            "_udfs",
            "_observers",
            "_accelerators",
        ),
    ),
    LockSpec(
        "src/repro/minidb/table.py",
        "HeapTable",
        "_write_lock",
        ("_rows", "_live_count"),
    ),
    LockSpec(
        "src/repro/faults.py",
        "FaultRegistry",
        "_lock",
        ("_points",),
    ),
)

#: Method names that mutate their receiver in place.
MUTATORS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


def _self_attr(node: ast.AST) -> str | None:
    """The ``self.<attr>`` an expression ultimately reaches, if any.

    Unwraps subscripts, calls and attribute chains, so mutations like
    ``self._observers.setdefault(k, []).append(x)`` and
    ``self._rows[rowid] = row`` resolve to the guarded attribute.
    """
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return node.attr
            node = node.value
        else:
            return None


class LockDiscipline(Rule):
    """Shared state is mutated only under its declared lock."""

    rule_id = "LEX-A004"
    name = "lock-discipline"
    description = (
        "threaded classes mutate their guarded attributes only inside "
        "`with self.<lock>:` blocks"
    )

    def __init__(self, locks: tuple[LockSpec, ...] = DEFAULT_LOCKS):
        self.locks = locks

    def _check_class(
        self, spec: LockSpec, class_node: ast.ClassDef
    ) -> Iterable[Finding]:
        guarded = frozenset(spec.guarded)

        def mutations(node: ast.AST, locked: bool):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                holds = locked or any(
                    _self_attr(item.context_expr) == spec.lock
                    for item in node.items
                )
                for child in node.body:
                    yield from mutations(child, holds)
                return
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                attr = _self_attr(target)
                if attr in guarded and not locked:
                    yield (attr, node.lineno, "assigned")
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATORS
            ):
                attr = _self_attr(node.func.value)
                if attr in guarded and not locked:
                    yield (
                        attr,
                        node.lineno,
                        f"mutated via .{node.func.attr}()",
                    )
            for child in ast.iter_child_nodes(node):
                yield from mutations(child, locked)

        for item in class_node.body:
            if not isinstance(
                item, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if item.name == "__init__":
                continue  # construction happens-before sharing
            for attr, line, how in mutations(item, False):
                yield self.finding(
                    spec.file,
                    line,
                    f"{spec.cls}.{item.name}: self.{attr} {how} "
                    f"outside `with self.{spec.lock}:`",
                )

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for spec in self.locks:
            try:
                tree = ctx.tree(spec.file)
            except (OSError, SyntaxError):
                yield self.finding(
                    spec.file, 1, f"cannot parse {spec.file}"
                )
                continue
            class_node = next(
                (
                    n
                    for n in tree.body
                    if isinstance(n, ast.ClassDef) and n.name == spec.cls
                ),
                None,
            )
            if class_node is None:
                yield self.finding(
                    spec.file,
                    1,
                    f"class {spec.cls} not found (lock registry is "
                    "stale)",
                )
                continue
            yield from self._check_class(spec, class_node)


# ------------------------------------------------------------ LEX-A005


class ManagedParallelism(Rule):
    """Process-level parallelism lives only inside ``repro.parallel``.

    The managed executor owns every hard part — shared-memory segment
    lifecycle, worker crash teardown, deadline cancellation, SIGTERM
    cleanup.  A stray ``multiprocessing.Pool`` elsewhere would re-grow
    the exact leak and orphan bugs the executor exists to prevent, so
    any direct import of ``multiprocessing``, call to ``os.fork``, or
    use of ``ProcessPoolExecutor`` outside the package is a finding.
    """

    rule_id = "LEX-A005"
    name = "managed-parallelism"
    description = (
        "multiprocessing / os.fork / ProcessPoolExecutor are used only "
        "inside repro.parallel; other code goes through the managed "
        "executor"
    )

    def __init__(
        self,
        subdir: str = "src/repro",
        allowed: tuple[str, ...] = ("src/repro/parallel",),
    ):
        self.subdir = subdir
        self.allowed = allowed

    def _allowed(self, file: str) -> bool:
        return any(
            file == prefix or file.startswith(prefix + "/")
            for prefix in self.allowed
        )

    def _violations(self, tree: ast.Module):
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "multiprocessing":
                        yield (
                            node.lineno,
                            f"direct import of {alias.name!r}",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] == "multiprocessing":
                    names = ", ".join(a.name for a in node.names)
                    yield (
                        node.lineno,
                        f"direct import from {module!r} ({names})",
                    )
                elif any(
                    a.name == "ProcessPoolExecutor" for a in node.names
                ):
                    yield (
                        node.lineno,
                        "direct import of ProcessPoolExecutor",
                    )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "ProcessPoolExecutor"
            ):
                yield (node.lineno, "use of ProcessPoolExecutor")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "fork"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "os"
            ):
                yield (node.lineno, "direct os.fork() call")

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for file in ctx.python_files(self.subdir):
            if self._allowed(file):
                continue
            try:
                tree = ctx.tree(file)
            except (OSError, SyntaxError):
                continue
            for line, what in self._violations(tree):
                yield self.finding(
                    file,
                    line,
                    f"{what} outside repro.parallel — spawn workers "
                    "through the managed ParallelMatchExecutor instead",
                )


# ------------------------------------------------------------ LEX-A006


class StorageBoundary(Rule):
    """Durable-format knowledge lives only inside ``repro.storage``.

    The storage subsystem owns the on-disk contract (DESIGN.md §10):
    artifact file names, WAL record framing, snapshot versioning, crash
    recovery.  Code elsewhere that hard-codes a catalog/index/WAL file
    name — or imports the path/framing internals — would let a second
    writer corrupt what recovery assumes only the WAL protocol touches,
    so both are findings (mirroring LEX-A005's managed-parallelism
    boundary).  Everything else goes through the ``StorageManager``
    interface (``repro.storage.manager``) or ``open_database``.
    """

    rule_id = "LEX-A006"
    name = "storage-boundary"
    description = (
        "catalog/index/WAL artifact names and storage internals "
        "(layout, wal) appear only inside repro.storage; other code "
        "uses the StorageManager interface"
    )

    #: Internal submodules whose import outside the package is a
    #: finding; ``manager`` (the interface) and ``snapshots`` (pure
    #: in-memory [de]serialization, used by accelerator restore) are
    #: deliberately not listed.
    INTERNAL_MODULES = ("layout", "wal")

    def __init__(
        self,
        subdir: str = "src/repro",
        allowed: tuple[str, ...] = ("src/repro/storage",),
    ):
        self.subdir = subdir
        self.allowed = allowed

    def _allowed(self, file: str) -> bool:
        return any(
            file == prefix or file.startswith(prefix + "/")
            for prefix in self.allowed
        )

    @staticmethod
    def _reserved() -> tuple[frozenset[str], tuple[str, ...]]:
        from repro.storage import layout

        return (
            frozenset(
                {
                    layout.MANIFEST_FILENAME,
                    layout.WAL_FILENAME,
                    layout.CHECKPOINT_FILENAME,
                    layout.STATS_FILENAME,
                }
            ),
            (layout.INDEX_SUFFIX, layout.ANN_INDEX_SUFFIX),
        )

    @staticmethod
    def _docstrings(tree: ast.Module) -> set[int]:
        """``id()`` of every docstring Constant (excluded from scan)."""
        out: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(
                node,
                (
                    ast.Module,
                    ast.ClassDef,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                ),
            ):
                body = node.body
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    out.add(id(body[0].value))
        return out

    def _violations(self, tree: ast.Module):
        names, suffixes = self._reserved()
        docstrings = self._docstrings(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                parts = module.split(".")
                if (
                    parts[:2] == ["repro", "storage"]
                    and len(parts) > 2
                    and parts[2] in self.INTERNAL_MODULES
                ):
                    yield (
                        node.lineno,
                        f"import of storage internal {module!r}",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if (
                        parts[:2] == ["repro", "storage"]
                        and len(parts) > 2
                        and parts[2] in self.INTERNAL_MODULES
                    ):
                        yield (
                            node.lineno,
                            f"import of storage internal {alias.name!r}",
                        )
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in docstrings
            ):
                # Basename comparison: "data/wal.log" is as much a
                # boundary breach as the bare file name.
                base = node.value.rsplit("/", 1)[-1]
                if base in names or any(
                    base.endswith(suffix) and base != suffix
                    for suffix in suffixes
                ):
                    yield (
                        node.lineno,
                        f"durable artifact name {node.value!r}",
                    )

    def run(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for file in ctx.python_files(self.subdir):
            if self._allowed(file):
                continue
            try:
                tree = ctx.tree(file)
            except (OSError, SyntaxError):
                continue
            for line, what in self._violations(tree):
                yield self.finding(
                    file,
                    line,
                    f"{what} outside repro.storage — go through the "
                    "StorageManager interface so durability invariants "
                    "stay in one subsystem",
                )
