"""``repro.analysis`` — domain-aware static analysis for the repo.

A pluggable lint pass over the things generic linters cannot check:
IPA literals in phonetic tables (LEX-D001), the cluster partition
(LEX-D002), cost-model metric axioms (LEX-D003), NRL rule reachability
(LEX-D004), script coverage (LEX-D005), protocol-op drift (LEX-A001),
failpoint drift (LEX-A002), metric-name convention (LEX-A003), and lock
discipline (LEX-A004).  Run it as ``python -m repro.cli lint``; CI runs
it with ``--format json`` and fails on non-baselined findings.  See
DESIGN.md §8.
"""

from repro.analysis.base import AnalysisContext, Rule, detect_repo_root
from repro.analysis.baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import (
    LintResult,
    LintUsageError,
    default_rules,
    lint,
    run_rules,
    select_rules,
)

__all__ = [
    "AnalysisContext",
    "BASELINE_FILENAME",
    "Finding",
    "LintResult",
    "LintUsageError",
    "Rule",
    "SEVERITIES",
    "apply_baseline",
    "default_rules",
    "detect_repo_root",
    "lint",
    "load_baseline",
    "render_json",
    "render_text",
    "run_rules",
    "save_baseline",
    "select_rules",
]
