"""Rule registry, selection, and the one-call lint entry point."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import AnalysisContext, Rule
from repro.analysis.baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    load_baseline,
)
from repro.analysis.findings import Finding


class LintUsageError(ValueError):
    """A ``--select``/``--ignore`` token names no known rule."""


def default_rules() -> list[Rule]:
    """One instance of every shipped analyzer, in rule-id order."""
    from repro.analysis.astrules import (
        FailpointDrift,
        LockDiscipline,
        ManagedParallelism,
        MetricNames,
        OpDrift,
        StorageBoundary,
    )
    from repro.analysis.concurrency import (
        AsyncBlocking,
        DeadlinePolls,
        ForkSignalSafety,
        LockOrder,
        ResourceLifecycle,
    )
    from repro.analysis.datarules import (
        ClusterPartition,
        IpaLiterals,
        MetricAxioms,
        ScriptCoverage,
        TtpShadowing,
    )

    return [
        IpaLiterals(),
        ClusterPartition(),
        MetricAxioms(),
        TtpShadowing(),
        ScriptCoverage(),
        OpDrift(),
        FailpointDrift(),
        MetricNames(),
        LockDiscipline(),
        ManagedParallelism(),
        StorageBoundary(),
        LockOrder(),
        AsyncBlocking(),
        ForkSignalSafety(),
        ResourceLifecycle(),
        DeadlinePolls(),
    ]


def select_rules(
    rules: list[Rule],
    select: tuple[str, ...] = (),
    ignore: tuple[str, ...] = (),
) -> list[Rule]:
    """Filter ``rules`` by id or name; unknown tokens are an error."""
    for token in (*select, *ignore):
        if not any(rule.matches(token) for rule in rules):
            known = ", ".join(
                f"{r.rule_id} ({r.name})" for r in rules
            )
            raise LintUsageError(
                f"unknown rule {token!r} (known: {known})"
            )
    if select:
        rules = [
            r for r in rules if any(r.matches(t) for t in select)
        ]
    return [
        r for r in rules if not any(r.matches(t) for t in ignore)
    ]


def run_rules(
    ctx: AnalysisContext, rules: list[Rule]
) -> list[Finding]:
    """Run every rule, converting analyzer crashes into findings.

    A crashed analyzer must fail the lint loudly rather than silently
    vouching for tables it never checked.
    """
    findings: list[Finding] = []
    for rule in rules:
        try:
            findings.extend(rule.run(ctx))
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            findings.append(
                Finding(
                    rule=rule.rule_id,
                    file="<analysis>",
                    line=0,
                    message=(
                        f"analyzer {rule.name} crashed: "
                        f"{type(exc).__name__}: {exc}"
                    ),
                    internal=True,
                )
            )
    return sorted(findings, key=Finding.sort_key)


@dataclass
class LintResult:
    """Outcome of one lint run, pre-split against the baseline."""

    findings: list[Finding]
    suppressed: list[Finding] = field(default_factory=list)
    rules: list[Rule] = field(default_factory=list)
    root: str = ""

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def internal_errors(self) -> list[Finding]:
        """Analyzer crashes: rules that did not run to completion.

        Distinct from real findings — a crashed analyzer vouches for
        nothing, so pipelines must treat it as infrastructure failure
        (exit code 2), not as a clean or merely-dirty run.
        """
        return [f for f in self.findings if f.internal]

    def rule_meta(self) -> list[dict]:
        return [
            {
                "id": r.rule_id,
                "name": r.name,
                "description": r.description,
            }
            for r in self.rules
        ]


def lint(
    root: str | Path | None = None,
    *,
    select: tuple[str, ...] = (),
    ignore: tuple[str, ...] = (),
    baseline_path: str | Path | None = None,
    rules: list[Rule] | None = None,
) -> LintResult:
    """Run the full analysis pass against a repository checkout.

    ``baseline_path`` defaults to ``<root>/.lint-baseline.json``; a
    missing baseline file suppresses nothing.
    """
    ctx = AnalysisContext(root)
    active_rules = select_rules(
        rules if rules is not None else default_rules(), select, ignore
    )
    findings = run_rules(ctx, active_rules)
    if baseline_path is None:
        baseline_path = ctx.root / BASELINE_FILENAME
    baseline = load_baseline(baseline_path)
    # Internal errors (analyzer crashes) can never be baselined away:
    # only completed-rule findings pass through suppression.
    internal = [f for f in findings if f.internal]
    active, suppressed = apply_baseline(
        [f for f in findings if not f.internal], baseline
    )
    active = sorted(active + internal, key=Finding.sort_key)
    return LintResult(
        findings=active,
        suppressed=suppressed,
        rules=active_rules,
        root=str(ctx.root),
    )
