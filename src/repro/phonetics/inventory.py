"""The IPA phoneme inventory used throughout the library.

Every phoneme that a :mod:`repro.ttp` converter may emit is described here
with its articulatory features.  The features drive two things:

* the phoneme-similarity measure (:mod:`repro.phonetics.features`), which
  in turn drives automatic phoneme clustering;
* sanity checking — :func:`repro.phonetics.parse.parse_ipa` rejects
  symbols that are not in the inventory, so a converter bug surfaces as a
  loud :class:`~repro.errors.PhonemeError` instead of silently degrading
  match quality.

The inventory intentionally covers the union of the phoneme sets of the
languages the paper exercises (English, Hindi, Tamil, Greek, plus the
French/Spanish examples): stops with the Indic aspiration contrast,
retroflexes, the English interdental fricatives, front rounded vowels for
French, and so on.  Length (``ː``) and nasalization (combining tilde) are
treated as modifiers by the parser and map onto the ``long`` and ``nasal``
flags of the base phoneme.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import PhonemeError


class PhonemeClass(enum.Enum):
    """Top-level split of the inventory."""

    CONSONANT = "consonant"
    VOWEL = "vowel"


class Place(enum.Enum):
    """Place of articulation for consonants."""

    BILABIAL = "bilabial"
    LABIODENTAL = "labiodental"
    DENTAL = "dental"
    ALVEOLAR = "alveolar"
    POSTALVEOLAR = "postalveolar"
    RETROFLEX = "retroflex"
    PALATAL = "palatal"
    VELAR = "velar"
    UVULAR = "uvular"
    GLOTTAL = "glottal"


class Manner(enum.Enum):
    """Manner of articulation for consonants."""

    PLOSIVE = "plosive"
    NASAL = "nasal"
    TRILL = "trill"
    TAP = "tap"
    FRICATIVE = "fricative"
    AFFRICATE = "affricate"
    APPROXIMANT = "approximant"
    LATERAL = "lateral"


class Height(enum.Enum):
    """Vowel height, ordered from close (high) to open (low)."""

    CLOSE = 0
    NEAR_CLOSE = 1
    CLOSE_MID = 2
    MID = 3
    OPEN_MID = 4
    NEAR_OPEN = 5
    OPEN = 6


class Backness(enum.Enum):
    """Vowel backness, ordered front to back."""

    FRONT = 0
    CENTRAL = 1
    BACK = 2


@dataclass(frozen=True)
class Phoneme:
    """A single phoneme with its articulatory feature bundle.

    ``symbol`` is the canonical IPA spelling, possibly multi-character
    (affricates such as ``tʃ``, aspirates such as ``kʰ``, long vowels such
    as ``aː``).  Instances are immutable and interned in :data:`INVENTORY`.
    """

    symbol: str
    klass: PhonemeClass
    # Consonant features (None for vowels)
    place: Place | None = None
    manner: Manner | None = None
    voiced: bool = False
    aspirated: bool = False
    # Vowel features (None for consonants)
    height: Height | None = None
    backness: Backness | None = None
    rounded: bool = False
    # Shared modifiers
    long: bool = False
    nasal: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.klass is PhonemeClass.CONSONANT:
            if self.place is None or self.manner is None:
                raise PhonemeError(
                    f"consonant {self.symbol!r} must define place and manner"
                )
        else:
            if self.height is None or self.backness is None:
                raise PhonemeError(
                    f"vowel {self.symbol!r} must define height and backness"
                )

    @property
    def is_vowel(self) -> bool:
        return self.klass is PhonemeClass.VOWEL

    @property
    def is_consonant(self) -> bool:
        return self.klass is PhonemeClass.CONSONANT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.symbol


def _c(
    symbol: str,
    place: Place,
    manner: Manner,
    *,
    voiced: bool = False,
    aspirated: bool = False,
    nasal: bool = False,
) -> Phoneme:
    return Phoneme(
        symbol=symbol,
        klass=PhonemeClass.CONSONANT,
        place=place,
        manner=manner,
        voiced=voiced,
        aspirated=aspirated,
        nasal=nasal,
    )


def _v(
    symbol: str,
    height: Height,
    backness: Backness,
    *,
    rounded: bool = False,
    long: bool = False,
) -> Phoneme:
    return Phoneme(
        symbol=symbol,
        klass=PhonemeClass.VOWEL,
        height=height,
        backness=backness,
        rounded=rounded,
        long=long,
    )


P = Place
M = Manner
H = Height
B = Backness

_BASE_PHONEMES: list[Phoneme] = [
    # --- Plosives -------------------------------------------------------
    _c("p", P.BILABIAL, M.PLOSIVE),
    _c("b", P.BILABIAL, M.PLOSIVE, voiced=True),
    _c("t", P.ALVEOLAR, M.PLOSIVE),
    _c("d", P.ALVEOLAR, M.PLOSIVE, voiced=True),
    _c("t̪", P.DENTAL, M.PLOSIVE),
    _c("d̪", P.DENTAL, M.PLOSIVE, voiced=True),
    _c("ʈ", P.RETROFLEX, M.PLOSIVE),
    _c("ɖ", P.RETROFLEX, M.PLOSIVE, voiced=True),
    _c("c", P.PALATAL, M.PLOSIVE),
    _c("ɟ", P.PALATAL, M.PLOSIVE, voiced=True),
    _c("k", P.VELAR, M.PLOSIVE),
    _c("g", P.VELAR, M.PLOSIVE, voiced=True),
    _c("q", P.UVULAR, M.PLOSIVE),
    _c("ʔ", P.GLOTTAL, M.PLOSIVE),
    # --- Nasals ---------------------------------------------------------
    _c("m", P.BILABIAL, M.NASAL, voiced=True, nasal=True),
    _c("n", P.ALVEOLAR, M.NASAL, voiced=True, nasal=True),
    _c("n̪", P.DENTAL, M.NASAL, voiced=True, nasal=True),
    _c("ɳ", P.RETROFLEX, M.NASAL, voiced=True, nasal=True),
    _c("ɲ", P.PALATAL, M.NASAL, voiced=True, nasal=True),
    _c("ŋ", P.VELAR, M.NASAL, voiced=True, nasal=True),
    # --- Trills, taps ---------------------------------------------------
    _c("r", P.ALVEOLAR, M.TRILL, voiced=True),
    _c("ɾ", P.ALVEOLAR, M.TAP, voiced=True),
    _c("ɽ", P.RETROFLEX, M.TAP, voiced=True),
    # --- Fricatives -----------------------------------------------------
    _c("ɸ", P.BILABIAL, M.FRICATIVE),
    _c("β", P.BILABIAL, M.FRICATIVE, voiced=True),
    _c("f", P.LABIODENTAL, M.FRICATIVE),
    _c("v", P.LABIODENTAL, M.FRICATIVE, voiced=True),
    _c("θ", P.DENTAL, M.FRICATIVE),
    _c("ð", P.DENTAL, M.FRICATIVE, voiced=True),
    _c("s", P.ALVEOLAR, M.FRICATIVE),
    _c("z", P.ALVEOLAR, M.FRICATIVE, voiced=True),
    _c("ʃ", P.POSTALVEOLAR, M.FRICATIVE),
    _c("ʒ", P.POSTALVEOLAR, M.FRICATIVE, voiced=True),
    _c("ʂ", P.RETROFLEX, M.FRICATIVE),
    _c("ʐ", P.RETROFLEX, M.FRICATIVE, voiced=True),
    _c("ç", P.PALATAL, M.FRICATIVE),
    _c("x", P.VELAR, M.FRICATIVE),
    _c("ɣ", P.VELAR, M.FRICATIVE, voiced=True),
    _c("h", P.GLOTTAL, M.FRICATIVE),
    _c("ɦ", P.GLOTTAL, M.FRICATIVE, voiced=True),
    # --- Affricates (single phonemes, multi-character symbols) ----------
    _c("ts", P.ALVEOLAR, M.AFFRICATE),
    _c("dz", P.ALVEOLAR, M.AFFRICATE, voiced=True),
    _c("tʃ", P.POSTALVEOLAR, M.AFFRICATE),
    _c("dʒ", P.POSTALVEOLAR, M.AFFRICATE, voiced=True),
    # --- Approximants and laterals --------------------------------------
    _c("ʋ", P.LABIODENTAL, M.APPROXIMANT, voiced=True),
    _c("ɹ", P.ALVEOLAR, M.APPROXIMANT, voiced=True),
    _c("ɻ", P.RETROFLEX, M.APPROXIMANT, voiced=True),
    _c("j", P.PALATAL, M.APPROXIMANT, voiced=True),
    _c("w", P.VELAR, M.APPROXIMANT, voiced=True),
    _c("l", P.ALVEOLAR, M.LATERAL, voiced=True),
    _c("ɭ", P.RETROFLEX, M.LATERAL, voiced=True),
    _c("ɫ", P.VELAR, M.LATERAL, voiced=True),
    _c("ʎ", P.PALATAL, M.LATERAL, voiced=True),
    # --- Vowels ----------------------------------------------------------
    _v("i", H.CLOSE, B.FRONT),
    _v("ɪ", H.NEAR_CLOSE, B.FRONT),
    _v("y", H.CLOSE, B.FRONT, rounded=True),
    _v("e", H.CLOSE_MID, B.FRONT),
    _v("ø", H.CLOSE_MID, B.FRONT, rounded=True),
    _v("ɛ", H.OPEN_MID, B.FRONT),
    _v("œ", H.OPEN_MID, B.FRONT, rounded=True),
    _v("æ", H.NEAR_OPEN, B.FRONT),
    _v("a", H.OPEN, B.FRONT),
    _v("ə", H.MID, B.CENTRAL),
    _v("ɜ", H.OPEN_MID, B.CENTRAL),
    _v("ɐ", H.NEAR_OPEN, B.CENTRAL),
    _v("ʌ", H.OPEN_MID, B.BACK),
    _v("ɑ", H.OPEN, B.BACK),
    _v("ɒ", H.OPEN, B.BACK, rounded=True),
    _v("ɔ", H.OPEN_MID, B.BACK, rounded=True),
    _v("o", H.CLOSE_MID, B.BACK, rounded=True),
    _v("ʊ", H.NEAR_CLOSE, B.BACK, rounded=True),
    _v("u", H.CLOSE, B.BACK, rounded=True),
    _v("ɯ", H.CLOSE, B.BACK),
]

# Consonants that take the Indic aspiration/breathy-voice contrast.  The
# aspirated variants get their own inventory entries: ``kʰ``, ``bʱ``, ...
_ASPIRATABLE = [
    "p", "b", "t", "d", "t̪", "d̪", "ʈ", "ɖ", "k", "g", "tʃ", "dʒ", "ɽ",
]

#: Suffix used for voiceless aspiration.
ASPIRATION_MARK = "ʰ"
#: Suffix used for voiced (breathy) aspiration.
BREATHY_MARK = "ʱ"
#: Vowel length mark.
LENGTH_MARK = "ː"
#: Combining tilde marking a nasalized vowel.
NASAL_MARK = "̃"


def _build_inventory() -> dict[str, Phoneme]:
    inv: dict[str, Phoneme] = {}
    for ph in _BASE_PHONEMES:
        if ph.symbol in inv:
            raise PhonemeError(f"duplicate phoneme symbol {ph.symbol!r}")
        inv[ph.symbol] = ph
    for sym in _ASPIRATABLE:
        base = inv[sym]
        mark = BREATHY_MARK if base.voiced else ASPIRATION_MARK
        aspirated = replace(base, symbol=sym + mark, aspirated=True)
        inv[aspirated.symbol] = aspirated
    # Long vowels: every short vowel has a long counterpart (symbol + ː).
    for ph in list(inv.values()):
        if ph.is_vowel:
            long_ph = replace(ph, symbol=ph.symbol + LENGTH_MARK, long=True)
            inv[long_ph.symbol] = long_ph
    # Nasalized vowels: every vowel (short or long) has a nasal variant.
    for ph in list(inv.values()):
        if ph.is_vowel:
            nasal_ph = replace(ph, symbol=ph.symbol + NASAL_MARK, nasal=True)
            inv[nasal_ph.symbol] = nasal_ph
    return inv


#: Symbol -> Phoneme for every phoneme the library knows about.
INVENTORY: dict[str, Phoneme] = _build_inventory()

#: All inventory symbols, longest first (the parser matches greedily).
SYMBOLS_BY_LENGTH: tuple[str, ...] = tuple(
    sorted(INVENTORY, key=lambda s: (-len(s), s))
)


def get_phoneme(symbol: str) -> Phoneme:
    """Return the :class:`Phoneme` for ``symbol``.

    Accepts NFC-precomposed spellings of nasal vowels (``ã``) as well as
    the canonical decomposed form.  Raises
    :class:`~repro.errors.PhonemeError` for unknown symbols.
    """
    try:
        return INVENTORY[symbol]
    except KeyError:
        pass
    import unicodedata

    decomposed = unicodedata.normalize("NFD", symbol)
    try:
        return INVENTORY[decomposed]
    except KeyError:
        raise PhonemeError(f"unknown phoneme symbol {symbol!r}") from None


def is_known_symbol(symbol: str) -> bool:
    """True if ``symbol`` is a phoneme in the inventory."""
    return symbol in INVENTORY


def base_symbol(symbol: str) -> str:
    """Strip length/nasal/aspiration modifiers off an inventory symbol.

    ``base_symbol("aː̃") == "a"``; ``base_symbol("kʰ") == "k"``.  The input
    must itself be an inventory symbol.
    """
    import unicodedata

    ph = get_phoneme(symbol)
    stripped = unicodedata.normalize("NFD", symbol)
    for mark in (NASAL_MARK, LENGTH_MARK, ASPIRATION_MARK, BREATHY_MARK):
        stripped = stripped.replace(mark, "")
    if not is_known_symbol(stripped):
        raise PhonemeError(
            f"no base symbol for {symbol!r} (stripped form {stripped!r})"
        )
    del ph
    return stripped
