"""Phoneme clustering — the backbone of the Clustered Edit Distance.

The paper extends Soundex to the phoneme domain "under the assumptions that
clusters of like phonemes exist and a substitution from within a cluster is
more likely than a substitution from across clusters" (Section 3.3).  The
cluster map serves two distinct purposes:

1. The *Clustered Edit Distance* charges the tunable intra-cluster
   substitution cost for same-cluster substitutions and full cost for
   cross-cluster ones (:mod:`repro.matching.costs`).
2. The *phonetic index* (paper Section 5.3) maps every phoneme to its
   cluster identifier and packs the identifier string into one integer —
   the *grouped phoneme string identifier* (:mod:`repro.phonetics.keys`).

:func:`default_clustering` ships the hand-designed clustering used in all
experiments; :func:`auto_clustering` derives one mechanically from the
feature-similarity matrix (the paper's future-work direction), and users
may construct :class:`PhonemeClustering` from any custom partition — the
paper explicitly "allow[s] user customization of clustering of phonemes".
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import PhonemeError
from repro.phonetics.features import phoneme_similarity
from repro.phonetics.inventory import INVENTORY, get_phoneme
from repro.phonetics.parse import PhonemeString


class PhonemeClustering:
    """An immutable partition of (a subset of) the phoneme inventory.

    Phonemes not covered by the partition are treated as singleton
    clusters, so any clustering is total over the inventory.  Cluster
    identifiers are small consecutive integers, stable for a given
    partition (ordered by the partition given, then singletons sorted).
    """

    def __init__(self, clusters: Iterable[Iterable[str]], name: str = "custom"):
        self.name = name
        self._cluster_of: dict[str, int] = {}
        self._members: list[tuple[str, ...]] = []
        for group in clusters:
            members = tuple(group)
            if not members:
                raise PhonemeError("empty phoneme cluster")
            cluster_id = len(self._members)
            for sym in members:
                get_phoneme(sym)  # validates the symbol
                if sym in self._cluster_of:
                    raise PhonemeError(
                        f"phoneme {sym!r} assigned to two clusters"
                    )
                self._cluster_of[sym] = cluster_id
            self._members.append(members)
        # Singleton clusters for anything the partition did not cover.
        for sym in sorted(INVENTORY):
            if sym not in self._cluster_of:
                self._cluster_of[sym] = len(self._members)
                self._members.append((sym,))

    @property
    def cluster_count(self) -> int:
        """Total number of clusters, singletons included."""
        return len(self._members)

    def cluster_id(self, symbol: str) -> int:
        """Cluster identifier of a phoneme symbol."""
        try:
            return self._cluster_of[symbol]
        except KeyError:
            raise PhonemeError(f"unknown phoneme symbol {symbol!r}") from None

    def members(self, cluster_id: int) -> tuple[str, ...]:
        """Phoneme symbols in the given cluster."""
        return self._members[cluster_id]

    def same_cluster(self, a: str, b: str) -> bool:
        """True if two phonemes fall in the same cluster."""
        return self.cluster_id(a) == self.cluster_id(b)

    def map_string(self, phonemes: PhonemeString) -> tuple[int, ...]:
        """Map a phoneme string to its cluster-identifier string.

        This is the projection used both by the phonetic index and by the
        cluster-domain q-gram filters (see DESIGN.md section 3).
        """
        return tuple(self._cluster_of[sym] for sym in phonemes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhonemeClustering):
            return NotImplemented
        return self._members == other._members

    def __hash__(self) -> int:
        return hash(tuple(self._members))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhonemeClustering(name={self.name!r}, "
            f"clusters={self.cluster_count})"
        )


# The hand-designed clustering used throughout the paper reproduction.
# It extends the Soundex letter groups to the phoneme domain: stops by
# place, sibilants, labial fricatives, nasals, liquids, glides, laryngeals,
# and six coarse vowel regions.  Length, nasalization and aspiration
# variants fall in the same cluster as their base phoneme, which is what
# lets e.g. Hindi /d̪ʱ/ match English /d/ cheaply.
_DEFAULT_CLUSTERS: tuple[tuple[str, ...], ...] = (
    # labial stops
    ("p", "pʰ", "b", "bʱ", "ɸ", "β"),
    # coronal stops (dental/alveolar/retroflex) and interdental fricatives
    ("t", "tʰ", "d", "dʱ", "t̪", "t̪ʰ", "d̪", "d̪ʱ", "ʈ", "ʈʰ", "ɖ", "ɖʱ",
     "θ", "ð"),
    # velar/uvular/palatal stops
    ("k", "kʰ", "g", "gʱ", "c", "ɟ", "q", "ʔ", "x", "ɣ"),
    # postalveolar affricates and fricatives
    ("tʃ", "tʃʰ", "dʒ", "dʒʱ", "ʃ", "ʒ", "ts", "dz"),
    # plain sibilants and retroflex fricatives
    ("s", "z", "ʂ", "ʐ", "ç"),
    # labiodental fricatives
    ("f", "v"),
    # nasals
    ("m", "n", "n̪", "ɳ", "ɲ", "ŋ"),
    # liquids: rhotics and laterals
    ("r", "ɾ", "ɽ", "ɽʱ", "ɹ", "ɻ", "l", "ɭ", "ɫ", "ʎ"),
    # glides
    ("j", "w", "ʋ"),
    # laryngeals
    ("h", "ɦ"),
)


def _vowel_region(symbol: str) -> int:
    """Coarse vowel region: one of five perceptual vowel classes.

    0: high front (i, ɪ, y); 1: mid front (e, ɛ, ø, œ); 2: low/central
    (a, ɑ, ɒ, æ, ɐ, ə, ɜ, ʌ); 3: mid back rounded (o, ɔ); 4: high back
    (u, ʊ, ɯ).  Five regions is the granularity at which cross-script
    vowel renderings of the same name reliably stay within one region.
    """
    ph = get_phoneme(symbol)
    assert ph.height is not None and ph.backness is not None
    h, b = ph.height.value, ph.backness.value
    if h <= 1:  # close / near-close
        return 0 if b == 0 else 4
    if b == 1 or h >= 5:  # central, or (near-)open anywhere
        return 2
    if b == 0:  # front mid
        return 1
    # back mid: rounded o/ɔ vs unrounded ʌ (which patterns with a/ə)
    return 3 if ph.rounded else 2


def _default_vowel_clusters() -> list[list[str]]:
    regions: dict[int, list[str]] = {r: [] for r in range(5)}
    for sym, ph in sorted(INVENTORY.items()):
        if ph.is_vowel:
            regions[_vowel_region(sym)].append(sym)
    return [regions[r] for r in range(5) if regions[r]]


_DEFAULT: PhonemeClustering | None = None


def default_clustering() -> PhonemeClustering:
    """The library's standard phoneme clustering (cached singleton)."""
    global _DEFAULT
    if _DEFAULT is None:
        clusters = [list(group) for group in _DEFAULT_CLUSTERS]
        clusters.extend(_default_vowel_clusters())
        _DEFAULT = PhonemeClustering(clusters, name="default")
    return _DEFAULT


def auto_clustering(
    threshold: float = 0.72,
    symbols: tuple[str, ...] | None = None,
) -> PhonemeClustering:
    """Derive a clustering from the feature-similarity matrix.

    Average-linkage agglomerative clustering: repeatedly merge the two
    clusters whose average pairwise phoneme similarity is highest, until
    no pair exceeds ``threshold``.  Consonants and vowels never merge
    (their similarity is 0).  This implements the paper's future-work item
    of deriving "a more robust grouping of like phonemes" mechanically.
    """
    if not 0.0 < threshold <= 1.0:
        raise PhonemeError(f"auto_clustering threshold {threshold} not in (0, 1]")
    syms = tuple(sorted(INVENTORY)) if symbols is None else tuple(symbols)
    clusters: list[list[str]] = [[s] for s in syms]
    sims: dict[tuple[str, str], float] = {}

    def avg_sim(a: list[str], b: list[str]) -> float:
        total = 0.0
        for x in a:
            for y in b:
                key = (x, y)
                if key not in sims:
                    sims[key] = phoneme_similarity(x, y)
                total += sims[key]
        return total / (len(a) * len(b))

    while len(clusters) > 1:
        best = -1.0
        best_pair: tuple[int, int] | None = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                s = avg_sim(clusters[i], clusters[j])
                if s > best:
                    best = s
                    best_pair = (i, j)
        if best_pair is None or best < threshold:
            break
        i, j = best_pair
        clusters[i].extend(clusters[j])
        del clusters[j]
    return PhonemeClustering(clusters, name=f"auto(threshold={threshold})")


def singleton_clustering() -> PhonemeClustering:
    """Every phoneme in its own cluster (degenerate clustering).

    With this clustering the Clustered Edit Distance collapses to the
    plain Levenshtein metric whatever the intra-cluster cost, because no
    two distinct phonemes ever share a cluster.
    """
    return PhonemeClustering([], name="singleton")
