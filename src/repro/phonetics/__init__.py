"""Phonetic substrate: IPA inventory, parsing, similarity, clustering, keys.

This package provides everything LexEQUAL needs to reason about phoneme
strings once a text-to-phoneme converter (``repro.ttp``) has produced them:

* :mod:`repro.phonetics.inventory` — the IPA phoneme inventory, with
  articulatory features for every symbol the converters emit;
* :mod:`repro.phonetics.parse` — tokenizing an IPA string into phonemes
  (affricates, aspiration, length and nasalization are handled here);
* :mod:`repro.phonetics.features` — a feature-based similarity measure
  between phonemes, in the spirit of Mareuil et al. (paper ref. [18]);
* :mod:`repro.phonetics.clusters` — grouping near-equal phonemes into
  clusters, the basis of the *Clustered Edit Distance* and of the
  phonetic index;
* :mod:`repro.phonetics.keys` — the *grouped phoneme string identifier*
  (paper Section 5.3) and classical Soundex for Latin text.
"""

from repro.phonetics.inventory import (
    Phoneme,
    PhonemeClass,
    INVENTORY,
    get_phoneme,
    is_known_symbol,
)
from repro.phonetics.parse import parse_ipa, ipa_length
from repro.phonetics.features import phoneme_similarity, similarity_matrix
from repro.phonetics.clusters import (
    PhonemeClustering,
    default_clustering,
    auto_clustering,
)
from repro.phonetics.keys import grouped_key, soundex

__all__ = [
    "Phoneme",
    "PhonemeClass",
    "INVENTORY",
    "get_phoneme",
    "is_known_symbol",
    "parse_ipa",
    "ipa_length",
    "phoneme_similarity",
    "similarity_matrix",
    "PhonemeClustering",
    "default_clustering",
    "auto_clustering",
    "grouped_key",
    "soundex",
]
