"""Phonetic keys: the grouped phoneme string identifier, and Soundex.

Paper Section 5.3 builds a compact database index by mapping each phoneme
string to an integer:

    "Each phoneme string was transformed to a unique numeric string, by
    concatenating the cluster identifiers of each phoneme in the string.
    The numeric string thus obtained was converted into an integer —
    Grouped Phoneme String Identifier — which is stored along with the
    phoneme string."

:func:`grouped_key` implements exactly that, using a positional encoding
with base ``cluster_count + 1`` so that distinct cluster-identifier
strings map to distinct integers (a decimal concatenation would collide
once identifiers exceed one digit — e.g. clusters ``(1, 2)`` and ``(12,)``).

The classical Soundex of Knuth (paper ref. [11]) is also provided, both as
a baseline in its own right and because the paper positions the phonetic
index as "a modified version of the Soundex algorithm, customized to the
phoneme space".
"""

from __future__ import annotations

from repro.phonetics.clusters import PhonemeClustering, default_clustering
from repro.phonetics.parse import PhonemeString


#: Segments skipped by the Soundex-style key: vowels carry the least
#: stable information across scripts, and laryngeals come and go
#: (classical Soundex likewise drops A E I O U Y H W).
_SKELETON_SKIP = frozenset({"h", "ɦ", "ʔ"})


def _key_symbols(phonemes: PhonemeString, mode: str) -> PhonemeString:
    from repro.errors import PhonemeError
    from repro.phonetics.inventory import get_phoneme

    if mode == "full":
        return phonemes
    if mode == "skeleton":
        return tuple(
            sym
            for sym in phonemes
            if sym not in _SKELETON_SKIP and not get_phoneme(sym).is_vowel
        )
    raise PhonemeError(f"unknown grouped-key mode {mode!r}")


def grouped_key(
    phonemes: PhonemeString,
    clustering: PhonemeClustering | None = None,
    mode: str = "skeleton",
) -> int:
    """Grouped phoneme string identifier for a phoneme string.

    ``mode="skeleton"`` (default, Soundex-style) keys on the consonant
    skeleton: vowels and laryngeals are skipped, the remaining phonemes
    are mapped to their cluster identifiers and packed into one integer.
    Two strings share a key iff their consonant skeletons are reachable
    from each other by intra-cluster substitutions alone — consonant
    insertions/deletions and cross-cluster substitutions change the key,
    which is why the phonetic index exhibits false dismissals (paper
    Section 5.3).

    ``mode="full"`` keys on every phoneme (the strictest reading of the
    paper's construction); it is faster to probe but dismisses any match
    whose strings differ in length.  The ablation benchmark
    ``bench_ablation_key_mode`` compares the two.
    """
    clustering = clustering or default_clustering()
    base = clustering.cluster_count + 1
    key = 0
    for cluster_id in clustering.map_string(_key_symbols(phonemes, mode)):
        # +1 keeps identifier 0 distinguishable from "no phoneme", making
        # the encoding prefix-free and therefore injective.
        key = key * base + (cluster_id + 1)
    return key


def grouped_key_string(
    phonemes: PhonemeString,
    clustering: PhonemeClustering | None = None,
    mode: str = "skeleton",
) -> str:
    """Human-readable form of the grouped key ("3.7.12" style)."""
    clustering = clustering or default_clustering()
    return ".".join(
        str(c)
        for c in clustering.map_string(_key_symbols(phonemes, mode))
    )


# --- Classical Soundex ----------------------------------------------------

_SOUNDEX_CODES = {
    **dict.fromkeys("BFPV", "1"),
    **dict.fromkeys("CGJKQSXZ", "2"),
    **dict.fromkeys("DT", "3"),
    **dict.fromkeys("L", "4"),
    **dict.fromkeys("MN", "5"),
    **dict.fromkeys("R", "6"),
}

# H and W are "transparent": they do not break a run of same-coded letters.
_SOUNDEX_TRANSPARENT = frozenset("HW")


def soundex(name: str) -> str:
    """Classical 4-character Soundex code (Knuth variant).

    Defined for Latin-script input; non-alphabetic characters are ignored.
    Returns ``""`` for input with no ASCII letters, rather than guessing.

    >>> soundex("Robert")
    'R163'
    >>> soundex("Rupert")
    'R163'
    >>> soundex("Nehru")
    'N600'
    """
    letters = [ch for ch in name.upper() if "A" <= ch <= "Z"]
    if not letters:
        return ""
    first = letters[0]
    code = [first]
    prev = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        digit = _SOUNDEX_CODES.get(ch, "")
        if digit and digit != prev:
            code.append(digit)
            if len(code) == 4:
                break
        if ch not in _SOUNDEX_TRANSPARENT:
            prev = digit
    return "".join(code).ljust(4, "0")
