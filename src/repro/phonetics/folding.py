"""Folding phonemes onto a canonical cross-language matching alphabet.

Paper Section 4.1: "those symbols specific to speech generation, such as
the supra-segmentals, diacritics, tones and accents were removed".  The
sample transcriptions of Figure 9 show the effect — English, Hindi and
Tamil strings share one loose phoneme alphabet (``neiru``, ``Indiya``,
``junəv3rsīti``) in which purely sub-phonemic distinctions have been
erased before any matching happens.

This module applies that preprocessing: distinctions that never separate
*names* across scripts are folded —

* length and nasalization marks are dropped (``eː`` → ``e``);
* dental diacritics are dropped (``t̪`` → ``t``), folding the Indic
  dental series onto the plain coronals;
* the rhotic family collapses to ``r`` and the lateral family to ``l``;
* lax/tense vowel pairs collapse (``ɪ`` → ``i``, ``ʊ`` → ``u``) and the
  NURSE vowel joins schwa;
* ``ʋ`` → ``v``, ``ɦ`` → ``h``, ``ʂ`` → ``ʃ``, ``ɳ`` → ``n``.

What remains — voicing, aspiration, retroflexion of stops, vowel quality
classes — is exactly the residue the Clustered Edit Distance is designed
to price.  Folding is applied by the TTP registry on every transform
(disable with ``TTPRegistry(fold=False)`` for raw transcriptions).
"""

from __future__ import annotations

from repro.phonetics.inventory import (
    ASPIRATION_MARK,
    BREATHY_MARK,
    LENGTH_MARK,
    NASAL_MARK,
    get_phoneme,
    is_known_symbol,
)
from repro.phonetics.parse import PhonemeString

# Base-symbol folds applied after stripping length/nasal marks.  The
# aspiration mark is re-attached after folding the base.
_BASE_FOLDS: dict[str, str] = {
    # coronal diacritics
    "t̪": "t",
    "d̪": "d",
    "n̪": "n",
    # rhotics and laterals
    "ɾ": "r",
    "ɹ": "r",
    "ɽ": "r",
    "ɻ": "r",
    "ɭ": "l",
    "ɫ": "l",
    "ʎ": "l",
    # laryngeals and glides
    "ɦ": "h",
    "ʋ": "v",
    # sibilants
    "ʂ": "ʃ",
    "ʐ": "ʒ",
    "ç": "ʃ",
    # nasals
    "ɳ": "n",
    "ɲ": "n",
    # vowels: lax/tense and rhotic-adjacent centrals
    "ɪ": "i",
    "ʊ": "u",
    "ɜ": "ə",
    "ɐ": "ə",
    "ɯ": "u",
    "y": "i",
    "ø": "e",
    "œ": "ɛ",
    "ɒ": "ɔ",
}


def fold_symbol(symbol: str) -> str:
    """Fold one inventory symbol to its canonical matching form."""
    ph = get_phoneme(symbol)  # validates
    del ph
    base = symbol
    aspirated = ""
    for mark in (LENGTH_MARK, NASAL_MARK):
        base = base.replace(mark, "")
    if base.endswith(ASPIRATION_MARK) or base.endswith(BREATHY_MARK):
        aspirated = base[-1]
        base = base[:-1]
    folded = _BASE_FOLDS.get(base, base)
    if aspirated:
        candidate = folded + (
            BREATHY_MARK if get_phoneme(folded).voiced else ASPIRATION_MARK
        )
        # ɽʱ folds through r, which takes no aspiration mark: drop it.
        if is_known_symbol(candidate):
            return candidate
        return folded
    return folded


def fold_phonemes(phonemes: PhonemeString) -> PhonemeString:
    """Fold a phoneme string onto the canonical matching alphabet."""
    return tuple(fold_symbol(sym) for sym in phonemes)
