"""Tokenizing IPA strings into phoneme sequences.

The LexEQUAL edit distance operates on *phonemes*, not on Unicode code
points: the affricate ``tʃ`` is one symbol, the aspirate ``kʰ`` is one
symbol, the long vowel ``aː`` is one symbol.  Getting this wrong skews
string lengths and therefore the threshold ``e * min(|T_l|, |T_r|)`` of the
paper's algorithm, so all phoneme-string handling goes through this module.

The tokenizer is greedy longest-match against the inventory, with the
length/nasalization/aspiration marks folded into the preceding base symbol.
Suprasegmentals (stress, syllable breaks, tie bars) are *removed*, matching
the paper's preprocessing: "those symbols specific to speech generation,
such as the supra-segmentals, diacritics, tones and accents were removed".
"""

from __future__ import annotations

import unicodedata

from repro.errors import PhonemeError
from repro.phonetics.inventory import (
    ASPIRATION_MARK,
    BREATHY_MARK,
    INVENTORY,
    LENGTH_MARK,
    NASAL_MARK,
    SYMBOLS_BY_LENGTH,
    is_known_symbol,
)

#: A phoneme string: a tuple of inventory symbols.
PhonemeString = tuple[str, ...]

# Suprasegmentals and other speech-generation marks dropped on input.
_IGNORED = frozenset(
    {
        "ˈ",  # primary stress
        "ˌ",  # secondary stress
        ".",  # syllable break
        "‿",  # linking
        "|",  # minor group
        "‖",  # major group
        "↗",
        "↘",
        " ",
        "\t",
        "˞",  # rhoticity hook (treated as plain vowel)
        "̯",  # non-syllabic
        "̩",  # syllabic
        "͡",  # tie bar (affricates are spelled without it here)
        "͜",
        "ʼ",  # ejective mark (not contrastive for our languages)
    }
)

# Common IPA spellings normalized to the inventory's canonical symbol.
_ALIASES = {
    "ɡ": "g",  # U+0261 LATIN SMALL LETTER SCRIPT G
    "ε": "ɛ",  # Greek epsilon occasionally pasted for open-mid e
    "ǝ": "ə",  # U+01DD turned e
    "ɚ": "ə",  # r-colored schwa folded to schwa
    "ɝ": "ɜ",
    "ă": "ə",
}

_MODIFIERS = (LENGTH_MARK, NASAL_MARK, ASPIRATION_MARK, BREATHY_MARK)


def _normalize(text: str) -> str:
    # NFD so precomposed nasal vowels (ẽ, ã, ...) decompose into the
    # base-plus-combining-tilde form the inventory uses.
    text = unicodedata.normalize("NFD", text)
    return "".join(_ALIASES.get(ch, ch) for ch in text)


def parse_ipa(text: str) -> PhonemeString:
    """Parse an IPA string into a tuple of inventory phoneme symbols.

    >>> parse_ipa("neːɦru")
    ('n', 'eː', 'ɦ', 'r', 'u')
    >>> parse_ipa("dʒəʋaːɦər")[0]
    'dʒ'

    Raises :class:`~repro.errors.PhonemeError` if the string contains a
    character that is neither an inventory symbol, a modifier, nor an
    ignorable suprasegmental.
    """
    text = _normalize(text)
    phonemes: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in _IGNORED:
            i += 1
            continue
        if ch in _MODIFIERS:
            # A modifier must attach to a preceding phoneme.
            if not phonemes:
                raise PhonemeError(
                    f"modifier {ch!r} at start of IPA string {text!r}"
                )
            merged = phonemes[-1] + ch
            if is_known_symbol(merged):
                phonemes[-1] = merged
                i += 1
                continue
            # e.g. a stray length mark on a consonant: treat gemination
            # as a repetition of the consonant.
            if ch == LENGTH_MARK:
                phonemes.append(phonemes[-1])
                i += 1
                continue
            raise PhonemeError(
                f"cannot attach modifier {ch!r} to {phonemes[-1]!r} "
                f"in IPA string {text!r}"
            )
        match = _longest_match(text, i)
        if match is None:
            raise PhonemeError(
                f"unknown IPA symbol {ch!r} at offset {i} in {text!r}"
            )
        phonemes.append(match)
        i += len(match)
    return tuple(phonemes)


def _longest_match(text: str, start: int) -> str | None:
    # SYMBOLS_BY_LENGTH is sorted longest-first, so the first hit is the
    # greedy match.  Inventory symbols are at most 3 characters long.
    for sym in SYMBOLS_BY_LENGTH:
        if text.startswith(sym, start):
            # Do not match a bare base symbol when a modifier follows that
            # would extend it (handled by the modifier branch above), except
            # that the greedy sort already prefers the extended symbol.
            return sym
    return None


def ipa_length(text: str) -> int:
    """Number of phonemes in an IPA string (not Unicode code points)."""
    return len(parse_ipa(text))


def format_phonemes(phonemes: PhonemeString) -> str:
    """Inverse of :func:`parse_ipa` for canonical phoneme tuples."""
    return "".join(phonemes)


def validate_phoneme_string(phonemes: PhonemeString) -> None:
    """Raise :class:`~repro.errors.PhonemeError` on non-inventory symbols."""
    for sym in phonemes:
        if not is_known_symbol(sym):
            raise PhonemeError(f"unknown phoneme symbol {sym!r}")


def all_symbols() -> tuple[str, ...]:
    """Every inventory symbol, in a stable order (for property tests)."""
    return tuple(sorted(INVENTORY))
