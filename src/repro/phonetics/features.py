"""Feature-based phoneme similarity.

The paper clusters "near-equal phonemes ... based on the similarity measure
as outlined in [18]" (Mareuil et al., *Multilingual Automatic Phoneme
Clustering*).  That work groups phonemes by articulatory feature agreement;
we reproduce the idea with an explicit weighted feature metric:

* two consonants are compared on manner, place, voicing and aspiration;
* two vowels on height, backness, rounding, length and nasality;
* a consonant and a vowel have similarity 0.

The similarity is in ``[0, 1]`` with 1 reserved for identical feature
bundles.  :func:`similarity_matrix` materializes the full inventory matrix,
which :func:`repro.phonetics.clusters.auto_clustering` feeds to an
agglomerative clustering pass — the paper's "more robust design of phoneme
clusters" future-work item.
"""

from __future__ import annotations

from repro.phonetics.inventory import (
    INVENTORY,
    Height,
    Manner,
    Phoneme,
    Place,
    get_phoneme,
)

# Adjacent places of articulation get partial place credit: substituting a
# dental for an alveolar stop is much less of an error than substituting a
# glottal one.
_PLACE_ORDER = {
    Place.BILABIAL: 0.0,
    Place.LABIODENTAL: 1.0,
    Place.DENTAL: 2.0,
    Place.ALVEOLAR: 2.5,
    Place.POSTALVEOLAR: 3.0,
    Place.RETROFLEX: 3.5,
    Place.PALATAL: 4.5,
    Place.VELAR: 5.5,
    Place.UVULAR: 6.0,
    Place.GLOTTAL: 7.0,
}
_PLACE_SPAN = max(_PLACE_ORDER.values()) - min(_PLACE_ORDER.values())

# Manners that are perceptually close get partial manner credit.
_MANNER_AFFINITY = {
    frozenset({Manner.PLOSIVE, Manner.AFFRICATE}): 0.6,
    frozenset({Manner.FRICATIVE, Manner.AFFRICATE}): 0.6,
    frozenset({Manner.TRILL, Manner.TAP}): 0.9,
    frozenset({Manner.TRILL, Manner.APPROXIMANT}): 0.6,
    frozenset({Manner.TAP, Manner.APPROXIMANT}): 0.6,
    frozenset({Manner.LATERAL, Manner.APPROXIMANT}): 0.6,
    frozenset({Manner.LATERAL, Manner.TAP}): 0.5,
    frozenset({Manner.LATERAL, Manner.TRILL}): 0.5,
}

# Feature weights.  Manner dominates for consonants (a /p/ ~ /b/ confusion
# is routine across scripts; /p/ ~ /m/ is not), mirroring the Soundex
# intuition the paper leans on.
_W_MANNER = 0.45
_W_PLACE = 0.30
_W_VOICE = 0.15
_W_ASPIRATION = 0.10

_W_HEIGHT = 0.40
_W_BACKNESS = 0.30
_W_ROUNDED = 0.12
_W_LENGTH = 0.10
_W_VNASAL = 0.08

_HEIGHT_SPAN = max(h.value for h in Height) - min(h.value for h in Height)


def _manner_score(a: Manner, b: Manner) -> float:
    if a is b:
        return 1.0
    return _MANNER_AFFINITY.get(frozenset({a, b}), 0.0)


def _place_score(a: Place, b: Place) -> float:
    gap = abs(_PLACE_ORDER[a] - _PLACE_ORDER[b])
    return max(0.0, 1.0 - gap / (_PLACE_SPAN / 2.0))


def _consonant_similarity(a: Phoneme, b: Phoneme) -> float:
    assert a.manner is not None and b.manner is not None
    assert a.place is not None and b.place is not None
    score = _W_MANNER * _manner_score(a.manner, b.manner)
    score += _W_PLACE * _place_score(a.place, b.place)
    score += _W_VOICE * (1.0 if a.voiced == b.voiced else 0.0)
    score += _W_ASPIRATION * (1.0 if a.aspirated == b.aspirated else 0.0)
    return score


def _vowel_similarity(a: Phoneme, b: Phoneme) -> float:
    assert a.height is not None and b.height is not None
    assert a.backness is not None and b.backness is not None
    height_gap = abs(a.height.value - b.height.value) / _HEIGHT_SPAN
    backness_gap = abs(a.backness.value - b.backness.value) / 2.0
    score = _W_HEIGHT * (1.0 - height_gap)
    score += _W_BACKNESS * (1.0 - backness_gap)
    score += _W_ROUNDED * (1.0 if a.rounded == b.rounded else 0.0)
    score += _W_LENGTH * (1.0 if a.long == b.long else 0.0)
    score += _W_VNASAL * (1.0 if a.nasal == b.nasal else 0.0)
    return score


def phoneme_similarity(a: str | Phoneme, b: str | Phoneme) -> float:
    """Similarity of two phonemes in ``[0, 1]``.

    Accepts symbols or :class:`~repro.phonetics.inventory.Phoneme`
    instances.  Symmetric; returns 1.0 only for feature-identical phonemes.
    """
    pa = get_phoneme(a) if isinstance(a, str) else a
    pb = get_phoneme(b) if isinstance(b, str) else b
    if pa.symbol == pb.symbol:
        return 1.0
    if pa.klass is not pb.klass:
        return 0.0
    if pa.is_consonant:
        return min(1.0, _consonant_similarity(pa, pb))
    return min(1.0, _vowel_similarity(pa, pb))


def similarity_matrix(
    symbols: tuple[str, ...] | None = None,
) -> dict[tuple[str, str], float]:
    """Pairwise similarity over ``symbols`` (default: whole inventory).

    Returned as a dict keyed by ordered symbol pairs, including the
    diagonal.  Used by automatic clustering and exposed for inspection.
    """
    syms = tuple(sorted(INVENTORY)) if symbols is None else symbols
    matrix: dict[tuple[str, str], float] = {}
    for i, a in enumerate(syms):
        for b in syms[i:]:
            sim = phoneme_similarity(a, b)
            matrix[(a, b)] = sim
            matrix[(b, a)] = sim
    return matrix
