"""Automatic matching-parameter selection (paper future work, Section 6).

"In our future work, we plan to investigate techniques for automatically
generating the optimal matching parameters, based on a given dataset, its
domain and a training set."

:func:`autotune` implements the natural version of that idea: grid-search
the (threshold, intra-cluster cost) plane on a *tagged training lexicon*
and pick the point whose (recall, precision) is closest to the perfect
top-right corner of the precision-recall space — the paper's own
selection criterion in Section 4.3 ("the closest points on the
precision-recall graphs to the top-right corner correspond to the query
parameters that result in the best match quality").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import MatchConfig
from repro.data.lexicon import MultiscriptLexicon
from repro.evaluation.quality import QualityPoint, sweep_quality


@dataclass(frozen=True)
class AutotuneResult:
    """Chosen configuration plus the full sweep for inspection."""

    config: MatchConfig
    best: QualityPoint
    sweep: list[QualityPoint]


def _corner_distance(point: QualityPoint) -> float:
    """Euclidean distance to the perfect (recall=1, precision=1) corner."""
    return math.hypot(1.0 - point.recall, 1.0 - point.precision)


def autotune(
    training_lexicon: MultiscriptLexicon,
    thresholds: list[float] | None = None,
    intra_cluster_costs: list[float] | None = None,
    base_config: MatchConfig | None = None,
    objective=None,
) -> AutotuneResult:
    """Pick matching parameters from a tagged training set.

    ``objective`` maps a :class:`QualityPoint` to a score to *minimize*;
    the default is distance to the top-right corner of precision-recall
    space.  Ties break toward the lower threshold (cheaper banded DP) and
    then the higher intra-cluster cost (tighter filters).
    """
    thresholds = thresholds or [round(0.05 * i, 2) for i in range(1, 13)]
    intra_cluster_costs = intra_cluster_costs or [
        0.0, 0.125, 0.25, 0.375, 0.5, 0.75, 1.0,
    ]
    objective = objective or _corner_distance
    base = base_config or MatchConfig()
    sweep = sweep_quality(
        training_lexicon, thresholds, intra_cluster_costs, base
    )
    best = min(
        sweep,
        key=lambda p: (
            objective(p),
            p.threshold,
            -p.intra_cluster_cost,
        ),
    )
    config = base.with_threshold(best.threshold).with_intra_cluster_cost(
        best.intra_cluster_cost
    )
    return AutotuneResult(config=config, best=best, sweep=sweep)
