"""Recall and precision exactly as the paper defines them (Section 4.2).

"We matched each phonemic string in the data set with every other
phonemic string, counting the number of matches (m1) that were correctly
reported ..., along with the total number of matches that are reported as
the result (m2).  If there are n equivalent groups with n_i of
multiscript strings each:

    Recall    = m1 / sum_i C(n_i, 2)
    Precision = m1 / m2"
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatasetError


def _choose2(n: int) -> int:
    return n * (n - 1) // 2


@dataclass(frozen=True)
class QualityCounts:
    """Raw counts from an all-pairs matching run."""

    correct_matches: int  # m1
    reported_matches: int  # m2
    ideal_matches: int  # sum_i C(n_i, 2)

    @property
    def false_positives(self) -> int:
        return self.reported_matches - self.correct_matches

    @property
    def false_dismissals(self) -> int:
        return self.ideal_matches - self.correct_matches

    @property
    def recall(self) -> float:
        if self.ideal_matches == 0:
            raise DatasetError("no tagged groups with >= 2 members")
        return self.correct_matches / self.ideal_matches

    @property
    def precision(self) -> float:
        # With no reported matches precision is conventionally perfect
        # (nothing wrong was reported).
        if self.reported_matches == 0:
            return 1.0
        return self.correct_matches / self.reported_matches


def ideal_match_count(group_sizes: list[int]) -> int:
    """``sum_i C(n_i, 2)`` — the denominator of the recall metric."""
    return sum(_choose2(n) for n in group_sizes)


def recall_precision(
    correct_matches: int,
    reported_matches: int,
    group_sizes: list[int],
) -> tuple[float, float]:
    """Convenience wrapper returning ``(recall, precision)``."""
    counts = QualityCounts(
        correct_matches=correct_matches,
        reported_matches=reported_matches,
        ideal_matches=ideal_match_count(group_sizes),
    )
    return counts.recall, counts.precision
