"""Wall-clock timing of the execution strategies (Tables 1-3).

The harness times selection queries and the self equi-join for each
strategy over a :class:`~repro.core.strategies.NameCatalog`, reporting
elapsed seconds plus the strategy's work counters (rows considered, UDF
calls) so benchmark output shows *why* the accelerated paths win, not
just that they do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.strategies import Strategy, StrategyStats


@dataclass(frozen=True)
class TimedRun:
    """One timed strategy invocation."""

    strategy: str
    operation: str  # 'select' | 'join'
    seconds: float
    result_count: int
    stats: StrategyStats

    def per_query(self, query_count: int) -> float:
        return self.seconds / max(query_count, 1)


def time_select(
    strategy: Strategy,
    queries: list[str],
    language: str = "english",
    languages: tuple[str, ...] = (),
) -> TimedRun:
    """Run every query through the strategy and time the batch."""
    total_results = 0
    merged = StrategyStats()
    start = time.perf_counter()
    for query in queries:
        results = strategy.select(query, language, languages)
        total_results += len(results)
        stats = strategy.last_stats
        merged.rows_considered += stats.rows_considered
        merged.candidates_after_filters += stats.candidates_after_filters
        merged.udf_calls += stats.udf_calls
        merged.results += stats.results
    elapsed = time.perf_counter() - start
    return TimedRun(
        strategy=strategy.name,
        operation="select",
        seconds=elapsed,
        result_count=total_results,
        stats=merged,
    )


def time_join(
    strategy: Strategy, *, cross_language_only: bool = True
) -> TimedRun:
    """Time the self equi-join."""
    start = time.perf_counter()
    pairs = strategy.join(cross_language_only=cross_language_only)
    elapsed = time.perf_counter() - start
    return TimedRun(
        strategy=strategy.name,
        operation="join",
        seconds=elapsed,
        result_count=len(pairs),
        stats=strategy.last_stats,
    )


def time_strategies(
    strategies: list[Strategy],
    queries: list[str],
    *,
    include_join: bool = True,
    language: str = "english",
) -> list[TimedRun]:
    """Table-style comparison: select (and optionally join) per strategy."""
    runs: list[TimedRun] = []
    for strategy in strategies:
        runs.append(time_select(strategy, queries, language))
    if include_join:
        for strategy in strategies:
            runs.append(time_join(strategy))
    return runs
