"""ASCII rendering of the paper's tables and figures.

The benchmark harness prints its results through these helpers so that
each bench regenerates output in the shape of the corresponding paper
artifact: timing tables for Tables 1-3, recall/precision series for
Figure 11, precision-recall curves for Figure 12, and length histograms
for Figures 10/13.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A boxless fixed-width table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[i]) for row in cells) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    series: dict[str, list[tuple[float, float]]],
    y_format: str = "{:.3f}",
) -> str:
    """Aligned multi-series table: one x column, one column per series."""
    xs: list[float] = sorted({x for pts in series.values() for x, _y in pts})
    headers = [x_label] + list(series)
    rows = []
    lookup = {
        name: {x: y for x, y in pts} for name, pts in series.items()
    }
    for x in xs:
        row: list[object] = [f"{x:g}"]
        for name in series:
            y = lookup[name].get(x)
            row.append("-" if y is None else y_format.format(y))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_histogram(
    title: str, histogram: dict[int, int], width: int = 40
) -> str:
    """A horizontal bar chart of a length-frequency distribution."""
    if not histogram:
        return f"{title}\n(empty)"
    peak = max(histogram.values())
    lines = [title]
    for length in sorted(histogram):
        count = histogram[length]
        bar = "#" * max(1, round(width * count / peak)) if count else ""
        lines.append(f"{length:>4}  {count:>7}  {bar}")
    return "\n".join(lines)


def seconds(value: float) -> str:
    """Human-friendly seconds with sensible precision."""
    if value < 0.001:
        return f"{value * 1e6:.0f} µs"
    if value < 1.0:
        return f"{value * 1e3:.1f} ms"
    return f"{value:.2f} s"
