"""Evaluation harness: the paper's quality and efficiency experiments.

* :mod:`repro.evaluation.metrics` — the recall/precision formulas of
  Section 4.2;
* :mod:`repro.evaluation.quality` — all-pairs matching over the tagged
  lexicon and the threshold × intra-cluster-cost sweeps behind
  Figures 11 and 12, plus phonetic-index false-dismissal measurement;
* :mod:`repro.evaluation.timing` — wall-clock harness behind Tables 1-3;
* :mod:`repro.evaluation.autotune` — automatic parameter selection from
  a tagged training set (the paper's first future-work item);
* :mod:`repro.evaluation.report` — ASCII renderings of the paper's
  tables and figures.
"""

from repro.evaluation.metrics import QualityCounts, recall_precision
from repro.evaluation.quality import (
    QualityPoint,
    evaluate_quality,
    sweep_quality,
    phonetic_index_dismissals,
)
from repro.evaluation.timing import TimedRun, time_strategies
from repro.evaluation.autotune import autotune

__all__ = [
    "QualityCounts",
    "recall_precision",
    "QualityPoint",
    "evaluate_quality",
    "sweep_quality",
    "phonetic_index_dismissals",
    "TimedRun",
    "time_strategies",
    "autotune",
]
