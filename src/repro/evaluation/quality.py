"""All-pairs match quality over the tagged lexicon (Figures 11/12).

The harness mirrors the paper's methodology: every phonemic string is
matched against every other (pairs, not ordered comparisons), a match is
*correct* when the tag numbers agree, and recall/precision follow the
Section 4.2 formulas.

Distances do not depend on the user match threshold, so a sweep computes
one pairwise distance matrix per intra-cluster cost and then evaluates
every threshold against it — this is what makes the full Figure 11 grid
(5 costs × 17 thresholds over ~2400 strings) run in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MatchConfig
from repro.data.lexicon import MultiscriptLexicon
from repro.evaluation.metrics import QualityCounts, ideal_match_count
from repro.matching.batch import pairwise_distance_matrix
from repro.phonetics.keys import grouped_key
from repro.phonetics.parse import parse_ipa


@dataclass(frozen=True)
class QualityPoint:
    """Recall/precision at one (threshold, intra-cluster cost) setting."""

    threshold: float
    intra_cluster_cost: float
    recall: float
    precision: float
    counts: QualityCounts


class _PreparedLexicon:
    """Lexicon parsed and indexed for repeated evaluations."""

    def __init__(self, lexicon: MultiscriptLexicon):
        self.phonemes = [parse_ipa(e.ipa) for e in lexicon.entries]
        self.tags = np.array([e.tag for e in lexicon.entries])
        self.lengths = np.array([len(p) for p in self.phonemes])
        groups: dict[int, int] = {}
        for entry in lexicon.entries:
            groups[entry.tag] = groups.get(entry.tag, 0) + 1
        self.ideal = ideal_match_count(list(groups.values()))
        n = len(self.phonemes)
        self.upper = np.triu_indices(n, 1)
        minlen = np.minimum.outer(self.lengths, self.lengths)
        self.pair_minlen = minlen[self.upper]
        self.pair_same_tag = (
            self.tags[:, None] == self.tags[None, :]
        )[self.upper]


def _distances(
    prepared: _PreparedLexicon, config: MatchConfig
) -> np.ndarray:
    matrix = pairwise_distance_matrix(
        prepared.phonemes, config.cost_model()
    )
    return matrix[prepared.upper]


def _point(
    prepared: _PreparedLexicon,
    pair_distances: np.ndarray,
    threshold: float,
    intra_cluster_cost: float,
) -> QualityPoint:
    budgets = threshold * prepared.pair_minlen
    matched = pair_distances <= budgets + 1e-12
    reported = int(matched.sum())
    correct = int((matched & prepared.pair_same_tag).sum())
    counts = QualityCounts(
        correct_matches=correct,
        reported_matches=reported,
        ideal_matches=prepared.ideal,
    )
    return QualityPoint(
        threshold=threshold,
        intra_cluster_cost=intra_cluster_cost,
        recall=counts.recall,
        precision=counts.precision,
        counts=counts,
    )


def evaluate_quality(
    lexicon: MultiscriptLexicon, config: MatchConfig
) -> QualityPoint:
    """Recall/precision of all-pairs matching at one configuration."""
    prepared = _PreparedLexicon(lexicon)
    distances = _distances(prepared, config)
    return _point(
        prepared, distances, config.threshold, config.intra_cluster_cost
    )


def sweep_quality(
    lexicon: MultiscriptLexicon,
    thresholds: list[float],
    intra_cluster_costs: list[float],
    base_config: MatchConfig | None = None,
) -> list[QualityPoint]:
    """The Figure 11/12 parameter sweep.

    Returns one :class:`QualityPoint` per (cost, threshold) combination,
    ordered cost-major.  ``base_config`` carries the non-swept knobs
    (clustering, weak-indel cost).
    """
    base = base_config or MatchConfig()
    prepared = _PreparedLexicon(lexicon)
    points: list[QualityPoint] = []
    for cost in intra_cluster_costs:
        config = base.with_intra_cluster_cost(cost)
        distances = _distances(prepared, config)
        for threshold in thresholds:
            points.append(_point(prepared, distances, threshold, cost))
    return points


@dataclass(frozen=True)
class StrategyQuality:
    """One strategy's match quality relative to the exact matcher.

    ``recall_vs_exact`` is the fraction of the exact strategies' match
    pairs the strategy reports (1.0 for every lossless strategy by
    construction); ``candidate_fraction`` is the share of all pairs its
    prefilter admits to verification (1.0 when there is no prefilter
    narrower than the exact candidate set); ``recall``/``precision``
    are the Figure 11/12 tag-based scores of its *final* result set.
    """

    strategy: str
    threshold: float
    recall_vs_exact: float
    candidate_fraction: float
    recall: float
    precision: float


def _ann_admitted_pairs(
    prepared: _PreparedLexicon,
    config: MatchConfig,
    radius_scale: float,
    quantized: bool,
) -> np.ndarray:
    """Upper-triangle mask of pairs the embedding prefilter admits.

    Mirrors :class:`~repro.core.strategies.AnnPrefilterStrategy.join`:
    pair (i, j) is admitted when the (quantized) embedding distance is
    within ``radius_scale * threshold * len_i`` — the admission radius
    the i-side query would use.
    """
    from repro.matching.batch import EncodedCosts
    from repro.matching.embed import (
        EmbeddingModel,
        quantize,
        quantized_radius,
    )

    symbols = sorted({s for p in prepared.phonemes for s in p})
    model = EmbeddingModel(EncodedCosts(config.cost_model(), symbols))
    vectors = np.stack([model.encode(p) for p in prepared.phonemes])
    n = len(vectors)
    if quantized:
        q = quantize(vectors).astype(np.int32)
        limits = quantized_radius(
            radius_scale * config.threshold * prepared.lengths, model.dim
        )
    else:
        q = vectors
        limits = radius_scale * config.threshold * prepared.lengths
    admitted = np.zeros((n, n), dtype=bool)
    for lo in range(0, n, 256):
        hi = min(lo + 256, n)
        block = np.abs(q[lo:hi, None, :] - q[None, :, :]).sum(axis=2)
        admitted[lo:hi] = block <= limits[lo:hi, None]
    return admitted[prepared.upper]


def strategy_quality(
    lexicon: MultiscriptLexicon,
    config: MatchConfig | None = None,
    *,
    strategies: tuple[str, ...] = (
        "naive",
        "qgram",
        "metric",
        "index",
        "ann",
    ),
    radius_scale: float = 2.0,
    quantized: bool = True,
) -> list[StrategyQuality]:
    """Per-strategy Figure 11/12 quality, prefilters included.

    The exact strategies (``naive``/``qgram``/``metric``/``parallel``)
    share one result set — every pair within the edit-distance budget —
    so their ``recall_vs_exact`` is 1.0 by construction and this
    function scores them once each only so a golden test can pin that
    fact.  The lossy strategies are scored through their actual
    admission rule: grouped-key equality for ``index``, the (quantized)
    embedding radius at ``radius_scale`` for ``ann``; their final
    result set is the intersection with the exact matches, exactly what
    the exact verifier yields.
    """
    config = config or MatchConfig()
    prepared = _PreparedLexicon(lexicon)
    distances = _distances(prepared, config)
    budgets = config.threshold * prepared.pair_minlen
    matched = distances <= budgets + 1e-12
    exact_count = int(matched.sum())
    all_pairs = len(matched)

    def admitted_for(strategy: str) -> np.ndarray:
        if strategy == "index":
            keys = np.array(
                [
                    grouped_key(p, config.clustering, mode=config.key_mode)
                    for p in prepared.phonemes
                ],
                dtype=object,
            )
            i_idx, j_idx = prepared.upper
            return keys[i_idx] == keys[j_idx]
        if strategy == "ann":
            return _ann_admitted_pairs(
                prepared, config, radius_scale, quantized
            )
        return np.ones(all_pairs, dtype=bool)

    results = []
    for strategy in strategies:
        admitted = admitted_for(strategy)
        reported_mask = matched & admitted
        reported = int(reported_mask.sum())
        correct = int((reported_mask & prepared.pair_same_tag).sum())
        counts = QualityCounts(
            correct_matches=correct,
            reported_matches=reported,
            ideal_matches=prepared.ideal,
        )
        results.append(
            StrategyQuality(
                strategy=strategy,
                threshold=config.threshold,
                recall_vs_exact=(
                    reported / exact_count if exact_count else 1.0
                ),
                candidate_fraction=(
                    float(admitted.sum()) / all_pairs if all_pairs else 0.0
                ),
                recall=counts.recall,
                precision=counts.precision,
            )
        )
    return results


def phonetic_index_dismissals(
    lexicon: MultiscriptLexicon, config: MatchConfig | None = None
) -> tuple[int, int, float]:
    """False dismissals introduced by the phonetic index (Section 5.3).

    Compares the matches reported by the full-scan UDF against those
    reachable through equality on the grouped phoneme string identifier.
    Returns ``(dismissed, reported_by_scan, dismissal_rate)``; the paper
    measures "a small, but significant 4 - 5%" rate.
    """
    config = config or MatchConfig()
    prepared = _PreparedLexicon(lexicon)
    distances = _distances(prepared, config)
    budgets = config.threshold * prepared.pair_minlen
    matched = distances <= budgets + 1e-12
    keys = np.array(
        [
            grouped_key(p, config.clustering, mode=config.key_mode)
            for p in prepared.phonemes
        ],
        dtype=object,
    )
    i_idx, j_idx = prepared.upper
    same_key = keys[i_idx] == keys[j_idx]
    reported = int(matched.sum())
    dismissed = int((matched & ~same_key).sum())
    rate = dismissed / reported if reported else 0.0
    return dismissed, reported, rate
