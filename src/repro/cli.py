"""Command-line interface: ``lexequal <command> ...``.

Commands:

``match LEFT RIGHT [--threshold E] [--cost C]``
    Compare two names (languages detected from script) and explain the
    outcome.

``search QUERY [--lexicon PATH] [--threshold E] [--languages a,b]``
    LexEQUAL selection over the bundled (or a TSV) lexicon.

``lexicon build [--out PATH]``
    Build the tagged multiscript lexicon and write it as TSV.

``sweep [--thresholds ...] [--costs ...]``
    Run the Figure 11 quality sweep and print the series.

``autotune``
    Grid-search matching parameters on the bundled lexicon.

``dismissals``
    Measure the phonetic index's false-dismissal rate (Section 5.3).

``query SQL [--explain | --analyze] [--strategy METHOD] [--data-dir D]``
    Run SQL (including the paper's LexEQUAL predicates) against the
    bundled Books.com demo catalog, or — with ``--data-dir`` — against a
    durable database created by ``init``; ``--explain``/``--analyze``
    print the query plan instead of rows.  ``--accelerate`` is a
    deprecated alias of ``--strategy`` (``--strategy`` wins when both
    are given).

``init --data-dir D [--rows N] [--strategy METHOD]``
    Create a durable database directory (``repro.storage`` file
    backend): the Books.com demo catalog plus, with ``--rows N``, a
    seeded ``names`` lexicon; registers the phonetic accelerator, runs
    ``ANALYZE``, and checkpoints so later opens attach the persisted
    indexes instead of rebuilding them.

``stats [--json]``
    Run a representative matching workload with metrics enabled and
    print the collected counters/timers/histograms.

``lint [--format text|json] [--select RULES] [--ignore RULES]``
    Run the domain-aware static-analysis pass (``repro.analysis``) over
    the repository: phonetic-table IPA literals, cluster partition,
    metric axioms, rule-table reachability, script coverage, and the
    cross-layer op/failpoint/metric/lock registries.  Exit code 0 when
    clean, 1 on findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import MatchConfig
from repro.core.matcher import LexEqualMatcher
from repro.errors import ReproError


def _parse_floats(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part]


def _config_from_args(args: argparse.Namespace) -> MatchConfig:
    kwargs = {}
    if getattr(args, "threshold", None) is not None:
        kwargs["threshold"] = args.threshold
    if getattr(args, "cost", None) is not None:
        kwargs["intra_cluster_cost"] = args.cost
    return MatchConfig(**kwargs)


def cmd_match(args: argparse.Namespace) -> int:
    matcher = LexEqualMatcher(_config_from_args(args))
    explanation = matcher.explain(args.left, args.right)
    print(explanation)
    return 0 if explanation.outcome.value == "true" else 1


def cmd_search(args: argparse.Namespace) -> int:
    from repro.data.lexicon import MultiscriptLexicon, default_lexicon

    if getattr(args, "explain", False):
        from repro import obs

        obs.enable()
    matcher = LexEqualMatcher(_config_from_args(args))
    if args.lexicon:
        lexicon = MultiscriptLexicon.load_tsv(args.lexicon)
    else:
        lexicon = default_lexicon()
    languages = tuple(
        lang for lang in (args.languages or "").split(",") if lang
    )
    query_phonemes = matcher.phonemes(args.query)
    shown = 0
    for entry in lexicon:
        if languages and entry.language not in languages:
            continue
        from repro.phonetics.parse import parse_ipa

        if matcher.phonemes_match(query_phonemes, parse_ipa(entry.ipa)):
            print(f"{entry.name}\t{entry.language}\t[{entry.ipa}]")
            shown += 1
    print(f"-- {shown} matches", file=sys.stderr)
    if getattr(args, "explain", False):
        from repro import obs

        print(obs.format_snapshot(), file=sys.stderr)
    return 0


def cmd_lexicon_build(args: argparse.Namespace) -> int:
    from repro.data.lexicon import build_lexicon

    lexicon = build_lexicon()
    lexicon.save_tsv(args.out)
    lex_len, pho_len = lexicon.average_lengths()
    print(
        f"wrote {len(lexicon)} entries to {args.out} "
        f"(avg lengths: {lex_len:.2f} lexicographic, {pho_len:.2f} phonemic)"
    )
    return 0


def _lexicon_for(args: argparse.Namespace):
    from repro.data.lexicon import build_lexicon, default_lexicon

    limit = getattr(args, "limit", None)
    if limit:
        return build_lexicon(limit_per_domain=limit)
    return default_lexicon()


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.evaluation.quality import sweep_quality
    from repro.evaluation.report import format_series

    thresholds = _parse_floats(args.thresholds)
    costs = _parse_floats(args.costs)
    points = sweep_quality(_lexicon_for(args), thresholds, costs)
    recall_series: dict[str, list[tuple[float, float]]] = {}
    precision_series: dict[str, list[tuple[float, float]]] = {}
    for point in points:
        label = f"cost={point.intra_cluster_cost:g}"
        recall_series.setdefault(label, []).append(
            (point.threshold, point.recall)
        )
        precision_series.setdefault(label, []).append(
            (point.threshold, point.precision)
        )
    print(format_series("Recall vs threshold", "e", recall_series))
    print()
    print(format_series("Precision vs threshold", "e", precision_series))
    return 0


def cmd_autotune(args: argparse.Namespace) -> int:
    from repro.evaluation.autotune import autotune

    result = autotune(_lexicon_for(args))
    best = result.best
    print(
        f"best: threshold={best.threshold:g} "
        f"intra_cluster_cost={best.intra_cluster_cost:g} "
        f"recall={best.recall:.3f} precision={best.precision:.3f}"
    )
    return 0


def cmd_dismissals(args: argparse.Namespace) -> int:
    from repro.evaluation.quality import phonetic_index_dismissals

    config = _config_from_args(args)
    dismissed, reported, rate = phonetic_index_dismissals(
        _lexicon_for(args), config
    )
    print(
        f"phonetic index dismisses {dismissed} of {reported} "
        f"true matches ({rate:.1%})"
    )
    return 0


def _demo_books_db(accelerate: str = "none", workers: int | None = None):
    from repro.core.integration import demo_books_db

    return demo_books_db(accelerate, workers=workers)


#: ``--accelerate`` deprecation warning is emitted once per process.
_accelerate_warned = False


def _resolve_strategy(
    args: argparse.Namespace, default: str = "qgram"
) -> str:
    """Unify ``--strategy`` (canonical) with deprecated ``--accelerate``.

    Precedence: ``--strategy`` > ``--accelerate`` > ``default``.  The
    first use of ``--accelerate`` warns on stderr; both flags accept the
    same choices, so scripts migrate by renaming the flag.
    """
    global _accelerate_warned
    accelerate = getattr(args, "accelerate", None)
    strategy = getattr(args, "strategy", None)
    if accelerate is not None:
        if not _accelerate_warned:
            print(
                "warning: --accelerate is deprecated; use --strategy "
                "(--strategy takes precedence when both are given)",
                file=sys.stderr,
            )
            _accelerate_warned = True
        if strategy is None:
            return accelerate
    return strategy if strategy is not None else default


def _open_data_dir(args: argparse.Namespace):
    from repro.storage import open_database

    return open_database(
        args.data_dir, matcher=LexEqualMatcher(_config_from_args(args))
    )


def cmd_query(args: argparse.Namespace) -> int:
    if getattr(args, "data_dir", None):
        if args.strategy or args.accelerate:
            print(
                "warning: --strategy/--accelerate ignored with "
                "--data-dir (the persisted accelerator configuration "
                "applies; re-run `lexequal init` to change it)",
                file=sys.stderr,
            )
        db = _open_data_dir(args)
    else:
        db = _demo_books_db(
            _resolve_strategy(args), getattr(args, "workers", None)
        )
    if args.explain or args.analyze:
        print(db.explain(args.sql, analyze=args.analyze))
        return 0
    result = db.execute(args.sql)
    if result.columns:
        print("\t".join(result.columns))
    for row in result.rows:
        print("\t".join("NULL" if v is None else str(v) for v in row))
    print(f"-- {len(result.rows)} rows", file=sys.stderr)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro import obs

    obs.enable().reset()
    # Representative workload: the paper's Figure 3 selection, once
    # accelerated (q-gram filters + B+ tree) and once as a full scan,
    # plus a direct matcher comparison.
    matcher = LexEqualMatcher()
    matcher.match("Nehru", "नेहरु")
    db = _demo_books_db("qgram")
    query = (
        "SELECT author, title FROM books "
        "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
    )
    db.execute(query)
    db.execute(query + " INLANGUAGES { english, hindi, tamil, greek }")
    plain = _demo_books_db("none")
    plain.execute(query)
    data = obs.snapshot()
    if args.json:
        import json

        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(obs.format_snapshot(data))
    return 0


def cmd_init(args: argparse.Namespace) -> int:
    """Create a durable database directory (see module docstring)."""
    import time

    from repro.core.engine import create_phonetic_accelerator
    from repro.core.integration import install_lexequal, populate_books_demo
    from repro.storage import open_database

    matcher = LexEqualMatcher(_config_from_args(args))
    start = time.perf_counter()
    # sync=False during the bulk load: one checkpoint at the end makes
    # the result durable without an fsync per WAL commit.
    db = open_database(args.data_dir, matcher=matcher, sync=False)
    if db.table_names():
        print(
            f"error: {args.data_dir} already holds tables "
            f"({', '.join(db.table_names())}); point --data-dir at a "
            "new path",
            file=sys.stderr,
        )
        db.storage.close()
        return 1
    strategy = _resolve_strategy(args, default="auto")
    install_lexequal(db, matcher)
    with db.transaction():
        populate_books_demo(db)
    if strategy != "none":
        create_phonetic_accelerator(
            db, "books", "author", matcher,
            method=strategy, workers=getattr(args, "workers", None),
        )
    if args.rows:
        from repro.data.generator import generate_performance_dataset
        from repro.data.lexicon import build_lexicon
        from repro.minidb.schema import Column
        from repro.minidb.values import LangText, SqlType

        db.create_table(
            "names",
            [
                Column("id", SqlType.INTEGER, nullable=False),
                Column("name", SqlType.LANGTEXT, nullable=False),
                Column("language", SqlType.TEXT, nullable=False),
            ],
        )
        with db.transaction():
            for i, item in enumerate(
                generate_performance_dataset(build_lexicon(), args.rows)
            ):
                db.insert(
                    "names",
                    (i, LangText(item.name, item.language), item.language),
                )
        if strategy != "none":
            create_phonetic_accelerator(
                db, "names", "name", matcher,
                method=strategy, workers=getattr(args, "workers", None),
            )
    db.analyze()
    db.checkpoint()
    elapsed = time.perf_counter() - start
    total = sum(len(db.table(name)) for name in db.table_names())
    print(
        f"initialised {args.data_dir}: "
        f"{len(db.table_names())} tables, {total} rows, "
        f"strategy={strategy}, analyzed + checkpointed "
        f"in {elapsed:.1f}s"
    )
    db.storage.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.app import serve
    from repro.server.service import QueryService

    if getattr(args, "cluster", 0):
        return _serve_cluster(args)

    matcher = LexEqualMatcher(_config_from_args(args))

    if getattr(args, "shard_index", None) is not None:
        # Shard backend mode: spawned by the cluster supervisor, never
        # by hand (the flags are hidden).  Serve one owned slice.
        from repro.cluster.backend import sharded_service

        service = sharded_service(
            args.shard_index,
            args.shard_count,
            strategy=_resolve_strategy(args),
            data_dir=getattr(args, "data_dir", None),
            matcher=matcher,
        )
    else:
        from repro.core.integration import demo_books_db

        if getattr(args, "data_dir", None):
            service_db = _open_data_dir(args)
            meta = getattr(
                service_db.storage, "accelerator_meta", lambda: []
            )()
            strategy = (
                ",".join(sorted({e["method"] for e in meta})) or "none"
            )
        else:
            strategy = _resolve_strategy(args)
            service_db = demo_books_db(strategy, matcher)
        service = QueryService(service_db, matcher, strategy=strategy)

    def ready(host: str, port: int) -> None:
        print(f"listening on {host}:{port}", flush=True)

    import os

    fault_injection = args.fault_injection or bool(
        os.environ.get("REPRO_FAULT_OPS")
    )
    try:
        serve(
            service,
            args.host,
            args.port,
            ready=ready,
            max_workers=args.workers,
            max_inflight=args.max_inflight,
            request_timeout=args.request_timeout,
            drain_timeout=args.drain_timeout,
            fault_injection=fault_injection,
        )
    except OSError as exc:  # e.g. port already bound
        print(
            f"error: cannot listen on {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    print("server drained and stopped", flush=True)
    return 0


def _serve_cluster(args: argparse.Namespace) -> int:
    """``serve --cluster N``: router + N supervised shard backends."""
    import os

    from repro.cluster.router import serve_cluster

    shard_args: list[str] = []
    if getattr(args, "data_dir", None):
        shard_args += ["--data-dir", args.data_dir]
    else:
        shard_args += ["--strategy", _resolve_strategy(args)]
    if args.threshold is not None:
        shard_args += ["--threshold", str(args.threshold)]
    if args.cost is not None:
        shard_args += ["--cost", str(args.cost)]
    shard_args += [
        "--workers", str(args.workers),
        "--max-inflight", str(args.max_inflight),
        "--request-timeout", str(args.request_timeout),
    ]
    fault_injection = args.fault_injection or bool(
        os.environ.get("REPRO_FAULT_OPS")
    )

    def ready(host: str, port: int) -> None:
        print(f"listening on {host}:{port}", flush=True)

    try:
        serve_cluster(
            args.cluster,
            args.host,
            args.port,
            shard_args=tuple(shard_args),
            ready=ready,
            request_timeout=args.request_timeout,
            drain_timeout=args.drain_timeout,
            fault_injection=fault_injection,
            cache_ttl=args.cache_ttl,
        )
    except OSError as exc:  # e.g. port already bound
        print(
            f"error: cannot listen on {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    print("cluster drained and stopped", flush=True)
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """One-shot client requests against a running ``serve`` instance.

    All failure modes (connection refused, protocol violations, error
    responses) print a one-line ``error: ...`` diagnostic and exit
    nonzero — they raise ``ReproError`` subclasses that :func:`main`
    formats, matching the CLI's no-traceback convention.
    """
    import json

    from repro.server.client import LexEqualClient
    from repro.server.resilience import RetryPolicy

    retry = (
        RetryPolicy(max_attempts=args.retries + 1)
        if args.retries > 0
        else None
    )
    with LexEqualClient(
        args.host, args.port, timeout=args.timeout, retry=retry
    ) as client:
        op = args.client_op
        if op == "ping":
            print(client.ping())
            return 0
        if op == "query":
            result = client.query(args.sql)
            if "columns" in result:
                print("\t".join(result["columns"]))
                for row in result["rows"]:
                    print(
                        "\t".join(
                            "NULL" if v is None else _render_value(v)
                            for v in row
                        )
                    )
            print(f"-- {result['row_count']} rows", file=sys.stderr)
            _warn_degraded(result)
            return 0
        if op == "lexequal":
            result = client.lexequal(
                args.left,
                args.right,
                threshold=args.threshold,
                languages=args.languages or "",
            )
            print(
                f"{args.left} [{result['left_ipa']}] vs "
                f"{args.right} [{result['right_ipa']}]: "
                f"distance={result['distance']} "
                f"budget={result['budget']} -> {result['outcome']}"
            )
            _warn_degraded(result)
            return 0 if result["outcome"] == "true" else 1
        if op == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if op == "health":
            result = client.health()
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0 if result.get("status") == "ok" else 1
    raise AssertionError(f"unhandled client op {op!r}")  # pragma: no cover


def _warn_degraded(result: dict) -> None:
    """Surface a degraded (partial) server answer on stderr."""
    if result.get("degraded"):
        detail = []
        languages = ", ".join(result.get("failed_languages", ()))
        if languages:
            detail.append(f"language(s) unavailable: {languages}")
        shards = ", ".join(result.get("failed_shards", ()))
        if shards:
            detail.append(f"shard(s) unavailable: {shards}")
        print(
            f"-- degraded result: {'; '.join(detail) or 'cause unknown'}",
            file=sys.stderr,
        )


def _render_value(value) -> str:
    """Row value → display text (tagged LangText objects show the text)."""
    if isinstance(value, dict) and "text" in value:
        return str(value["text"])
    return str(value)


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        LintUsageError,
        default_rules,
        lint,
        render_json,
        render_text,
        save_baseline,
    )

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}  {rule.name:18s} {rule.description}")
        return 0
    select = tuple(
        token for part in args.select for token in part.split(",") if token
    )
    ignore = tuple(
        token for part in args.ignore for token in part.split(",") if token
    )
    if args.concurrency:
        select = select + tuple(
            rule.rule_id
            for rule in default_rules()
            if rule.rule_id.startswith("LEX-C")
        )
    try:
        result = lint(
            args.root,
            select=select,
            ignore=ignore,
            baseline_path=args.baseline,
        )
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.internal_errors:
        # An analyzer crashed: nothing it covers was actually checked.
        # Refuse to bake the crash into a baseline and exit with the
        # infrastructure-failure code so CI distinguishes "lint found
        # problems" (1) from "lint itself is broken" (2).
        for finding in result.internal_errors:
            print(f"internal error: {finding.message}", file=sys.stderr)
        return 2
    if args.write_baseline:
        from repro.analysis import BASELINE_FILENAME

        path = args.baseline or (
            f"{result.root}/{BASELINE_FILENAME}"
        )
        save_baseline(path, result.findings + result.suppressed)
        print(
            f"wrote baseline suppressing "
            f"{len(result.findings) + len(result.suppressed)} finding(s) "
            f"to {path}"
        )
        return 0
    if args.format == "json":
        rendered = render_json(
            result.findings,
            root=result.root,
            rules=result.rule_meta(),
            suppressed=result.suppressed,
        )
    else:
        rendered = render_text(
            result.findings,
            suppressed=len(result.suppressed),
            rules_run=len(result.rules),
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    else:
        print(rendered)
    return 0 if result.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lexequal",
        description="LexEQUAL multiscript phonetic matching (EDBT 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_match = sub.add_parser("match", help="compare two names")
    p_match.add_argument("left")
    p_match.add_argument("right")
    p_match.add_argument("--threshold", type=float)
    p_match.add_argument("--cost", type=float)
    p_match.set_defaults(func=cmd_match)

    p_search = sub.add_parser("search", help="search the lexicon")
    p_search.add_argument("query")
    p_search.add_argument("--lexicon", help="TSV lexicon path")
    p_search.add_argument("--threshold", type=float)
    p_search.add_argument("--cost", type=float)
    p_search.add_argument("--languages", help="comma-separated filter")
    p_search.add_argument(
        "--explain",
        action="store_true",
        help="print collected metrics to stderr after the search",
    )
    p_search.set_defaults(func=cmd_search)

    p_query = sub.add_parser(
        "query", help="run SQL against the demo Books.com catalog"
    )
    p_query.add_argument("sql")
    p_query.add_argument(
        "--explain", action="store_true", help="print the query plan"
    )
    p_query.add_argument(
        "--analyze",
        action="store_true",
        help="execute and print the plan with actual row counts/timings",
    )
    p_query.add_argument(
        "--strategy",
        choices=("auto", "qgram", "index", "parallel", "ann", "none"),
        help="execution strategy for books.author (default: qgram; "
        "'auto' = cost-based per-query choice)",
    )
    p_query.add_argument(
        "--accelerate",
        choices=("auto", "qgram", "index", "parallel", "ann", "none"),
        help="deprecated alias of --strategy (--strategy wins when "
        "both are given)",
    )
    p_query.add_argument(
        "--workers",
        type=int,
        help="process-pool size for --strategy parallel "
        "(default: CPU count)",
    )
    p_query.add_argument(
        "--data-dir",
        help="run against a durable database created by `lexequal "
        "init` instead of the in-memory demo catalog",
    )
    p_query.set_defaults(func=cmd_query)

    p_init = sub.add_parser(
        "init",
        help="create a durable database directory (repro.storage)",
    )
    p_init.add_argument(
        "--data-dir", required=True, help="directory to initialise"
    )
    p_init.add_argument(
        "--rows",
        type=int,
        help="also seed a generated multiscript `names` lexicon of "
        "this size (paper scale: 200000)",
    )
    p_init.add_argument(
        "--strategy",
        choices=("auto", "qgram", "index", "parallel", "ann", "none"),
        help="persisted accelerator method (default: auto)",
    )
    p_init.add_argument(
        "--accelerate",
        choices=("auto", "qgram", "index", "parallel", "ann", "none"),
        help="deprecated alias of --strategy",
    )
    p_init.add_argument(
        "--workers", type=int, help="pool size for strategy 'parallel'"
    )
    p_init.add_argument("--threshold", type=float)
    p_init.add_argument("--cost", type=float)
    p_init.set_defaults(func=cmd_init)

    p_stats = sub.add_parser(
        "stats", help="run a demo workload and print collected metrics"
    )
    p_stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_stats.set_defaults(func=cmd_stats)

    p_serve = sub.add_parser(
        "serve", help="run the concurrent query server (NDJSON over TCP)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=2004,
        help="TCP port; 0 picks an ephemeral port (default: 2004)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="CPU worker threads (default: 4)",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=32,
        help="backpressure: max admitted requests (default: 32)",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-request timeout in seconds, 0 disables (default: 30)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="max seconds to drain in-flight requests on shutdown",
    )
    p_serve.add_argument(
        "--strategy",
        choices=("auto", "qgram", "index", "parallel", "ann", "none"),
        help="phonetic accelerator for books.author (default: qgram; "
        "'auto' = cost-based per-query choice)",
    )
    p_serve.add_argument(
        "--accelerate",
        choices=("auto", "qgram", "index", "parallel", "ann", "none"),
        help="deprecated alias of --strategy (--strategy wins when "
        "both are given)",
    )
    p_serve.add_argument(
        "--data-dir",
        help="serve a durable database created by `lexequal init` "
        "instead of the in-memory demo catalog",
    )
    p_serve.add_argument(
        "--fault-injection",
        action="store_true",
        help="allow the remote 'faults' op to drive fault-injection "
        "failpoints (chaos testing; also enabled by REPRO_FAULT_OPS=1)",
    )
    p_serve.add_argument("--threshold", type=float)
    p_serve.add_argument("--cost", type=float)
    p_serve.add_argument(
        "--cluster", type=int, default=0, metavar="N",
        help="cluster mode: route over N supervised shard backend "
        "processes with health-checked failover (DESIGN.md §11)",
    )
    p_serve.add_argument(
        "--cache-ttl", type=float, default=5.0,
        help="cluster mode: router result-cache TTL in seconds "
        "(default: 5)",
    )
    # Internal flags the cluster supervisor passes to shard backends;
    # hidden because a shard is only meaningful under its supervisor.
    p_serve.add_argument(
        "--shard-index", type=int, default=None, help=argparse.SUPPRESS
    )
    p_serve.add_argument(
        "--shard-count", type=int, default=1, help=argparse.SUPPRESS
    )
    p_serve.set_defaults(func=cmd_serve)

    p_client = sub.add_parser(
        "client", help="send one request to a running server"
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=2004)
    p_client.add_argument(
        "--timeout", type=float, default=60.0,
        help="socket timeout in seconds (default: 60)",
    )
    p_client.add_argument(
        "--retries", type=int, default=0,
        help="max retries for idempotent ops on transport failure "
        "(exponential backoff + jitter; default: 0)",
    )
    client_sub = p_client.add_subparsers(dest="client_op", required=True)
    client_sub.add_parser("ping", help="liveness check")
    pc_query = client_sub.add_parser("query", help="run SQL remotely")
    pc_query.add_argument("sql")
    pc_lex = client_sub.add_parser(
        "lexequal", help="one LexEQUAL comparison"
    )
    pc_lex.add_argument("left")
    pc_lex.add_argument("right")
    pc_lex.add_argument("--threshold", type=float)
    pc_lex.add_argument("--languages", help="comma-separated restriction")
    client_sub.add_parser("stats", help="server + engine metrics (JSON)")
    client_sub.add_parser(
        "health",
        help="liveness/readiness probe (exit 0 only when status is ok)",
    )
    p_client.set_defaults(func=cmd_client)

    p_lex = sub.add_parser("lexicon", help="lexicon utilities")
    lex_sub = p_lex.add_subparsers(dest="subcommand", required=True)
    p_build = lex_sub.add_parser("build", help="build and save as TSV")
    p_build.add_argument("--out", default="lexicon.tsv")
    p_build.set_defaults(func=cmd_lexicon_build)

    p_sweep = sub.add_parser("sweep", help="Figure 11 quality sweep")
    p_sweep.add_argument(
        "--thresholds", default="0.1,0.2,0.25,0.3,0.35,0.4,0.5"
    )
    p_sweep.add_argument("--costs", default="0,0.25,0.5,1")
    p_sweep.add_argument(
        "--limit", type=int, help="names per domain (smaller = faster)"
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_tune = sub.add_parser("autotune", help="grid-search parameters")
    p_tune.add_argument(
        "--limit", type=int, help="names per domain (smaller = faster)"
    )
    p_tune.set_defaults(func=cmd_autotune)

    p_dis = sub.add_parser(
        "dismissals", help="phonetic index false-dismissal rate"
    )
    p_dis.add_argument("--threshold", type=float)
    p_dis.add_argument("--cost", type=float)
    p_dis.add_argument(
        "--limit", type=int, help="names per domain (smaller = faster)"
    )
    p_dis.set_defaults(func=cmd_dismissals)

    p_lint = sub.add_parser(
        "lint", help="domain-aware static analysis (repro.analysis)"
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_lint.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="run only these rules (ids or names, comma-separated; "
        "repeatable)",
    )
    p_lint.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="skip these rules (ids or names, comma-separated; "
        "repeatable)",
    )
    p_lint.add_argument(
        "--concurrency",
        action="store_true",
        help="run only the LEX-C concurrency rule family",
    )
    p_lint.add_argument(
        "--baseline",
        help="baseline suppression file "
        "(default: <root>/.lint-baseline.json)",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="suppress every current finding by writing the baseline",
    )
    p_lint.add_argument(
        "--output",
        help="write the report to a file instead of stdout",
    )
    p_lint.add_argument(
        "--root", help="repository root (default: auto-detected)"
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. output piped into head
        sys.stderr.close()
        return 0
    except ReproError as exc:  # bad SQL, unsupported language, ...
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
