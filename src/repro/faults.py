"""Process-wide fault-injection failpoints.

Robustness claims need proof: the chaos harness (``tests/test_chaos.py``
and ``scripts/chaos_smoke.py``) drives the real server while *named
failpoints* inject the failures a production multiscript-matching
service actually sees — dropped connections, slow or failing TTP
conversions, worker exhaustion.  A failpoint is a named hook compiled
into a hot path::

    from repro import faults

    def transform(self, text, language):
        faults.fire("ttp.transform", language=language)  # may raise/sleep
        ...

and configured at runtime::

    faults.configure("ttp.transform", probability=0.05, error="ttp",
                     languages=("hindi",))

Modes (combinable on one failpoint):

* **probability** — fire on each evaluation with probability ``p``
  (deterministic under :func:`seed`);
* **latency** — sleep ``latency`` seconds when firing (slow-path
  injection; combined with ``error`` the sleep happens first);
* **error** — raise the configured error kind when firing (see
  :data:`ERROR_KINDS`); a failpoint without an error kind makes
  :func:`fire` return ``True`` and the *site* decides what failure
  means (e.g. the server drops the connection);
* **N-shot** — ``count=N`` limits a failpoint to its first ``N`` fires
  (a one-shot fault is ``count=1``).

Activation paths:

* programmatic (tests): :func:`configure` / :func:`disable` /
  :func:`reset`;
* environment: ``REPRO_FAULTS`` is parsed at import, e.g.
  ``REPRO_FAULTS="server.conn.drop_write:p=0.1;ttp.transform:error=ttp,p=0.05,langs=hindi|tamil"``
  (``REPRO_FAULTS_SEED`` seeds the RNG);
* remotely: the server's ``faults`` op (gated behind
  ``lexequal serve --fault-injection``) for chaos tests against a real
  process.

When no failpoint is configured, :func:`fire` is one module-flag check
and a return — cheap enough for per-request hot paths (the throughput
benchmark budgets < 3% for the whole framework, disabled).
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager

from repro import obs
from repro.errors import FaultInjectedError, TTPError
from repro.locks import make_lock

__all__ = [
    "FAILPOINTS",
    "FaultInjectedError",
    "configure",
    "describe",
    "disable",
    "fire",
    "is_active",
    "parse_spec",
    "reset",
    "seed",
    "suppressed",
]


def _ttp_error(point: "_Failpoint", language: str | None) -> Exception:
    exc = TTPError(
        f"injected TTP failure at failpoint {point.name!r}"
        + (f" for language {language!r}" if language else "")
    )
    exc.language = language
    return exc


#: Error kinds an error-mode failpoint can raise.
ERROR_KINDS = {
    "fault": lambda point, language: FaultInjectedError(
        f"injected fault at failpoint {point.name!r}"
    ),
    "ttp": _ttp_error,
    "conn": lambda point, language: ConnectionResetError(
        f"injected connection reset at failpoint {point.name!r}"
    ),
    "internal": lambda point, language: RuntimeError(
        f"injected internal error at failpoint {point.name!r}"
    ),
    "io": lambda point, language: OSError(
        f"injected I/O error at failpoint {point.name!r}"
    ),
}


#: Every failpoint name compiled into the library's hot paths.  This is
#: the single source of truth for chaos schedules and docs; the static
#: analysis pass (``repro.analysis``, rule LEX-A002) cross-checks it
#: against the actual ``faults.fire(...)`` call sites in both
#: directions, so a renamed or added site cannot silently drift.
FAILPOINTS = frozenset(
    {
        "cluster.health.blackhole",
        "cluster.shard.kill",
        "cluster.shard.slow",
        "matching.bktree.search",
        "matching.qgrams.filter",
        "pool.admit",
        "pool.execute",
        "server.conn.drop_read",
        "server.conn.drop_write",
        "storage.checkpoint",
        "storage.checkpoint.post_rename",
        "storage.wal.append",
        "storage.wal.fsync",
        "ttp.transform",
    }
)


class _Failpoint:
    """One configured failpoint (see the module docstring for modes)."""

    __slots__ = (
        "name",
        "probability",
        "latency",
        "error",
        "remaining",
        "languages",
        "hits",
        "fires",
    )

    def __init__(
        self,
        name: str,
        probability: float = 1.0,
        latency: float = 0.0,
        error: str | None = None,
        count: int | None = None,
        languages=None,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"failpoint probability must be in [0, 1], got {probability}"
            )
        if latency < 0:
            raise ValueError(f"failpoint latency must be >= 0, got {latency}")
        if error is not None and error not in ERROR_KINDS:
            raise ValueError(
                f"unknown failpoint error kind {error!r} "
                f"(known: {', '.join(sorted(ERROR_KINDS))})"
            )
        if count is not None and count < 1:
            raise ValueError(f"failpoint count must be >= 1, got {count}")
        self.name = name
        self.probability = float(probability)
        self.latency = float(latency)
        self.error = error
        self.remaining = count  # None = unlimited
        self.languages = (
            frozenset(lang.lower() for lang in languages)
            if languages
            else None
        )
        self.hits = 0  # evaluations
        self.fires = 0  # evaluations that injected

    def info(self) -> dict:
        return {
            "probability": self.probability,
            "latency": self.latency,
            "error": self.error,
            "remaining": self.remaining,
            "languages": (
                sorted(self.languages) if self.languages else None
            ),
            "hits": self.hits,
            "fires": self.fires,
        }


class FaultRegistry:
    """A thread-safe registry of named failpoints.

    The process-global instance backs the module-level functions; tests
    may build private registries to avoid cross-test interference.
    """

    def __init__(self) -> None:
        self._lock = make_lock("faults.registry")
        self._points: dict[str, _Failpoint] = {}
        self._rng = random.Random()
        #: Lock-free fast-path flag: True iff any failpoint is
        #: configured.  ``fire`` reads it unlocked (benign race — a
        #: configure is visible at the next evaluation).
        self.active = False

    # ------------------------------------------------------ configuration

    def configure(
        self,
        name: str,
        *,
        probability: float = 1.0,
        latency: float = 0.0,
        error: str | None = None,
        count: int | None = None,
        languages=None,
    ) -> None:
        """Enable (or reconfigure) the failpoint ``name``."""
        point = _Failpoint(
            name, probability, latency, error, count, languages
        )
        with self._lock:
            self._points[name] = point
            self.active = True

    def disable(self, name: str) -> None:
        """Disable the failpoint ``name`` (no-op if not configured)."""
        with self._lock:
            self._points.pop(name, None)
            self.active = bool(self._points)

    def reset(self) -> None:
        """Disable every failpoint."""
        with self._lock:
            self._points.clear()
            self.active = False

    def seed(self, value: int) -> None:
        """Seed the firing RNG (chaos schedules are reproducible)."""
        with self._lock:
            self._rng.seed(value)

    def describe(self) -> dict:
        """Configured failpoints and their counters (``faults`` op)."""
        with self._lock:
            return {
                name: point.info()
                for name, point in sorted(self._points.items())
            }

    # ------------------------------------------------------------- firing

    def fire(self, name: str, *, language: str | None = None) -> bool:
        """Evaluate the failpoint ``name`` at an instrumented site.

        Returns ``False`` when the failpoint is not configured or does
        not fire.  When it fires: sleeps ``latency`` if set, raises the
        configured error kind if set, otherwise returns ``True`` so the
        site can apply its own failure (drop a connection, reject an
        admission, ...).
        """
        if not self.active:
            return False
        with self._lock:
            point = self._points.get(name)
            if point is None:
                return False
            point.hits += 1
            if point.remaining is not None and point.remaining <= 0:
                return False
            if point.languages is not None and (
                language is None or language.lower() not in point.languages
            ):
                # A language filter only matches sites that report a
                # language inside the filter set.
                return False
            if (
                point.probability < 1.0
                and self._rng.random() >= point.probability
            ):
                return False
            point.fires += 1
            if point.remaining is not None:
                point.remaining -= 1
            latency = point.latency
            error = point.error
        # Sleep and raise outside the lock: a latency injection must not
        # serialize every other failpoint evaluation behind it.
        obs.incr(f"faults.fired.{name}")
        if latency:
            time.sleep(latency)
        if error is not None:
            raise ERROR_KINDS[error](point, language)
        return True


# ------------------------------------------------------- env-var parsing


def parse_spec(spec: str, registry: FaultRegistry) -> None:
    """Configure ``registry`` from a ``REPRO_FAULTS`` spec string.

    Grammar: ``name:key=value,key=value;name2:...`` with keys ``p``
    (probability), ``latency`` (seconds), ``error`` (kind), ``count``
    (N-shot), ``langs`` (``|``-separated language filter).  A bare
    ``name`` (no ``:``) fires always.
    """
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, _, options = clause.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"empty failpoint name in spec {spec!r}")
        kwargs: dict = {}
        for option in options.split(","):
            option = option.strip()
            if not option:
                continue
            key, sep, value = option.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed failpoint option {option!r} in {spec!r}"
                )
            key = key.strip()
            value = value.strip()
            if key == "p":
                kwargs["probability"] = float(value)
            elif key == "latency":
                kwargs["latency"] = float(value)
            elif key == "error":
                kwargs["error"] = value
            elif key == "count":
                kwargs["count"] = int(value)
            elif key == "langs":
                kwargs["languages"] = tuple(
                    lang for lang in value.split("|") if lang
                )
            else:
                raise ValueError(
                    f"unknown failpoint option {key!r} in {spec!r}"
                )
        registry.configure(name, **kwargs)


# ------------------------------------------------------ global registry

_REGISTRY = FaultRegistry()

_env_spec = os.environ.get("REPRO_FAULTS")
if _env_spec:
    _env_seed = os.environ.get("REPRO_FAULTS_SEED")
    if _env_seed:
        _REGISTRY.seed(int(_env_seed))
    parse_spec(_env_spec, _REGISTRY)


def registry() -> FaultRegistry:
    """The process-global failpoint registry."""
    return _REGISTRY


def configure(name: str, **kwargs) -> None:
    _REGISTRY.configure(name, **kwargs)


def disable(name: str) -> None:
    _REGISTRY.disable(name)


def reset() -> None:
    _REGISTRY.reset()


def seed(value: int) -> None:
    _REGISTRY.seed(value)


def describe() -> dict:
    return _REGISTRY.describe()


def is_active() -> bool:
    return _REGISTRY.active


def fire(name: str, *, language: str | None = None) -> bool:
    """Evaluate a failpoint on the global registry (see module doc)."""
    if not _REGISTRY.active:  # inline fast path: one attr read
        return False
    return _REGISTRY.fire(name, language=language)


@contextmanager
def suppressed():
    """Deactivate every failpoint for the duration of the block.

    Bootstrap paths (building the demo catalog and its phonetic index
    at server startup) run under this so a ``REPRO_FAULTS`` schedule
    targets *serving*, not startup — a p=1 TTP fault should degrade
    queries, not prevent the server from ever binding.  Single-threaded
    use only: the flag is process-global, so concurrent ``fire`` calls
    in other threads would also be suppressed.
    """
    was = _REGISTRY.active
    _REGISTRY.active = False
    try:
        yield
    finally:
        _REGISTRY.active = was or _REGISTRY.active
