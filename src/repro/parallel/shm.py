"""Shared-memory segment lifecycle for the parallel executor.

The executor publishes its encoded tables once into a POSIX shared
memory segment (``multiprocessing.shared_memory``); worker processes
*attach* to the segment by name and build zero-copy numpy views over
it.  Nothing table-sized ever crosses a pipe: the only per-worker
startup traffic is a :class:`SegmentDescriptor` (a name plus a field
layout — a few hundred bytes), and the only per-query traffic is the
encoded query vector out and one packed result buffer back.

Lifecycle contract (DESIGN.md §9):

* **create** — the owning process packs named arrays into one segment
  (:class:`SharedSegment`), 64-byte aligned, and records it in a
  process-local live registry;
* **attach** — any process reconstructs read-only views from the
  descriptor (:func:`attach`).  Attachers immediately unregister the
  mapping from ``multiprocessing.resource_tracker``: pre-3.13 trackers
  treat an attach like an ownership claim and would *unlink the
  segment when the attaching process exits*, yanking it out from under
  every other process;
* **close** — attachers drop their views and mapping; the file
  persists;
* **unlink** — only the owner unlinks (idempotent), which removes the
  ``/dev/shm`` entry once the last mapping goes away.

Owner crash-safety is layered: ``atexit`` unlinks whatever is still
live at interpreter shutdown, :func:`install_signal_cleanup` chains a
SIGTERM handler in front of whatever is installed so a terminated
process unlinks before dying, and ``os.register_at_fork`` empties the
child's inherited copy of the registry so a forked worker can never
unlink its parent's segments.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.locks import make_lock

#: Every segment this library creates is named with this prefix, so
#: leak checks (tests, the chaos harness) can diff ``/dev/shm``.
SEGMENT_PREFIX = "repro_par_"

_ALIGN = 64

_counter_lock = make_lock("parallel.shm.counter")
_counter = 0


def _next_name() -> str:
    """A per-process unique segment name under :data:`SEGMENT_PREFIX`."""
    global _counter
    with _counter_lock:
        _counter += 1
        return f"{SEGMENT_PREFIX}{os.getpid()}_{_counter}"


@dataclass(frozen=True)
class ArrayField:
    """Layout of one array inside a segment."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SegmentDescriptor:
    """Everything an attacher needs: the name and the field layout."""

    name: str
    size: int
    fields: tuple[ArrayField, ...]


# ------------------------------------------------------------ registry

_live_lock = make_lock("parallel.shm.live")
_LIVE: dict[str, "SharedSegment"] = {}


def live_segments() -> tuple[str, ...]:
    """Names of segments created by this process and not yet unlinked."""
    with _live_lock:
        return tuple(_LIVE)


def cleanup_all() -> None:
    """Unlink every live segment this process owns (idempotent)."""
    with _live_lock:
        segments = list(_LIVE.values())
    for segment in segments:
        segment.unlink()


def _forget_all() -> None:
    """Empty the registry without unlinking (fork-child safety).

    A forked child inherits the parent's registry by memory copy; were
    it to run cleanup it would unlink segments the parent still serves.

    Runs as the ``after_in_child`` fork hook, so it must never
    *acquire* ``_live_lock``: at fork time some other parent thread may
    hold it, and the child inherits that locked state with no thread
    left to release it — acquiring here would deadlock the child
    forever (LEX-C003).  The child is single-threaded at this point,
    so the inherited lock is replaced wholesale instead.
    """
    global _live_lock
    _live_lock = make_lock("parallel.shm.live")
    _LIVE.clear()


os.register_at_fork(after_in_child=_forget_all)
atexit.register(cleanup_all)


# ------------------------------------------------------- signal chain

_signal_installed = False


def _cleanup_for_signal() -> None:
    """Best-effort unlink for the signal path — never takes ``_live_lock``.

    Signal handlers run on the main thread, which may already hold the
    non-reentrant registry lock (segment registration, ``unlink``, or
    ``cleanup_all`` itself); acquiring it here would deadlock instead
    of exiting.  Snapshotting the registry is a single C-level call,
    atomic under the GIL, and the per-segment unlink is idempotent
    against the locked path.
    """
    try:
        segments = list(_LIVE.values())
    except RuntimeError:  # registry mutated mid-snapshot
        segments = []
    for segment in segments:
        try:
            segment._unlink_nolock()
        except Exception:
            pass


def install_signal_cleanup() -> None:
    """Chain segment cleanup in front of the current SIGTERM handler.

    Installed once, from the main thread only (``signal.signal`` is
    unavailable elsewhere — callers off the main thread fall back to
    the ``atexit`` layer).  The previous disposition is preserved: a
    Python handler (a server's drain sequence) still runs, the default
    action is re-raised so the exit status stays "killed by SIGTERM",
    an ignored signal stays ignored, and an unknown C-installed
    handler (``getsignal()`` returning ``None``) is left alone rather
    than converted into a kill.
    """
    global _signal_installed
    if _signal_installed:
        return
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        previous = signal.getsignal(signal.SIGTERM)

        def _handler(signum, frame):
            _cleanup_for_signal()
            if callable(previous):
                previous(signum, frame)
            elif previous == signal.SIG_DFL:
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)
            # SIG_IGN (process chose to survive SIGTERM) and None
            # (C-installed handler we cannot invoke): return without
            # re-raising.

        signal.signal(signal.SIGTERM, _handler)
        _signal_installed = True
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


# ------------------------------------------------------------ segments


class SharedSegment:
    """An owned shared-memory segment packing named numpy arrays.

    The constructor copies each array into the segment (64-byte
    aligned) and releases the owner's own mapping: the owner keeps only
    the *name*, which is all :meth:`unlink` needs, so no exported
    buffers pin the segment in the parent.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        fields: list[ArrayField] = []
        packed: list[np.ndarray] = []
        offset = 0
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = -(-offset // _ALIGN) * _ALIGN
            fields.append(
                ArrayField(key, array.dtype.str, array.shape, offset)
            )
            packed.append(array)
            offset += array.nbytes
        size = max(offset, 1)
        self._shm = shared_memory.SharedMemory(
            create=True, size=size, name=_next_name()
        )
        try:
            for field, array in zip(fields, packed):
                if array.nbytes:
                    view = np.ndarray(
                        array.shape,
                        dtype=array.dtype,
                        buffer=self._shm.buf,
                        offset=field.offset,
                    )
                    view[...] = array
                    del view
        except BaseException:
            self._shm.close()
            self._shm.unlink()
            raise
        self.name = self._shm.name
        self.nbytes = size
        self.descriptor = SegmentDescriptor(
            self.name, size, tuple(fields)
        )
        self._shm.close()  # owner keeps the name, not the mapping
        self._unlinked = False
        with _live_lock:
            _LIVE[self.name] = self

    def unlink(self) -> None:
        """Remove the segment (idempotent; safe if already gone)."""
        if self._unlinked:
            return
        self._unlinked = True
        with _live_lock:
            _LIVE.pop(self.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # someone else cleaned up first
            pass

    def _unlink_nolock(self) -> None:
        """Signal-path unlink: no registry lock, errors swallowed.

        Always attempts the OS unlink (rather than trusting
        ``_unlinked``) so a signal landing between the locked path's
        flag-set and its ``shm_unlink`` still removes the entry.
        """
        self._unlinked = True
        _LIVE.pop(self.name, None)  # atomic under the GIL
        try:
            self._shm.unlink()
        except OSError:
            pass

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.unlink()
        except Exception:
            pass


_tracker_patch_lock = make_lock("parallel.shm.tracker")


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach by name without handing ownership to the resource tracker.

    Pre-3.13 ``SharedMemory`` registers *attaches* with the resource
    tracker exactly like creations.  Un-registering afterwards is no
    fix: under ``fork`` the tracker daemon is shared with the creator,
    so the unregister would erase the *owner's* entry.  Instead the
    registration is suppressed for the duration of the attach (3.13+
    has ``track=False`` for exactly this).  The patch window is
    serialized under a lock, and the replacement suppresses only names
    under :data:`SEGMENT_PREFIX`, so a concurrent ``SharedMemory``
    create/attach on another thread still registers normally.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    with _tracker_patch_lock:
        original = resource_tracker.register

        def _register(rname, rtype, *args, **kwargs):
            base = os.path.basename(str(rname)).lstrip("/")
            if rtype == "shared_memory" and base.startswith(
                SEGMENT_PREFIX
            ):
                return None
            return original(rname, rtype, *args, **kwargs)

        resource_tracker.register = _register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class AttachedSegment:
    """An attacher's zero-copy view bundle over someone else's segment."""

    def __init__(self, descriptor: SegmentDescriptor):
        self._shm = _attach_untracked(descriptor.name)
        self.arrays: dict[str, np.ndarray] = {
            field.key: np.ndarray(
                field.shape,
                dtype=np.dtype(field.dtype),
                buffer=self._shm.buf,
                offset=field.offset,
            )
            for field in descriptor.fields
        }
        self._closed = False

    def close(self) -> None:
        """Drop the views and the mapping (never unlinks)."""
        if self._closed:
            return
        self._closed = True
        self.arrays.clear()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept a view
            pass


def attach(descriptor: SegmentDescriptor) -> AttachedSegment:
    """Attach to a published segment and build its array views."""
    return AttachedSegment(descriptor)
