""":class:`ParallelStrategy` — the executor behind the Strategy interface.

Drops the sharded executor into every place that accepts a
:class:`~repro.core.strategies.Strategy`: the engine's accelerated
planner, the CLI, the query server's worker pool, and the benchmark
harness.  Match semantics are exactly :class:`NaiveUdfStrategy`'s —
same per-pair relative budget, same result ordering, same
``rows_considered`` accounting — only the evaluation path differs
(vectorized banded kernels over table shards instead of a scalar DP per
row).  The differential and snapshot suites assert the equivalence.
"""

from __future__ import annotations

from repro.core.strategies import (
    NameCatalog,
    NameRecord,
    Strategy,
    StrategyStats,
)
from repro.matching.editdist import edit_distance_within
from repro.parallel.executor import ParallelMatchExecutor
from repro.parallel.table import EncodedNameTable


class ParallelStrategy(Strategy):
    """Sharded process-pool scan with banded batch kernels.

    ``workers`` defaults to the machine's CPU count; ``workers=1`` runs
    the same kernels inline (no pool) and is the fastest sequential
    scan.  The encoded table snapshot (and the pool) is built lazily on
    first use and rebuilt automatically when the catalog has grown.
    """

    name = "parallel"

    def __init__(
        self,
        catalog: NameCatalog,
        workers: int | None = None,
        start_method: str | None = None,
    ):
        super().__init__(catalog)
        self.workers = workers
        self._start_method = start_method
        self._executor: ParallelMatchExecutor | None = None
        self._snapshot_id = -1

    # ---------------------------------------------------------- lifecycle

    def executor(self) -> ParallelMatchExecutor:
        """The current executor, (re)built if the catalog changed."""
        if (
            self._executor is None
            or self._snapshot_id != self.catalog._next_id
        ):
            if self._executor is not None:
                self._executor.close()
            table = EncodedNameTable.from_catalog(self.catalog)
            self._executor = ParallelMatchExecutor(
                table,
                workers=self.workers,
                start_method=self._start_method,
            )
            self._snapshot_id = self.catalog._next_id
        return self._executor

    def close(self) -> None:
        """Release the worker pool (safe to call repeatedly)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
            self._snapshot_id = -1

    def __enter__(self) -> ParallelStrategy:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ queries

    def select(
        self,
        query: str,
        language: str = "english",
        languages: tuple[str, ...] = (),
    ) -> list[NameRecord]:
        stats = StrategyStats()
        query_phonemes = self._query_phonemes(query, language)
        executor = self.executor()
        if executor.table.encode_query(query_phonemes) is None:
            return self._select_fallback(query_phonemes, languages)
        ids, _dists = executor.match(
            query_phonemes, self.config.threshold, tuple(languages)
        )
        results = [self.catalog.record(int(i)) for i in ids]
        stats.rows_considered = executor.last_stats["rows"]
        stats.candidates_after_filters = executor.last_stats["candidates"]
        stats.udf_calls = executor.last_stats["candidates"]
        stats.results = len(results)
        self._finish(stats)
        return results

    def join(
        self, *, cross_language_only: bool = True
    ) -> list[tuple[NameRecord, NameRecord]]:
        stats = StrategyStats()
        executor = self.executor()
        ids_a, ids_b, _dists = executor.match_all_pairs(
            self.config.threshold,
            cross_language_only=cross_language_only,
        )
        results = [
            (self.catalog.record(int(a)), self.catalog.record(int(b)))
            for a, b in zip(ids_a, ids_b)
        ]
        stats.rows_considered = executor.last_stats["rows"]
        stats.candidates_after_filters = executor.last_stats["candidates"]
        stats.udf_calls = executor.last_stats["candidates"]
        stats.results = len(results)
        self._finish(stats)
        return results

    # ----------------------------------------------------------- fallback

    def _select_fallback(
        self,
        query_phonemes,
        languages: tuple[str, ...],
    ) -> list[NameRecord]:
        """Scalar banded scan for queries with out-of-table symbols.

        Unreachable with the default full-inventory encoding; kept so a
        narrowed symbol table can never cause wrong answers.
        """
        stats = StrategyStats()
        costs = self.matcher.costs
        threshold = self.config.threshold
        results = []
        for row in self.catalog.db.table(self.catalog.table_name).rows():
            stats.rows_considered += 1
            if not self._language_ok(row[2], languages):
                continue
            phonemes = self.catalog.phonemes_of(row[0])
            stats.udf_calls += 1
            budget = threshold * min(len(query_phonemes), len(phonemes))
            if (
                edit_distance_within(
                    query_phonemes, phonemes, budget, costs
                )
                is not None
            ):
                results.append(NameCatalog._to_record(row))
        stats.candidates_after_filters = stats.udf_calls
        stats.results = len(results)
        self._finish(stats)
        return results
