"""The shared-memory warm-pool match executor.

One :class:`ParallelMatchExecutor` owns an
:class:`~repro.parallel.table.EncodedNameTable` snapshot, a shared
memory segment holding it, and a persistent pool of worker processes
that *attach* to the segment (zero-copy views) instead of inheriting
pickles.  The pool stays warm across queries: per query the parent
sends each worker one small task message and receives one packed
result buffer back, so IPC cost is O(workers + matches), independent
of table size.

Scheduling (DESIGN.md §9): every query's row range splits into

* **affinity shards** — one contiguous slice per worker covering the
  first ``1 - STEAL_FRACTION`` of the work (row-balanced for selects,
  pair-balanced for joins).  A worker always starts on its own slice,
  so the bulk of the scan runs with zero coordination;
* **a stolen tail** — the remainder, cut into chunks of amortized size
  (:func:`_steal_chunk`) that workers claim from a shared atomic
  counter as they finish.  A straggler (CPU contention, unlucky
  candidate mix) loses only its tail share, not the whole query.

Failure semantics: a worker crash mid-query tears the pool down
(terminate + segment unlink) and raises
:class:`ParallelExecutionError`; the next query starts a fresh pool.  A
worker found dead *between* queries is respawned in place (it attaches
to the existing segment).  Cooperative deadlines are checked at
dispatch and while waiting for shard results; an expired deadline also
tears the pool down, because workers still computing the cancelled
epoch may not race the next query's steal counter.  Segment cleanup on
SIGTERM and interpreter exit is handled by :mod:`repro.parallel.shm`.

``workers <= 1`` (or a one-row table) runs the same shard functions
inline — no pool, no segment, no IPC, identical results: workers apply
the same per-pair budget ``threshold * min(|query|, |candidate|)`` as
the scalar strategies, and the kernel is bit-identical to the
reference DP.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass

import numpy as np
from multiprocessing import connection

from repro import deadline, obs
from repro.errors import DeadlineExceededError, ReproError
from repro.matching.batch import batch_edit_distances_within_encoded
from repro.parallel import shm as shm_mod
from repro.parallel.table import EncodedNameTable

#: Fraction of each query's work left unassigned for work stealing.
STEAL_FRACTION = 0.2

#: Rows per stolen chunk are never fewer than this: one chunk must
#: amortize a counter round-trip plus a kernel launch.
MIN_STEAL_CHUNK = 1024


class ParallelExecutionError(ReproError):
    """A shard task failed or the executor was used after close()."""


def _match_shard_on(
    table,
    start: int,
    stop: int,
    q: np.ndarray,
    threshold: float,
    allowed: np.ndarray | None,
):
    """Match ``q`` against rows [start, stop); returns ids + distances."""
    rows = np.arange(start, stop)
    if allowed is not None:
        rows = rows[np.isin(table.lang_codes[start:stop], allowed)]
    lens = table.lens[rows]
    budgets = threshold * np.minimum(len(q), lens)
    candidates = int(
        (np.abs(lens - len(q)) * table.encoded.min_indel <= budgets).sum()
    )
    dists = batch_edit_distances_within_encoded(
        q, table.codes, table.offsets, table.encoded, budgets, rows=rows
    )
    hit = np.isfinite(dists)
    return table.ids[rows[hit]], dists[hit], stop - start, candidates


def _join_shard_on(
    table,
    start: int,
    stop: int,
    threshold: float,
    cross_language_only: bool,
):
    """All matching pairs (i, j) with i in [start, stop) and j > i."""
    n = len(table.ids)
    ids_a: list[np.ndarray] = []
    ids_b: list[np.ndarray] = []
    dist_parts: list[np.ndarray] = []
    pairs = 0
    candidates = 0
    for i in range(start, stop):
        rows = np.arange(i + 1, n)
        pairs += rows.size
        if cross_language_only:
            rows = rows[table.lang_codes[i + 1 :] != table.lang_codes[i]]
        if rows.size == 0:
            continue
        q = table.codes[table.offsets[i] : table.offsets[i + 1]]
        lens = table.lens[rows]
        budgets = threshold * np.minimum(len(q), lens)
        candidates += int(
            (np.abs(lens - len(q)) * table.encoded.min_indel <= budgets)
            .sum()
        )
        dists = batch_edit_distances_within_encoded(
            q, table.codes, table.offsets, table.encoded, budgets, rows=rows
        )
        hit = np.isfinite(dists)
        if hit.any():
            matched = rows[hit]
            ids_a.append(np.full(len(matched), table.ids[i]))
            ids_b.append(table.ids[matched])
            dist_parts.append(dists[hit])
    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(ids_a) if ids_a else empty,
        np.concatenate(ids_b) if ids_b else empty,
        np.concatenate(dist_parts) if dist_parts else empty.astype(float),
        pairs,
        candidates,
    )


# ------------------------------------------------------------- workers


def _claim(counter) -> int:
    """Atomically claim the next steal-chunk index."""
    with counter.get_lock():
        index = counter.value
        counter.value += 1
    return index


def _worker_match(table, counter, task):
    (start, stop, steal_base, steal_chunk, steal_stop, q, threshold,
     allowed) = task
    parts = []
    if start < stop:
        parts.append(
            _match_shard_on(table, start, stop, q, threshold, allowed)
        )
    steals = 0
    while steal_chunk:
        lo = steal_base + _claim(counter) * steal_chunk
        if lo >= steal_stop:
            break
        hi = min(steal_stop, lo + steal_chunk)
        parts.append(
            _match_shard_on(table, lo, hi, q, threshold, allowed)
        )
        steals += 1
    empty = np.empty(0, dtype=np.int64)
    ids = (
        np.concatenate([p[0] for p in parts]) if parts else empty
    )
    dists = (
        np.concatenate([p[1] for p in parts])
        if parts
        else empty.astype(np.float64)
    )
    rows = sum(p[2] for p in parts)
    candidates = sum(p[3] for p in parts)
    return ids, dists, rows, candidates, steals


def _worker_join(table, counter, task):
    (start, stop, steal_base, steal_chunk, steal_stop, threshold,
     cross) = task
    parts = []
    if start < stop:
        parts.append(
            _join_shard_on(table, start, stop, threshold, cross)
        )
    steals = 0
    while steal_chunk:
        lo = steal_base + _claim(counter) * steal_chunk
        if lo >= steal_stop:
            break
        hi = min(steal_stop, lo + steal_chunk)
        parts.append(_join_shard_on(table, lo, hi, threshold, cross))
        steals += 1
    empty = np.empty(0, dtype=np.int64)
    ids_a = (
        np.concatenate([p[0] for p in parts]) if parts else empty
    )
    ids_b = (
        np.concatenate([p[1] for p in parts]) if parts else empty
    )
    dists = (
        np.concatenate([p[2] for p in parts])
        if parts
        else empty.astype(np.float64)
    )
    pairs = sum(p[3] for p in parts)
    candidates = sum(p[4] for p in parts)
    return ids_a, ids_b, dists, pairs, candidates, steals


def _worker_main(descriptor, counter, task_conn, result_conn, parent_pid) -> None:
    """Worker loop: attach once, serve tasks until EOF or parent death.

    The worker never owns the segment: it clears the (fork-inherited)
    live registry, resets SIGTERM to the default action, and only ever
    closes its own mapping.  Any deadline inherited from the parent
    (the pool may be started lazily inside a request's
    ``deadline_scope``) is disarmed — that deadline belongs to one
    parent request, not to every query this warm worker will ever
    serve; cancellation is enforced parent-side in ``_run_pool``.

    The idle wait polls with a timeout and watches ``parent_pid``: pipe
    EOF alone cannot signal parent death, because sibling workers hold
    fork-inherited copies of every earlier worker's write end — if the
    parent dies by signal (no atexit, daemon reaping never runs), the
    workers would otherwise keep each other's pipes open and block in
    ``recv()`` forever.
    """
    shm_mod._forget_all()
    deadline.clear()
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover
        pass
    table, attached = EncodedNameTable.attach(descriptor)
    try:
        while True:
            try:
                if not task_conn.poll(1.0):
                    if os.getppid() != parent_pid:
                        return  # orphaned: parent died without "stop"
                    continue
                message = task_conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "stop":
                return
            _kind, epoch, task = message
            try:
                if kind == "match":
                    payload = _worker_match(table, counter, task)
                else:
                    payload = _worker_join(table, counter, task)
                result_conn.send((epoch, True, payload))
            except Exception as exc:
                result_conn.send(
                    (epoch, False, f"{type(exc).__name__}: {exc}")
                )
    finally:
        del table
        attached.close()


@dataclass
class _Worker:
    """Parent-side handle: process + its task/result pipe ends."""

    process: multiprocessing.process.BaseProcess
    task_conn: connection.Connection
    result_conn: connection.Connection

    def close(self) -> None:
        try:
            self.task_conn.close()
        except OSError:
            pass
        try:
            self.result_conn.close()
        except OSError:
            pass


# ------------------------------------------------------------ executor


class ParallelMatchExecutor:
    """Shards an :class:`EncodedNameTable` across a warm process pool."""

    def __init__(
        self,
        table: EncodedNameTable,
        workers: int | None = None,
        start_method: str | None = None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        self.table = table
        self.workers = max(1, int(workers))
        self._start_method = start_method
        self._workers: list[_Worker] = []
        self._segment: shm_mod.SharedSegment | None = None
        self._descriptor = None
        self._ctx = None
        self._counter = None
        self._epoch = 0
        self._closed = False
        #: Work accounting of the most recent match()/match_all_pairs().
        self.last_stats: dict[str, int] = {}
        if self._pooled():
            self._start_pool()

    def _pooled(self) -> bool:
        return self.workers > 1 and len(self.table) > 1

    # ---------------------------------------------------------- lifecycle

    @staticmethod
    def _default_start_method() -> str:
        """``fork`` only when it is safe: single-threaded parent.

        Forking a multi-threaded process can deadlock children on
        locks held by other threads at fork time (and is deprecated on
        Python 3.12+), and a server starts pools lazily from worker
        threads.  ``spawn`` is cheap here by design — nothing
        table-sized is pickled; workers attach to the shared segment.
        """
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods and threading.active_count() == 1:
            return "fork"
        return "spawn"

    def _start_pool(self) -> None:
        method = self._start_method or self._default_start_method()
        self._ctx = multiprocessing.get_context(method)
        shm_mod.install_signal_cleanup()
        self._segment, self._descriptor = self.table.share()
        self._counter = self._ctx.Value("q", 0)
        self._workers = []
        try:
            for index in range(self.workers):
                self._workers.append(self._spawn_worker(index))
        except BaseException:
            self._teardown_pool()
            raise
        obs.incr("parallel.pool_starts")
        obs.incr("parallel.segment_bytes", self._segment.nbytes)

    def _spawn_worker(self, index: int) -> _Worker:
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._descriptor,
                self._counter,
                task_r,
                result_w,
                os.getpid(),
            ),
            name=f"repro-parallel-{index}",
            daemon=True,
        )
        process.start()
        task_r.close()
        result_w.close()
        return _Worker(process, task_w, result_r)

    def _teardown_pool(self) -> None:
        """Stop workers and unlink the segment (idempotent)."""
        for worker in self._workers:
            try:
                worker.task_conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=0.5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.close()
        self._workers = []
        if self._segment is not None:
            self._segment.unlink()
            self._segment = None
        self._descriptor = None

    def close(self) -> None:
        """Shut down the worker pool and its segment (idempotent)."""
        self._closed = True
        self._teardown_pool()

    def __enter__(self) -> ParallelMatchExecutor:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ----------------------------------------------------------- sharding

    @staticmethod
    def _split_range(start: int, stop: int, k: int) -> list[tuple[int, int]]:
        """K near-equal contiguous slices of [start, stop)."""
        n = stop - start
        if n <= 0 or k <= 0:
            return []
        k = min(k, n)
        bounds = start + np.linspace(0, n, k + 1).astype(np.int64)
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(k)
            if bounds[i] < bounds[i + 1]
        ]

    def _select_shards(self) -> list[tuple[int, int]]:
        """Contiguous row ranges, one per worker (row-balanced)."""
        return self._split_range(0, len(self.table), self.workers)

    def _join_shards(
        self, stop: int | None = None
    ) -> list[tuple[int, int]]:
        """Row ranges with near-equal pair counts (triangle-balanced).

        Row ``i`` of the self-join owns ``n - i - 1`` pairs, so equal
        row ranges would be lopsided; boundaries are placed on the pair
        prefix sums instead.  ``stop`` bounds the sharded row range
        (default: the whole triangle, rows [0, n-1)).
        """
        n = len(self.table)
        if n < 2:
            return []
        limit = n - 1 if stop is None else min(stop, n - 1)
        if limit <= 0:
            return []
        k = max(1, min(self.workers, limit))
        total = sum(n - i - 1 for i in range(limit))
        target = total / k
        shards = []
        start = 0
        acc = 0
        for i in range(limit):
            acc += n - i - 1
            if acc >= target * (len(shards) + 1) or i == limit - 1:
                shards.append((start, i + 1))
                start = i + 1
                if len(shards) == k:
                    break
        if start < limit:
            shards.append((start, limit))
        return shards

    @staticmethod
    def _steal_chunk(tail: int, workers: int) -> int:
        """Amortized chunk size for a stolen tail of ``tail`` rows."""
        if tail <= 0:
            return 0
        return max(MIN_STEAL_CHUNK, -(-tail // (workers * 4)))

    def _plan_select(self) -> list[tuple]:
        """Per-worker match tasks: affinity slice + shared steal tail."""
        n = len(self.table)
        static_stop = n - int(n * STEAL_FRACTION)
        chunk = self._steal_chunk(n - static_stop, self.workers)
        shards = self._split_range(0, static_stop, self.workers)
        shards += [(0, 0)] * (self.workers - len(shards))
        return [
            (start, stop, static_stop, chunk, n)
            for start, stop in shards
        ]

    def _plan_join(self) -> list[tuple]:
        """Per-worker join tasks: pair-balanced slice + steal tail.

        The tail is the *last* rows of the triangle — the cheapest ones
        (row ``i`` owns ``n - i - 1`` pairs), so stolen chunks are fine
        grained where fine grain is affordable.
        """
        n = len(self.table)
        tail_rows = int((n - 1) * (1 - (1 - STEAL_FRACTION) ** 0.5))
        static_stop = (n - 1) - tail_rows
        chunk = self._steal_chunk(tail_rows, self.workers)
        shards = self._join_shards(stop=static_stop)
        shards += [(0, 0)] * (self.workers - len(shards))
        return [
            (start, stop, static_stop, chunk, n - 1)
            for start, stop in shards
        ]

    # ------------------------------------------------------------ dispatch

    def _ensure_pool(self) -> None:
        """(Re)establish the warm pool: fresh after teardown, healed
        in place when an idle worker died."""
        if not self._workers:
            self._start_pool()
            return
        for index, worker in enumerate(self._workers):
            if not worker.process.is_alive():
                worker.close()
                self._workers[index] = self._spawn_worker(index)
                obs.incr("parallel.worker_respawns")

    def _drain_stale(self) -> None:
        """Discard results from epochs no one is waiting for."""
        for worker in self._workers:
            try:
                while worker.result_conn.poll():
                    worker.result_conn.recv()
            except (EOFError, OSError):
                pass

    def _run_pool(self, kind: str, extra: tuple) -> list:
        """One warm-pool round trip: plan, dispatch, collect.

        ``extra`` is the per-query suffix appended to every worker's
        shard tuple (query vector + threshold for matches, threshold +
        flags for joins).
        """
        self._ensure_pool()
        self._drain_stale()
        shards = (
            self._plan_select() if kind == "match" else self._plan_join()
        )
        tasks = [shard + extra for shard in shards]
        with self._counter.get_lock():
            self._counter.value = 0
        self._epoch += 1
        epoch = self._epoch
        for worker, task in zip(self._workers, tasks):
            try:
                worker.task_conn.send((kind, epoch, task))
            except (OSError, ValueError) as exc:
                self._teardown_pool()
                raise ParallelExecutionError(
                    f"worker pipe broke at dispatch: {exc}"
                ) from exc
        pending = {
            worker.result_conn: worker for worker in self._workers
        }
        results = []
        deadline_at = deadline.current()
        while pending:
            timeout = None
            if deadline_at is not None:
                timeout = deadline_at - time.monotonic()
                if timeout <= 0:
                    self._teardown_pool()
                    obs.incr("parallel.deadline_cancels")
                    raise DeadlineExceededError(
                        "request deadline exceeded while waiting for "
                        "parallel shards"
                    )
            sentinels = {
                worker.process.sentinel: worker
                for worker in pending.values()
            }
            ready = connection.wait(
                list(pending) + list(sentinels), timeout=timeout
            )
            for item in ready:
                if item in pending:
                    worker = pending[item]
                    try:
                        got_epoch, ok, payload = item.recv()
                    except (EOFError, OSError) as exc:
                        self._teardown_pool()
                        raise ParallelExecutionError(
                            f"worker result pipe broke: {exc}"
                        ) from exc
                    if got_epoch != epoch:
                        continue  # stale answer from a cancelled query
                    if not ok:
                        self._teardown_pool()
                        raise ParallelExecutionError(
                            f"shard execution failed: {payload}"
                        )
                    results.append(payload)
                    del pending[item]
                elif item in sentinels:
                    worker = sentinels[item]
                    if worker.result_conn in pending and not (
                        worker.result_conn.poll()
                    ):
                        code = worker.process.exitcode
                        self._teardown_pool()
                        raise ParallelExecutionError(
                            "worker died mid-query "
                            f"(exitcode {code})"
                        )
        return results

    def _guard(self) -> None:
        if self._closed:
            raise ParallelExecutionError("executor used after close()")
        deadline.check("parallel shard dispatch")

    # ------------------------------------------------------------- match

    def match(
        self,
        phonemes,
        threshold: float,
        languages: tuple[str, ...] = (),
    ) -> tuple[np.ndarray, np.ndarray]:
        """All (id, distance) pairs matching within the relative budget.

        Returns parallel arrays sorted by record id; decisions are
        identical to the sequential scan with the reference DP.
        """
        self._guard()
        table = self.table
        q = table.encode_query(phonemes)
        if q is None:
            raise ParallelExecutionError(
                "query contains a phoneme symbol outside the encoded "
                "cost tables"
            )
        allowed = table.language_codes_for(tuple(languages))
        empty = np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        if allowed is not None and allowed.size == 0:
            self.last_stats = {"rows": 0, "candidates": 0, "matches": 0}
            return empty
        with obs.timed("parallel.match"):
            if self._pooled():
                parts = self._run_pool(
                    "match", (q, float(threshold), allowed)
                )
                deadline.check("parallel shard merge")
                steals = sum(p[4] for p in parts)
            else:
                parts = [
                    _match_shard_on(
                        table, start, stop, q, float(threshold), allowed
                    )
                    for start, stop in self._select_shards()
                ]
                steals = 0
        if not parts:
            self.last_stats = {"rows": 0, "candidates": 0, "matches": 0}
            return empty
        ids = np.concatenate([p[0] for p in parts])
        dists = np.concatenate([p[1] for p in parts])
        rows = sum(p[2] for p in parts)
        candidates = sum(p[3] for p in parts)
        order = np.argsort(ids, kind="stable")
        ids, dists = ids[order], dists[order]
        self.last_stats = {
            "rows": rows,
            "candidates": candidates,
            "matches": len(ids),
        }
        obs.incr("parallel.queries")
        obs.incr("parallel.shards", len(parts))
        obs.incr("parallel.steal_chunks", steals)
        obs.incr("parallel.rows", rows)
        obs.incr("parallel.candidates", candidates)
        obs.incr("parallel.matches", len(ids))
        return ids, dists

    def match_all_pairs(
        self,
        threshold: float,
        *,
        cross_language_only: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The self equi-join: (ids_a, ids_b, distances), a < b by row.

        Row order within the table is insertion order, so ``ids_a`` is
        always the smaller record id of the pair.
        """
        self._guard()
        empty = np.empty(0, dtype=np.int64)
        with obs.timed("parallel.join"):
            if self._pooled():
                parts = self._run_pool(
                    "join",
                    (float(threshold), bool(cross_language_only)),
                )
                deadline.check("parallel shard merge")
                steals = sum(p[5] for p in parts)
            else:
                parts = [
                    _join_shard_on(
                        self.table,
                        start,
                        stop,
                        float(threshold),
                        bool(cross_language_only),
                    )
                    for start, stop in self._join_shards()
                ]
                steals = 0
        if not parts:
            self.last_stats = {"rows": 0, "candidates": 0, "matches": 0}
            return empty, empty.copy(), empty.astype(np.float64)
        ids_a = np.concatenate([p[0] for p in parts])
        ids_b = np.concatenate([p[1] for p in parts])
        dists = np.concatenate([p[2] for p in parts])
        pairs = sum(p[3] for p in parts)
        candidates = sum(p[4] for p in parts)
        order = np.lexsort((ids_b, ids_a))
        ids_a, ids_b, dists = ids_a[order], ids_b[order], dists[order]
        self.last_stats = {
            "rows": pairs,
            "candidates": candidates,
            "matches": len(ids_a),
        }
        obs.incr("parallel.join_queries")
        obs.incr("parallel.shards", len(parts))
        obs.incr("parallel.steal_chunks", steals)
        obs.incr("parallel.rows", pairs)
        obs.incr("parallel.candidates", candidates)
        obs.incr("parallel.matches", len(ids_a))
        return ids_a, ids_b, dists
