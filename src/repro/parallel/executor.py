"""The sharded process-pool match executor.

One :class:`ParallelMatchExecutor` owns a worker pool and an
:class:`~repro.parallel.table.EncodedNameTable` snapshot.  Selections
split the table's row range into one contiguous shard per worker; joins
split the pair triangle into shards of near-equal *pair* count (early
rows pair with every later row, so equal row ranges would be lopsided).
Workers run the vectorized banded kernel
(:func:`~repro.matching.batch.batch_edit_distances_within_encoded`)
over their shard and return matched ids + distances — a few hundred
bytes per shard, regardless of table size.

Shard protocol (DESIGN.md §9):

* the table crosses the process boundary exactly once, at pool start —
  inherited under ``fork``, pickled through the initializer under
  ``spawn``; per-query traffic is the encoded query vector and the
  threshold;
* ``workers <= 1`` (or a one-row table) runs the same shard function
  inline — no pool, no IPC, identical results;
* results are exact: workers apply the same per-pair budget
  ``threshold * min(|query|, |candidate|)`` as the scalar strategies,
  and the kernel is bit-identical to the reference DP.

Cooperative deadlines (``repro.deadline``) are thread-local and do not
cross into worker processes; the executor checks the deadline at shard
dispatch and merge instead, and the inline path keeps the full per-row
granularity.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np

from repro import deadline, obs
from repro.errors import ReproError
from repro.matching.batch import batch_edit_distances_within_encoded
from repro.parallel.table import EncodedNameTable


class ParallelExecutionError(ReproError):
    """A shard task failed or the executor was used after close()."""


#: Per-process table for pool workers.  Under ``fork`` the parent sets
#: it just before creating the pool so children inherit it copy-on-write;
#: under ``spawn`` the pool initializer assigns it from its pickled
#: argument.  Worker processes never mutate it.
_WORKER_TABLE: EncodedNameTable | None = None


def _init_worker(table: EncodedNameTable | None = None) -> None:
    global _WORKER_TABLE
    if table is not None:
        _WORKER_TABLE = table


def _match_shard_on(
    table: EncodedNameTable,
    start: int,
    stop: int,
    q: np.ndarray,
    threshold: float,
    allowed: np.ndarray | None,
):
    """Match ``q`` against rows [start, stop); returns ids + distances."""
    rows = np.arange(start, stop)
    if allowed is not None:
        rows = rows[np.isin(table.lang_codes[start:stop], allowed)]
    lens = table.lens[rows]
    budgets = threshold * np.minimum(len(q), lens)
    candidates = int(
        (np.abs(lens - len(q)) * table.encoded.min_indel <= budgets).sum()
    )
    dists = batch_edit_distances_within_encoded(
        q, table.codes, table.offsets, table.encoded, budgets, rows=rows
    )
    hit = np.isfinite(dists)
    return table.ids[rows[hit]], dists[hit], stop - start, candidates


def _join_shard_on(
    table: EncodedNameTable,
    start: int,
    stop: int,
    threshold: float,
    cross_language_only: bool,
):
    """All matching pairs (i, j) with i in [start, stop) and j > i."""
    n = len(table)
    ids_a: list[np.ndarray] = []
    ids_b: list[np.ndarray] = []
    dist_parts: list[np.ndarray] = []
    pairs = 0
    candidates = 0
    for i in range(start, stop):
        rows = np.arange(i + 1, n)
        pairs += rows.size
        if cross_language_only:
            rows = rows[table.lang_codes[i + 1 :] != table.lang_codes[i]]
        if rows.size == 0:
            continue
        q = table.codes[table.offsets[i] : table.offsets[i + 1]]
        lens = table.lens[rows]
        budgets = threshold * np.minimum(len(q), lens)
        candidates += int(
            (np.abs(lens - len(q)) * table.encoded.min_indel <= budgets)
            .sum()
        )
        dists = batch_edit_distances_within_encoded(
            q, table.codes, table.offsets, table.encoded, budgets, rows=rows
        )
        hit = np.isfinite(dists)
        if hit.any():
            matched = rows[hit]
            ids_a.append(np.full(len(matched), table.ids[i]))
            ids_b.append(table.ids[matched])
            dist_parts.append(dists[hit])
    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(ids_a) if ids_a else empty,
        np.concatenate(ids_b) if ids_b else empty,
        np.concatenate(dist_parts) if dist_parts else empty.astype(float),
        pairs,
        candidates,
    )


def _pool_match_shard(args):
    return _match_shard_on(_WORKER_TABLE, *args)


def _pool_join_shard(args):
    return _join_shard_on(_WORKER_TABLE, *args)


class ParallelMatchExecutor:
    """Shards an :class:`EncodedNameTable` across a process pool."""

    def __init__(
        self,
        table: EncodedNameTable,
        workers: int | None = None,
        start_method: str | None = None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        self.table = table
        self.workers = max(1, int(workers))
        self._start_method = start_method
        self._pool = None
        self._closed = False
        #: Work accounting of the most recent match()/match_all_pairs().
        self.last_stats: dict[str, int] = {}
        if self.workers > 1 and len(table) > 1:
            self._start_pool()

    # ---------------------------------------------------------- lifecycle

    def _start_pool(self) -> None:
        global _WORKER_TABLE
        methods = multiprocessing.get_all_start_methods()
        method = self._start_method or (
            "fork" if "fork" in methods else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        if method == "fork":
            # Children inherit the table copy-on-write; nothing pickles.
            _WORKER_TABLE = self.table
            try:
                self._pool = ctx.Pool(
                    self.workers, initializer=_init_worker
                )
            finally:
                _WORKER_TABLE = None
        else:
            self._pool = ctx.Pool(
                self.workers,
                initializer=_init_worker,
                initargs=(self.table,),
            )
        obs.incr("parallel.pool_starts")

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> ParallelMatchExecutor:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ----------------------------------------------------------- sharding

    def _select_shards(self) -> list[tuple[int, int]]:
        """Contiguous row ranges, one per worker (row-balanced)."""
        n = len(self.table)
        k = max(1, min(self.workers, n))
        bounds = np.linspace(0, n, k + 1).astype(np.int64)
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(k)
            if bounds[i] < bounds[i + 1]
        ]

    def _join_shards(self) -> list[tuple[int, int]]:
        """Row ranges with near-equal pair counts (triangle-balanced)."""
        n = len(self.table)
        if n < 2:
            return []
        k = max(1, min(self.workers, n - 1))
        total = n * (n - 1) // 2
        target = total / k
        shards = []
        start = 0
        acc = 0
        for i in range(n - 1):
            acc += n - i - 1
            if acc >= target * (len(shards) + 1) or i == n - 2:
                shards.append((start, i + 1))
                start = i + 1
                if len(shards) == k:
                    break
        if start < n - 1:
            shards.append((start, n - 1))
        return shards

    # ------------------------------------------------------------- match

    def _run(self, pool_fn, inline_fn, tasks: list[tuple]) -> list:
        if self._closed:
            raise ParallelExecutionError(
                "executor used after close()"
            )
        deadline.check("parallel shard dispatch")
        if self._pool is None:
            return [inline_fn(self.table, *task) for task in tasks]
        try:
            results = self._pool.map(pool_fn, tasks)
        except ReproError:
            raise
        except Exception as exc:  # worker crash, pool torn down, ...
            raise ParallelExecutionError(
                f"shard execution failed: {exc}"
            ) from exc
        deadline.check("parallel shard merge")
        return results

    def match(
        self,
        phonemes,
        threshold: float,
        languages: tuple[str, ...] = (),
    ) -> tuple[np.ndarray, np.ndarray]:
        """All (id, distance) pairs matching within the relative budget.

        Returns parallel arrays sorted by record id; decisions are
        identical to the sequential scan with the reference DP.
        """
        table = self.table
        q = table.encode_query(phonemes)
        if q is None:
            raise ParallelExecutionError(
                "query contains a phoneme symbol outside the encoded "
                "cost tables"
            )
        allowed = table.language_codes_for(tuple(languages))
        empty = np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        if allowed is not None and allowed.size == 0:
            self.last_stats = {"rows": 0, "candidates": 0, "matches": 0}
            return empty
        tasks = [
            (start, stop, q, float(threshold), allowed)
            for start, stop in self._select_shards()
        ]
        with obs.timed("parallel.match"):
            parts = self._run(_pool_match_shard, _match_shard_on, tasks)
        if not parts:
            self.last_stats = {"rows": 0, "candidates": 0, "matches": 0}
            return empty
        ids = np.concatenate([p[0] for p in parts])
        dists = np.concatenate([p[1] for p in parts])
        rows = sum(p[2] for p in parts)
        candidates = sum(p[3] for p in parts)
        order = np.argsort(ids, kind="stable")
        ids, dists = ids[order], dists[order]
        self.last_stats = {
            "rows": rows,
            "candidates": candidates,
            "matches": len(ids),
        }
        obs.incr("parallel.queries")
        obs.incr("parallel.shards", len(tasks))
        obs.incr("parallel.rows", rows)
        obs.incr("parallel.candidates", candidates)
        obs.incr("parallel.matches", len(ids))
        return ids, dists

    def match_all_pairs(
        self,
        threshold: float,
        *,
        cross_language_only: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The self equi-join: (ids_a, ids_b, distances), a < b by row.

        Row order within the table is insertion order, so ``ids_a`` is
        always the smaller record id of the pair.
        """
        tasks = [
            (start, stop, float(threshold), bool(cross_language_only))
            for start, stop in self._join_shards()
        ]
        with obs.timed("parallel.join"):
            parts = self._run(_pool_join_shard, _join_shard_on, tasks)
        empty = np.empty(0, dtype=np.int64)
        if not parts:
            self.last_stats = {"rows": 0, "candidates": 0, "matches": 0}
            return empty, empty.copy(), empty.astype(np.float64)
        ids_a = np.concatenate([p[0] for p in parts])
        ids_b = np.concatenate([p[1] for p in parts])
        dists = np.concatenate([p[2] for p in parts])
        pairs = sum(p[3] for p in parts)
        candidates = sum(p[4] for p in parts)
        order = np.lexsort((ids_b, ids_a))
        ids_a, ids_b, dists = ids_a[order], ids_b[order], dists[order]
        self.last_stats = {
            "rows": pairs,
            "candidates": candidates,
            "matches": len(ids_a),
        }
        obs.incr("parallel.join_queries")
        obs.incr("parallel.shards", len(tasks))
        obs.incr("parallel.rows", pairs)
        obs.incr("parallel.candidates", candidates)
        obs.incr("parallel.matches", len(ids_a))
        return ids_a, ids_b, dists
