"""The shared-memory-shippable encoded phoneme table.

:class:`EncodedNameTable` is the flat-array snapshot the parallel
executor shards: phoneme strings as one CSR int-code array pair, record
ids, and language codes.  Everything is numpy or plain tuples, and the
table publishes itself into one ``multiprocessing.shared_memory``
segment (:meth:`share`) that worker processes attach to by name
(:meth:`attach`) — no per-row Python objects and no table-sized pickles
ever cross a process boundary, under either start method.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.matching.batch import EncodedCosts
from repro.matching.costs import CostModel
from repro.parallel import shm as shm_mod


@dataclass(frozen=True)
class SharedTableDescriptor:
    """The picklable handle a worker needs to attach a shared table."""

    segment: shm_mod.SegmentDescriptor
    languages: tuple[str, ...]
    min_indel: float


class _AttachedCosts:
    """Kernel-facing cost tables as zero-copy views over a segment.

    Quacks like :class:`~repro.matching.batch.EncodedCosts` for the
    batch kernels (``sub``/``ins``/``dele``/``min_indel``); it carries
    no ``CostModel`` and no symbol index, which workers never need —
    queries arrive pre-encoded.
    """

    __slots__ = ("sub", "ins", "dele", "min_indel")

    def __init__(self, sub, ins, dele, min_indel: float):
        self.sub = sub
        self.ins = ins
        self.dele = dele
        self.min_indel = min_indel


def _default_symbols(extra: Iterable[str] = ()) -> list[str]:
    """The full phoneme inventory (plus any out-of-inventory extras).

    Using the whole inventory makes the code space query-independent:
    any string :func:`repro.phonetics.parse.parse_ipa` produces encodes
    without rebuilding the cost tables.
    """
    from repro.phonetics.inventory import INVENTORY

    symbols = list(INVENTORY)
    seen = set(symbols)
    for sym in extra:
        if sym not in seen:
            seen.add(sym)
            symbols.append(sym)
    return symbols


class EncodedNameTable:
    """An immutable encoded snapshot of ``(id, language, phonemes)`` rows."""

    def __init__(
        self,
        encoded: EncodedCosts,
        codes: np.ndarray,
        offsets: np.ndarray,
        ids: np.ndarray,
        lang_codes: np.ndarray,
        languages: tuple[str, ...],
    ):
        self.encoded = encoded
        self.codes = codes
        self.offsets = offsets
        self.ids = ids
        self.lang_codes = lang_codes
        self.languages = languages
        self.lens = np.diff(offsets)

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def from_rows(
        cls,
        costs: CostModel,
        rows: Iterable[tuple[int, str, tuple[str, ...]]],
        symbols: Iterable[str] | None = None,
    ) -> EncodedNameTable:
        """Build from ``(record_id, language, phoneme_tuple)`` rows."""
        rows = list(rows)
        if symbols is None:
            extra = {
                tok for _id, _lang, phonemes in rows for tok in phonemes
            }
            symbols = _default_symbols(extra)
        encoded = EncodedCosts(costs, list(symbols))
        lang_index: dict[str, int] = {}
        ids = np.empty(len(rows), dtype=np.int64)
        lang_codes = np.empty(len(rows), dtype=np.int16)
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        chunks = []
        for pos, (record_id, language, phonemes) in enumerate(rows):
            ids[pos] = record_id
            language = language.lower()
            if language not in lang_index:
                lang_index[language] = len(lang_index)
            lang_codes[pos] = lang_index[language]
            chunk = encoded.encode(phonemes)
            chunks.append(chunk)
            offsets[pos + 1] = offsets[pos] + len(chunk)
        codes = (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=np.int64)
        )
        return cls(
            encoded,
            codes,
            offsets,
            ids,
            lang_codes,
            tuple(lang_index),
        )

    @classmethod
    def from_catalog(cls, catalog) -> EncodedNameTable:
        """Snapshot a :class:`~repro.core.strategies.NameCatalog`."""
        rows = [
            (record.id, record.language, catalog.phonemes_of(record.id))
            for record in catalog.records()
        ]
        return cls.from_rows(catalog.matcher.costs, rows)

    # --------------------------------------------------- shared memory

    def share(
        self,
    ) -> tuple[shm_mod.SharedSegment, SharedTableDescriptor]:
        """Publish the table into one owned shared-memory segment.

        Returns the owning segment (whose ``unlink`` ends its life) and
        the small picklable descriptor workers attach with.
        """
        segment = shm_mod.SharedSegment(
            {
                "codes": self.codes,
                "offsets": self.offsets,
                "ids": self.ids,
                "lang_codes": self.lang_codes,
                "lens": self.lens,
                "sub": self.encoded.sub,
                "ins": self.encoded.ins,
                "dele": self.encoded.dele,
            }
        )
        descriptor = SharedTableDescriptor(
            segment.descriptor, self.languages, self.encoded.min_indel
        )
        return segment, descriptor

    @classmethod
    def attach(
        cls, descriptor: SharedTableDescriptor
    ) -> tuple[EncodedNameTable, shm_mod.AttachedSegment]:
        """Rebuild a zero-copy view of a shared table in this process.

        The returned table is read-only and kernel-complete (matching
        and joins work); ``encode_query`` does not — workers receive
        queries already encoded.  The caller owns the returned
        :class:`~repro.parallel.shm.AttachedSegment` and must keep it
        alive as long as the table is used.
        """
        attached = shm_mod.attach(descriptor.segment)
        arrays = attached.arrays
        table = cls.__new__(cls)
        table.encoded = _AttachedCosts(
            arrays["sub"],
            arrays["ins"],
            arrays["dele"],
            descriptor.min_indel,
        )
        table.codes = arrays["codes"]
        table.offsets = arrays["offsets"]
        table.ids = arrays["ids"]
        table.lang_codes = arrays["lang_codes"]
        table.lens = arrays["lens"]
        table.languages = descriptor.languages
        return table, attached

    def encode_query(self, phonemes) -> np.ndarray | None:
        """Query phonemes -> code vector; None if a symbol is unknown.

        Unknown symbols are possible only for cost-model symbol sets
        narrower than the inventory; callers fall back to the scalar
        kernels in that case.
        """
        index = self.encoded.index
        try:
            return np.fromiter(
                (index[t] for t in phonemes),
                dtype=np.int64,
                count=len(phonemes),
            )
        except KeyError:
            return None

    def language_codes_for(
        self, languages: tuple[str, ...]
    ) -> np.ndarray | None:
        """Allowed-language codes for an INLANGUAGES filter (None = all)."""
        if not languages:
            return None
        wanted = {lang.lower() for lang in languages}
        return np.fromiter(
            (
                code
                for code, name in enumerate(self.languages)
                if name in wanted
            ),
            dtype=np.int16,
        )
