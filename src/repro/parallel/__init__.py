"""``repro.parallel`` — the process-pool sharded match executor.

The paper's Section 5 viability argument is that LexEQUAL matching must
stay cheap enough to run inside a DBMS over ~200k rows.  This package
closes the remaining gap between the pure-Python strategies and that
bar: it shards a :class:`~repro.core.strategies.NameCatalog`'s phoneme
table across N worker processes and evaluates each shard with the
vectorized banded kernels of :mod:`repro.matching.batch`.

Design (DESIGN.md §9):

* **encode once, ship int arrays** — the catalog is compiled into an
  :class:`EncodedNameTable` (CSR ``codes``/``offsets`` int arrays plus
  ids, lengths and language codes, and the
  :class:`~repro.matching.batch.EncodedCosts` lookup tables).  Workers
  receive the table exactly once — inherited copy-on-write under the
  ``fork`` start method, pickled through the pool initializer under
  ``spawn`` — and every query afterwards ships only a tiny code vector;
* **exact results** — the per-shard kernel is
  :func:`~repro.matching.batch.batch_edit_distances_within_encoded`,
  which is bit-identical to the reference DP (differential suite), so
  :class:`ParallelStrategy` returns exactly the
  :class:`~repro.core.strategies.NaiveUdfStrategy` match set;
* **degrades to inline** — with ``workers <= 1`` no pool is created and
  the same kernels run in-process, so the strategy is also the fastest
  *sequential* scan.
"""

from repro.parallel.executor import ParallelMatchExecutor
from repro.parallel.table import EncodedNameTable
from repro.parallel.strategy import ParallelStrategy

__all__ = [
    "EncodedNameTable",
    "ParallelMatchExecutor",
    "ParallelStrategy",
]
