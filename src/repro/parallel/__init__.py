"""``repro.parallel`` — the process-pool sharded match executor.

The paper's Section 5 viability argument is that LexEQUAL matching must
stay cheap enough to run inside a DBMS over ~200k rows.  This package
closes the remaining gap between the pure-Python strategies and that
bar: it shards a :class:`~repro.core.strategies.NameCatalog`'s phoneme
table across N worker processes and evaluates each shard with the
vectorized banded kernels of :mod:`repro.matching.batch`.

Design (DESIGN.md §9):

* **encode once, attach everywhere** — the catalog is compiled into an
  :class:`EncodedNameTable` (CSR ``codes``/``offsets`` int arrays plus
  ids, lengths, language codes and the cost matrices) and published
  *once* into a ``multiprocessing.shared_memory`` segment
  (:mod:`repro.parallel.shm`).  Workers attach by name and build
  zero-copy numpy views — nothing table-sized is ever pickled or
  copy-on-write duplicated, under either start method;
* **warm pool, batched results** — a persistent worker pool with shard
  affinity serves every query; each worker returns one packed numpy
  buffer per query (ids, distances, counters), never per-pair pickles,
  and a shared atomic counter lets finished workers *steal* tail chunks
  from slow ones so shard imbalance is amortized;
* **exact results** — the per-shard kernel is
  :func:`~repro.matching.batch.batch_edit_distances_within_encoded`,
  a padded all-candidates banded DP that is bit-identical to the
  reference DP (differential suite), so :class:`ParallelStrategy`
  returns exactly the
  :class:`~repro.core.strategies.NaiveUdfStrategy` match set;
* **degrades to inline** — with ``workers <= 1`` no pool or segment is
  created and the same kernels run in-process, so the strategy is also
  the fastest *sequential* scan;
* **explicit lifecycle** — segments are unlinked on executor
  ``close()``, at interpreter exit, and on SIGTERM; any worker crash
  mid-query tears the pool down (and its segment stays owned by the
  parent, so nothing leaks in ``/dev/shm``).
"""

from repro.parallel.executor import ParallelMatchExecutor
from repro.parallel.table import EncodedNameTable
from repro.parallel.strategy import ParallelStrategy

__all__ = [
    "EncodedNameTable",
    "ParallelMatchExecutor",
    "ParallelStrategy",
]
