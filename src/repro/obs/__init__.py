"""``repro.obs`` — the observability layer.

Lightweight counters, timers and histograms behind a pluggable
:class:`~repro.obs.registry.MetricsRegistry`; disabled by default via a
no-op registry so instrumented hot paths stay cheap.  See
:mod:`repro.obs.registry` for the design and
:mod:`repro.minidb.explain` for the EXPLAIN/EXPLAIN ANALYZE side.
"""

from repro.obs.registry import (
    Counter,
    Histogram,
    InMemoryMetricsRegistry,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
    counter,
    disable,
    enable,
    format_snapshot,
    get_registry,
    histogram,
    incr,
    is_enabled,
    observe,
    set_registry,
    snapshot,
    timed,
    timer,
)

__all__ = [
    "Counter",
    "Histogram",
    "InMemoryMetricsRegistry",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Timer",
    "counter",
    "disable",
    "enable",
    "format_snapshot",
    "get_registry",
    "histogram",
    "incr",
    "is_enabled",
    "observe",
    "set_registry",
    "snapshot",
    "timed",
    "timer",
]
