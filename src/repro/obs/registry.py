"""The metrics registry: counters, timers and histograms.

The engine's efficiency story (paper Section 5) is about *work avoided*
— rows pruned by the q-gram filters, UDF invocations skipped thanks to
the phonetic index, DP cells never filled by the banded cut-off.  This
module gives every layer a uniform, cheap way to account for that work:

* :class:`Counter` — a monotonically increasing count (rows scanned,
  B+ tree probes, filter rejections);
* :class:`Timer` — accumulated wall-clock time over named code blocks;
* :class:`Histogram` — summary statistics (count/total/min/max/mean)
  of observed values (candidate-list sizes, DP cells per call).

Instruments live in a :class:`MetricsRegistry`.  Two implementations:

* :class:`InMemoryMetricsRegistry` — the thread-safe default used when
  metrics are enabled; instrument creation and updates take a lock, so
  concurrent strategies/executors can share one registry;
* :class:`NullMetricsRegistry` — the disabled fallback.  All its
  instruments are process-wide singletons whose mutators are no-ops, so
  instrumented hot paths cost a dict-free method call when metrics are
  off (measured < 5% on the Table 1 benchmark).

The module-level API (:func:`enable`, :func:`disable`, :func:`incr`,
:func:`observe`, :func:`timed`, :func:`snapshot`) routes through one
process-global registry; libraries call it unconditionally and pay
nothing unless the application opted in.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.locks import make_lock


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self._value = 0.0
        self._lock = lock or make_lock("obs.instrument")

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self._value:g})"


class Timer:
    """Accumulated wall-clock time over a named code block."""

    __slots__ = ("name", "count", "seconds", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self._lock = lock or make_lock("obs.instrument")

    def record(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.seconds += seconds

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(time.perf_counter() - start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer({self.name}: {self.count}x {self.seconds:.6f}s)"


class Histogram:
    """Streaming summary statistics of observed values."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock | None = None):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = lock or make_lock("obs.instrument")

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}: n={self.count} mean={self.mean})"


class _NullInstrument:
    """Shared do-nothing counter/timer/histogram for the disabled path."""

    __slots__ = ()

    name = ""
    value = 0.0
    count = 0
    seconds = 0.0
    total = 0.0
    min = None
    max = None
    mean = None

    def inc(self, amount: float = 1) -> None:
        pass

    def record(self, seconds: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @contextmanager
    def time(self):
        yield self


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Interface of a metrics registry (see module docstring)."""

    enabled = True

    def counter(self, name: str) -> Counter:
        raise NotImplementedError

    def timer(self, name: str) -> Timer:
        raise NotImplementedError

    def histogram(self, name: str) -> Histogram:
        raise NotImplementedError

    def snapshot(self) -> dict:
        """All instruments as one JSON-serializable dict."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class NullMetricsRegistry(MetricsRegistry):
    """The no-op registry installed by default: metrics cost ~nothing."""

    enabled = False

    def counter(self, name: str):
        return _NULL_INSTRUMENT

    def timer(self, name: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str):
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"enabled": False, "counters": {}, "timers": {},
                "histograms": {}}

    def reset(self) -> None:
        pass


class InMemoryMetricsRegistry(MetricsRegistry):
    """Thread-safe in-memory registry (the enabled default)."""

    enabled = True

    def __init__(self) -> None:
        self._lock = make_lock("obs.registry")
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(
                    name, Counter(name, self._lock)
                )
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._timers.setdefault(
                    name, Timer(name, self._lock)
                )
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, self._lock)
                )
        return instrument

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "enabled": True,
                "counters": {
                    name: c.value
                    for name, c in sorted(self._counters.items())
                },
                "timers": {
                    name: {"count": t.count, "seconds": t.seconds}
                    for name, t in sorted(self._timers.items())
                },
                "histograms": {
                    name: {
                        "count": h.count,
                        "total": h.total,
                        "min": h.min,
                        "max": h.max,
                        "mean": h.mean,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._histograms.clear()


_registry: MetricsRegistry = NullMetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry all instrumented code routes through."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install a registry (e.g. an application's own); returns it."""
    global _registry
    _registry = registry
    return registry


def enable() -> MetricsRegistry:
    """Start collecting: install a fresh thread-safe registry.

    Idempotent in spirit — re-enabling over an already-enabled registry
    keeps it (and its accumulated values).
    """
    if not _registry.enabled:
        set_registry(InMemoryMetricsRegistry())
    return _registry


def disable() -> None:
    """Stop collecting: install the no-op registry (drops all values)."""
    set_registry(NullMetricsRegistry())


def is_enabled() -> bool:
    return _registry.enabled


def counter(name: str):
    return _registry.counter(name)


def timer(name: str):
    return _registry.timer(name)


def histogram(name: str):
    return _registry.histogram(name)


def incr(name: str, amount: float = 1) -> None:
    """Increment a counter on the global registry (no-op when disabled)."""
    registry = _registry
    if registry.enabled:
        registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the global registry."""
    registry = _registry
    if registry.enabled:
        registry.histogram(name).observe(value)


@contextmanager
def timed(name: str):
    """Time a code block into the global registry's ``name`` timer."""
    registry = _registry
    if not registry.enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        registry.timer(name).record(time.perf_counter() - start)


def snapshot() -> dict:
    """Snapshot of the global registry (JSON-serializable)."""
    return _registry.snapshot()


def format_snapshot(data: dict | None = None) -> str:
    """Human-readable rendering of a snapshot (``repro stats`` output)."""
    data = snapshot() if data is None else data
    lines: list[str] = []
    if not data.get("enabled", False):
        return "metrics disabled (enable with repro.obs.enable())"
    counters = data.get("counters", {})
    timers = data.get("timers", {})
    histograms = data.get("histograms", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:g}")
    if timers:
        lines.append("timers:")
        width = max(len(name) for name in timers)
        for name, t in timers.items():
            lines.append(
                f"  {name:<{width}}  {t['count']}x  {t['seconds']:.6f}s"
            )
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name, h in histograms.items():
            mean = h["mean"]
            lines.append(
                f"  {name:<{width}}  n={h['count']} min={h['min']} "
                f"max={h['max']} mean={'-' if mean is None else f'{mean:.2f}'}"
            )
    if not lines:
        return "no metrics recorded"
    return "\n".join(lines)
