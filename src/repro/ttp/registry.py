"""Language registry and script detection.

The registry is the "Languages with IPA transformations, S_L (as global
resource)" of paper Figure 8: LexEQUAL consults it to decide whether both
operands can be transformed, returning ``NORESOURCE`` otherwise.

Script detection (:func:`detect_language`) implements the pragmatic rule
the paper discusses in Section 2.1: many languages are identifiable from
their Unicode blocks (Devanagari → Hindi, Tamil → Tamil, Greek → Greek),
while Latin-script text is ambiguous and defaults to English unless the
caller tags it otherwise.
"""

from __future__ import annotations

import unicodedata
from collections.abc import Iterable

from repro import faults, obs
from repro.errors import TTPError, UnsupportedLanguageError
from repro.locks import make_lock
from repro.phonetics.parse import PhonemeString
from repro.ttp.base import TTPConverter, builtin_converters


class TTPRegistry:
    """A mutable language → converter registry with a conversion cache.

    The cache matters: quality sweeps transform the same lexicon strings
    for every parameter setting, and the database strategies transform
    every stored name once at load time.

    Thread-safety: the registry is shared by all of a query server's
    worker threads, so cache and converter mutations take a lock.  The
    *hit* path stays lock-free — a single ``dict.get`` on a dict that
    only ever grows is atomic under the GIL — and a miss converts
    outside the lock (conversions run in parallel; a racing duplicate
    conversion just loses the publish and adopts the winner's value, so
    callers always see one canonical ``PhonemeString`` per key).
    """

    def __init__(
        self, converters: Iterable[TTPConverter] = (), *, fold: bool = True
    ):
        self._converters: dict[str, TTPConverter] = {}
        self._cache: dict[tuple[str, str], PhonemeString] = {}
        self._lock = make_lock("ttp.registry")
        #: Whether transforms are folded onto the canonical matching
        #: alphabet (paper Section 4.1 preprocessing).  Raw converter
        #: output is always available via ``converter_for(...).to_phonemes``.
        self.fold = fold
        for conv in converters:
            self.register(conv)

    def register(self, converter: TTPConverter) -> None:
        """Add or replace the converter for its language."""
        if not converter.language:
            raise TTPError("converter has no language identifier")
        with self._lock:
            self._converters[converter.language.lower()] = converter

    def unregister(self, language: str) -> None:
        """Remove a language (subsequent lookups raise/NORESOURCE)."""
        with self._lock:
            self._converters.pop(language.lower(), None)

    def supports(self, language: str) -> bool:
        """True if a converter is registered for ``language``."""
        return language.lower() in self._converters

    def converter_for(self, language: str) -> TTPConverter:
        """The converter for ``language``.

        Raises :class:`~repro.errors.UnsupportedLanguageError` when the
        language has no registered converter (the ``NORESOURCE`` case).
        """
        try:
            return self._converters[language.lower()]
        except KeyError:
            raise UnsupportedLanguageError(language) from None

    def transform(self, text: str, language: str) -> PhonemeString:
        """``transform(S, L)`` of paper Figure 8, with caching.

        Output is folded onto the canonical matching alphabet unless the
        registry was built with ``fold=False``.
        """
        key = (language.lower(), text)
        # Failpoint before the cache lookup so fault schedules keep
        # injecting per-language failures even for warmed strings (the
        # chaos harness relies on this for degraded-response coverage).
        faults.fire("ttp.transform", language=key[0])
        cached = self._cache.get(key)  # lock-free hit path
        if cached is None:
            obs.incr("ttp.cache.misses")
            try:
                converted = self.converter_for(language).to_phonemes(text)
            except TTPError as exc:
                # Tag the failing language so degradation contexts can
                # report *which* script dropped out of a match.
                if getattr(exc, "language", None) is None:
                    exc.language = key[0]
                raise
            if self.fold:
                from repro.phonetics.folding import fold_phonemes

                converted = fold_phonemes(converted)
            with self._lock:
                cached = self._cache.setdefault(key, converted)
        else:
            obs.incr("ttp.cache.hits")
        return cached

    def languages(self) -> tuple[str, ...]:
        """Registered language identifiers, sorted."""
        return tuple(sorted(self._converters))

    def clear_cache(self) -> None:
        """Drop the conversion cache (for memory-sensitive callers).

        Concurrent readers keep whatever entry they already fetched; the
        swap installs a fresh dict so in-progress lock-free ``get`` calls
        never see a half-cleared mapping.
        """
        with self._lock:
            self._cache = {}


_DEFAULT: TTPRegistry | None = None
_DEFAULT_LOCK = make_lock("ttp.default")


def default_registry() -> TTPRegistry:
    """Shared registry pre-loaded with all built-in converters."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:  # double-checked: one shared instance
            if _DEFAULT is None:
                _DEFAULT = TTPRegistry(builtin_converters())
    return _DEFAULT


def converter_for(language: str) -> TTPConverter:
    """Converter lookup against the default registry."""
    return default_registry().converter_for(language)


def transform(text: str, language: str) -> PhonemeString:
    """One-shot transform against the default registry."""
    return default_registry().transform(text, language)


def supported_languages() -> tuple[str, ...]:
    """Languages supported by the default registry."""
    return default_registry().languages()


# Unicode block name prefix -> language identifier.
_BLOCK_LANGUAGES = (
    ("DEVANAGARI", "hindi"),
    ("TAMIL", "tamil"),
    ("KANNADA", "kannada"),
    ("GREEK", "greek"),
    ("ARABIC", "arabic"),
)


def detect_language(text: str, latin_default: str = "english") -> str:
    """Guess the language of ``text`` from its Unicode script.

    Indic and Greek scripts identify their language uniquely among the
    supported set; Latin script falls back to ``latin_default``.  Raises
    :class:`~repro.errors.TTPError` for text whose script is not
    recognized at all (e.g. unsupported scripts or pure punctuation).
    """
    for ch in text:
        if ch.isspace():
            continue
        try:
            name = unicodedata.name(ch)
        except ValueError:
            continue
        for prefix, language in _BLOCK_LANGUAGES:
            if name.startswith(prefix):
                return language
        if name.startswith("LATIN"):
            return latin_default
    raise TTPError(f"cannot detect script of {text!r}")
