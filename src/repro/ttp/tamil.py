"""Tamil grapheme-to-phoneme conversion.

Tamil script is an abugida like Devanagari (inherent vowel ``a``, pulli
``்`` suppressing it) but with a much smaller consonant inventory: the
script has a *single* letter per plosive series and no aspiration marks.
The phonetic value of a plosive is positional (classical sandhi rules):

* word-initial or geminate → voiceless (``க`` = ``k``),
* after a nasal → voiced (``ங்க`` = ``ŋg``),
* between vowels → voiced/lenited (``க`` = ``g``; ``ச`` = ``s``).

This positional voicing — together with the absent aspiration contrast,
the absence of ``f``/``z`` and the five-vowel system — is exactly the
phoneme-set mismatch the paper identifies as the source of fuzziness when
matching Tamil renderings of English or Hindi names.  The paper hand
converted its Tamil strings "assuming phonetic nature of the Tamil
language"; this converter encodes the same assumptions.
"""

from __future__ import annotations

from repro.errors import TTPError
from repro.phonetics.parse import PhonemeString, parse_ipa
from repro.ttp.base import TTPConverter
from repro.ttp.normalize import normalize_indic

# Plosive letters with positional (voiceless, voiced) values.
_PLOSIVES: dict[str, tuple[str, str]] = {
    "க": ("k", "g"),
    "ச": ("tʃ", "s"),
    "ட": ("ʈ", "ɖ"),
    "த": ("t̪", "d̪"),
    "ப": ("p", "b"),
    "ற": ("t", "d"),  # geminate ṟṟ = /tt/, ṉṟ = /nd/; lone ṟ handled below
}

# Letters with a fixed value.
_FIXED: dict[str, str] = {
    "ங": "ŋ", "ஞ": "ɲ", "ண": "ɳ", "ந": "n̪", "ம": "m", "ன": "n",
    "ய": "j", "ர": "ɾ", "ல": "l", "வ": "ʋ", "ழ": "ɻ", "ள": "ɭ",
    # Grantha letters for loanwords.
    "ஜ": "dʒ", "ஶ": "ʃ", "ஷ": "ʂ", "ஸ": "s", "ஹ": "h",
}

_NASAL_SYMBOLS = frozenset({"ŋ", "ɲ", "ɳ", "n̪", "m", "n"})

# Independent vowels.
_VOWELS: dict[str, str] = {
    "அ": "a", "ஆ": "aː", "இ": "i", "ஈ": "iː", "உ": "u", "ஊ": "uː",
    "எ": "e", "ஏ": "eː", "ஐ": "ai", "ஒ": "o", "ஓ": "oː", "ஔ": "au",
}

# Dependent vowel signs (matras).
_MATRAS: dict[str, str] = {
    "ா": "aː", "ி": "i", "ீ": "iː", "ு": "u", "ூ": "uː",
    "ெ": "e", "ே": "eː", "ை": "ai", "ொ": "o", "ோ": "oː", "ௌ": "au",
}

_PULLI = "்"
_AYTHAM = "ஃ"
_INHERENT = "a"


class TamilConverter(TTPConverter):
    """Tamil script G2P with classical positional voicing rules."""

    language = "tamil"
    script = "tamil"

    def _word_to_phonemes(self, word: str) -> PhonemeString:
        word = normalize_indic(word)
        letters = self._segment(word)
        phonemes: list[str] = []
        for idx, (letter, vowel) in enumerate(letters):
            if letter is None:
                # Independent vowel: ``vowel`` already holds its value.
                phonemes.extend(parse_ipa(vowel or ""))
                continue
            # A geminate (க்க) is phonemically one long stop; emit a
            # single phoneme for the pair, letting the voicing rule see
            # the geminate context.
            if (
                vowel is None
                and idx + 1 < len(letters)
                and letters[idx + 1][0] == letter
            ):
                continue
            phonemes.extend(
                parse_ipa(self._consonant_value(letters, idx, phonemes))
            )
            if vowel is not None:
                phonemes.extend(parse_ipa(vowel))
        return tuple(phonemes)

    def _segment(
        self, word: str
    ) -> list[tuple[str | None, str | None]]:
        """Split a word into (consonant, vowel) letter units.

        ``(None, v)`` is an independent vowel; ``(c, None)`` is a pure
        consonant (pulli); ``(c, v)`` a consonant+vowel syllable, with
        ``v`` defaulting to the inherent ``a``.
        """
        units: list[tuple[str | None, str | None]] = []
        i = 0
        n = len(word)
        while i < n:
            ch = word[i]
            if ch in _VOWELS:
                units.append((None, _VOWELS[ch]))
                i += 1
            elif ch in _PLOSIVES or ch in _FIXED:
                # க்ஷ (kṣa) is the one conjunct worth special-casing.
                if (
                    ch == "க"
                    and i + 2 < n
                    and word[i + 1] == _PULLI
                    and word[i + 2] == "ஷ"
                ):
                    nxt = word[i + 3] if i + 3 < n else ""
                    if nxt in _MATRAS:
                        units.append(("க்ஷ", _MATRAS[nxt]))
                        i += 4
                    elif nxt == _PULLI:
                        units.append(("க்ஷ", None))
                        i += 4
                    else:
                        units.append(("க்ஷ", _INHERENT))
                        i += 3
                    continue
                nxt = word[i + 1] if i + 1 < n else ""
                if nxt in _MATRAS:
                    units.append((ch, _MATRAS[nxt]))
                    i += 2
                elif nxt == _PULLI:
                    units.append((ch, None))
                    i += 2
                else:
                    units.append((ch, _INHERENT))
                    i += 1
            elif ch == _AYTHAM:
                # Aytham before ப spells /f/ in loanwords; alone it is /h/.
                if i + 1 < n and word[i + 1] == "ப":
                    nxt2 = word[i + 2] if i + 2 < n else ""
                    if nxt2 in _MATRAS:
                        units.append(("ஃப", _MATRAS[nxt2]))
                        i += 3
                    elif nxt2 == _PULLI:
                        units.append(("ஃப", None))
                        i += 3
                    else:
                        units.append(("ஃப", _INHERENT))
                        i += 2
                else:
                    units.append(("ஃ", None))
                    i += 1
            else:
                raise TTPError(
                    f"tamil converter: unsupported character {ch!r} "
                    f"in {word!r}"
                )
        return units

    def _consonant_value(
        self,
        units: list[tuple[str | None, str | None]],
        idx: int,
        emitted: list[str],
    ) -> str:
        letter, _vowel = units[idx]
        assert letter is not None
        if letter == "க்ஷ":
            return "kʂ"
        if letter == "ஃப":
            return "f"
        if letter == "ஃ":
            return "h"
        if letter in _FIXED:
            return _FIXED[letter]
        voiceless, voiced = _PLOSIVES[letter]
        word_initial = idx == 0
        prev_letter = units[idx - 1][0] if idx > 0 else None
        prev_is_pure = idx > 0 and units[idx - 1][1] is None
        geminate = prev_is_pure and prev_letter == letter
        after_nasal = bool(emitted) and emitted[-1] in _NASAL_SYMBOLS
        after_stop = prev_is_pure and prev_letter in _PLOSIVES
        if letter == "ற":
            # ṟ: trill as a lone consonant, stop value in clusters.
            if geminate:
                return voiceless
            if after_nasal:
                return voiced
            return "r"
        if word_initial or geminate or after_stop:
            return voiceless
        if after_nasal:
            return voiced
        # A coda stop (pure consonant before another consonant or at the
        # word end) stays voiceless: பக்தி = pakti, ஸ்மித் = smit̪.
        if _vowel is None:
            return voiceless
        # Intervocalic / post-liquid onset: lenited (voiced) value.
        return voiced
