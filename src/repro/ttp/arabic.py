"""Arabic grapheme-to-phoneme conversion (basic, for proper names).

The paper's opening example is matching "the English string *Al-Qaeda*
and its equivalent strings in other scripts, say, Arabic ...", and its
Figure 1 catalog contains Arabic rows.  Arabic script is an *abjad*:
short vowels are normally unwritten, so any converter must infer
vocalization — the hardest instance of the Section 2.1
language-dependent-vocalization problem.

This converter takes the standard pragmatic line for names:

* consonants map directly (emphatics fold to their plain counterparts,
  ``ق`` stays uvular ``q``, ``ع``/hamza become glottal stops);
* written long vowels (``ا`` = aː; ``و``/``ي`` = uː/iː when flanked by
  consonants, w/j before vowels) are honoured, as are explicit harakat
  when present;
* elsewhere a short ``a`` is epenthesized between adjacent consonants
  (the CV-syllable assumption), so unvocalized names still receive a
  plausible, deterministic reading: ``نهرو`` → ``nahruː``.

The inferred vowels are exactly the segments the matcher's weak-vowel
costs discount, so Arabic renderings match their Latin/Indic
counterparts at moderate thresholds despite the missing vocalization.
"""

from __future__ import annotations

from repro.errors import TTPError
from repro.phonetics.inventory import get_phoneme
from repro.phonetics.parse import PhonemeString, parse_ipa
from repro.ttp.base import TTPConverter
from repro.ttp.normalize import normalize_indic

# Plain consonant values (emphatics folded to plain).
_CONSONANTS: dict[str, str] = {
    "ب": "b", "ت": "t̪", "ث": "θ", "ج": "dʒ", "ح": "h", "خ": "x",
    "د": "d̪", "ذ": "ð", "ر": "r", "ز": "z", "س": "s", "ش": "ʃ",
    "ص": "s", "ض": "d̪", "ط": "t̪", "ظ": "z", "ع": "ʔ", "غ": "ɣ",
    "ف": "f", "ق": "q", "ك": "k", "ل": "l", "م": "m", "ن": "n",
    "ه": "h", "ء": "ʔ", "ؤ": "ʔ", "ئ": "ʔ", "پ": "p", "گ": "g",
    "چ": "tʃ", "ڤ": "v",
}

# Harakat (vowel diacritics) and other marks.
_FATHA = "َ"   # a
_KASRA = "ِ"   # i
_DAMMA = "ُ"   # u
_SUKUN = "ْ"   # no vowel
_SHADDA = "ّ"  # gemination
_TANWIN = {"ً": "an", "ٍ": "in", "ٌ": "un"}

_ALEF = "ا"
_ALEF_MADDA = "آ"
_ALEF_HAMZA = "أ"
_ALEF_HAMZA_BELOW = "إ"
_WAW = "و"
_YEH = "ي"
_TEH_MARBUTA = "ة"
_ALEF_MAQSURA = "ى"
_TATWEEL = "ـ"

_EPENTHETIC = "ə"  # weak: the matcher discounts inferred vowels


class ArabicConverter(TTPConverter):
    """Basic Arabic-script G2P with CV-epenthesis for unwritten vowels."""

    language = "arabic"
    script = "arabic"

    def _word_to_phonemes(self, word: str) -> PhonemeString:
        word = normalize_indic(word).replace(_TATWEEL, "")
        raw = self._letters_to_segments(word)
        return tuple(self._epenthesize(raw))

    def _letters_to_segments(self, word: str) -> list[str]:
        segments: list[str] = []
        i = 0
        n = len(word)
        while i < n:
            ch = word[i]
            nxt = word[i + 1] if i + 1 < n else ""
            if ch in (_ALEF, _ALEF_HAMZA, _ALEF_HAMZA_BELOW, _ALEF_MADDA):
                # Word-initial alef carries a short vowel; medial alef is
                # the long aː.
                if i == 0:
                    segments.append(
                        "i" if ch == _ALEF_HAMZA_BELOW else "a"
                    )
                    if ch == _ALEF_MADDA:
                        segments[-1] = "aː"
                else:
                    segments.append("aː")
            elif ch in (_WAW, _YEH):
                vowel = "uː" if ch == _WAW else "iː"
                glide = "w" if ch == _WAW else "j"
                prev_is_consonant = bool(segments) and not self._is_vowel(
                    segments[-1]
                )
                next_vocalic = nxt in (
                    _ALEF, _ALEF_MADDA, _WAW, _YEH, _FATHA, _KASRA, _DAMMA,
                    _TEH_MARBUTA, _ALEF_MAQSURA,
                )
                if i == 0 or not prev_is_consonant or next_vocalic:
                    segments.append(glide)
                else:
                    segments.append(vowel)
            elif ch == _TEH_MARBUTA:
                segments.append("a")  # -a(t): pausal form for names
            elif ch == _ALEF_MAQSURA:
                segments.append("aː")
            elif ch == _FATHA:
                segments.append("a")
            elif ch == _KASRA:
                segments.append("i")
            elif ch == _DAMMA:
                segments.append("u")
            elif ch == _SUKUN:
                pass  # explicitly no vowel
            elif ch == _SHADDA:
                pass  # gemination is not phonemic for matching
            elif ch in _TANWIN:
                segments.extend(parse_ipa(_TANWIN[ch]))
            elif ch in _CONSONANTS:
                segments.extend(parse_ipa(_CONSONANTS[ch]))
            else:
                raise TTPError(
                    f"arabic converter: unsupported character {ch!r} "
                    f"in {word!r}"
                )
            i += 1
        return segments

    def _epenthesize(self, segments: list[str]) -> list[str]:
        """Insert a short ``a`` inside consonant clusters (CV assumption)."""
        result: list[str] = []
        for segment in segments:
            if (
                result
                and not self._is_vowel(segment)
                and not self._is_vowel(result[-1])
            ):
                result.append(_EPENTHETIC)
            result.append(segment)
        return result

    @staticmethod
    def _is_vowel(symbol: str) -> bool:
        return get_phoneme(symbol).is_vowel
