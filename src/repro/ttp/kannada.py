"""Kannada grapheme-to-phoneme conversion.

Kannada — the language of Bangalore, whose telephone directory supplied
the paper's Indian names — is an abugida like Devanagari, with two
relevant phonological differences:

* the short/long contrast extends to the mid vowels (ಎ/ಏ = e/eː,
  ಒ/ಓ = o/oː), which Devanagari lacks;
* there is no schwa deletion: word-final inherent vowels are pronounced
  (ರಾಮ = ``raːma``, where Hindi राम = ``raːm``).

Like Devanagari (and unlike Tamil) it keeps the voicing and aspiration
contrasts, so its loss profile sits between the two — useful for
exercising LexEQUAL with a fourth script
(``build_lexicon(languages=("english", "hindi", "tamil", "kannada"))``).
"""

from __future__ import annotations

from repro.errors import TTPError
from repro.phonetics.parse import PhonemeString, parse_ipa
from repro.ttp.base import TTPConverter
from repro.ttp.normalize import normalize_indic

_CONSONANTS: dict[str, str] = {
    "ಕ": "k", "ಖ": "kʰ", "ಗ": "g", "ಘ": "gʱ", "ಙ": "ŋ",
    "ಚ": "tʃ", "ಛ": "tʃʰ", "ಜ": "dʒ", "ಝ": "dʒʱ", "ಞ": "ɲ",
    "ಟ": "ʈ", "ಠ": "ʈʰ", "ಡ": "ɖ", "ಢ": "ɖʱ", "ಣ": "ɳ",
    "ತ": "t̪", "ಥ": "t̪ʰ", "ದ": "d̪", "ಧ": "d̪ʱ", "ನ": "n",
    "ಪ": "p", "ಫ": "pʰ", "ಬ": "b", "ಭ": "bʱ", "ಮ": "m",
    "ಯ": "j", "ರ": "r", "ಲ": "l", "ವ": "ʋ",
    "ಶ": "ʃ", "ಷ": "ʂ", "ಸ": "s", "ಹ": "h",
    "ಳ": "ɭ", "ೞ": "ɻ", "ಱ": "r", "ೠ": "r",
    "ಫ಼": "f", "ಜ಼": "z",
}

_VOWELS: dict[str, str] = {
    "ಅ": "a", "ಆ": "aː", "ಇ": "i", "ಈ": "iː", "ಉ": "u", "ಊ": "uː",
    "ಋ": "ri", "ಌ": "li", "ಎ": "e", "ಏ": "eː", "ಐ": "ai", "ಒ": "o",
    "ಓ": "oː", "ಔ": "au",
}

_MATRAS: dict[str, str] = {
    "ಾ": "aː", "ಿ": "i", "ೀ": "iː", "ು": "u", "ೂ": "uː",
    "ೃ": "ri", "ೄ": "riː", "ೆ": "e", "ೇ": "eː", "ೈ": "ai", "ೊ": "o",
    "ೋ": "oː", "ೌ": "au",
}

_VIRAMA = "್"
_ANUSVARA = "ಂ"
_VISARGA = "ಃ"
_NUKTA = "಼"
_INHERENT = "a"

_LABIALS = {"p", "pʰ", "b", "bʱ", "m"}
_VELARS = {"k", "kʰ", "g", "gʱ", "ŋ"}
_PALATALS = {"tʃ", "tʃʰ", "dʒ", "dʒʱ", "ɲ"}
_RETROFLEXES = {"ʈ", "ʈʰ", "ɖ", "ɖʱ", "ɳ"}


def _anusvara_for(following: str | None) -> str:
    if following is None:
        return "m"  # word-final anusvara reads m in Kannada (ರಾಮಂ)
    if following in _LABIALS:
        return "m"
    if following in _VELARS:
        return "ŋ"
    if following in _PALATALS:
        return "ɲ"
    if following in _RETROFLEXES:
        return "ɳ"
    return "n"


class KannadaConverter(TTPConverter):
    """Kannada script G2P (no schwa deletion, full length contrasts)."""

    language = "kannada"
    script = "kannada"

    def _word_to_phonemes(self, word: str) -> PhonemeString:
        word = normalize_indic(word)
        phonemes: list[str] = []
        pending_vowel = False  # an inherent vowel is owed

        def flush() -> None:
            nonlocal pending_vowel
            if pending_vowel:
                phonemes.append(_INHERENT)
                pending_vowel = False

        i = 0
        n = len(word)
        while i < n:
            ch = word[i]
            if i + 1 < n and word[i + 1] == _NUKTA:
                combined = ch + _NUKTA
                if combined in _CONSONANTS:
                    flush()
                    phonemes.extend(parse_ipa(_CONSONANTS[combined]))
                    pending_vowel = True
                    i += 2
                    continue
            if ch in _CONSONANTS:
                flush()
                phonemes.extend(parse_ipa(_CONSONANTS[ch]))
                pending_vowel = True
            elif ch in _MATRAS:
                if not pending_vowel:
                    raise TTPError(
                        f"kannada converter: matra {ch!r} without a "
                        f"consonant in {word!r}"
                    )
                pending_vowel = False
                phonemes.extend(parse_ipa(_MATRAS[ch]))
            elif ch in _VOWELS:
                flush()
                phonemes.extend(parse_ipa(_VOWELS[ch]))
            elif ch == _VIRAMA:
                pending_vowel = False
            elif ch == _ANUSVARA:
                flush()
                nxt = self._next_consonant(word, i + 1)
                phonemes.append(_anusvara_for(nxt))
            elif ch == _VISARGA:
                flush()
                phonemes.append("h")
            else:
                raise TTPError(
                    f"kannada converter: unsupported character {ch!r} "
                    f"in {word!r}"
                )
            i += 1
        flush()  # Kannada keeps the final inherent vowel
        return tuple(phonemes)

    def _next_consonant(self, word: str, start: int) -> str | None:
        for ch in word[start:]:
            if ch in _CONSONANTS:
                return parse_ipa(_CONSONANTS[ch])[0]
            if ch in _VOWELS or ch in _MATRAS:
                return None
        return None
