"""The TTP converter interface.

A converter maps text in one language/script to a phoneme string (a tuple
of IPA inventory symbols).  Converters must be deterministic and total
over their script: any word made of the script's letters gets *some*
pronunciation, because the paper's pipeline depends on every stored name
having a phonemic form.  Unknown characters raise
:class:`~repro.errors.TTPError` rather than being skipped silently.
"""

from __future__ import annotations

import abc

from repro.phonetics.parse import PhonemeString, format_phonemes, validate_phoneme_string


class TTPConverter(abc.ABC):
    """Base class for text-to-phoneme converters.

    Subclasses set :attr:`language` (lowercase identifier used in queries'
    ``INLANGUAGES`` clauses) and :attr:`script` (informational) and
    implement :meth:`_word_to_phonemes` for a single normalized word.
    """

    #: Lowercase language identifier, e.g. ``"english"``.
    language: str = ""
    #: Script name, e.g. ``"latin"``, ``"devanagari"``.
    script: str = ""

    def to_phonemes(self, text: str) -> PhonemeString:
        """Convert ``text`` (possibly several words) to a phoneme string.

        Words are transcribed independently and concatenated, matching the
        attribute-level processing of the database context.
        """
        words = self._split(text)
        phonemes: list[str] = []
        for word in words:
            phonemes.extend(self._word_to_phonemes(word))
        result = tuple(phonemes)
        validate_phoneme_string(result)
        return result

    def to_ipa(self, text: str) -> str:
        """Convert ``text`` to a flat IPA string."""
        return format_phonemes(self.to_phonemes(text))

    def _split(self, text: str) -> list[str]:
        from repro.ttp.normalize import split_words

        return split_words(text)

    @abc.abstractmethod
    def _word_to_phonemes(self, word: str) -> PhonemeString:
        """Transcribe one whitespace-free word."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(language={self.language!r})"


def builtin_converters() -> list[TTPConverter]:
    """Fresh instances of every converter shipped with the library."""
    from repro.ttp.arabic import ArabicConverter
    from repro.ttp.english import EnglishConverter
    from repro.ttp.french import FrenchConverter
    from repro.ttp.greek import GreekConverter
    from repro.ttp.hindi import HindiConverter
    from repro.ttp.kannada import KannadaConverter
    from repro.ttp.spanish import SpanishConverter
    from repro.ttp.tamil import TamilConverter

    return [
        EnglishConverter(),
        HindiConverter(),
        TamilConverter(),
        KannadaConverter(),
        GreekConverter(),
        SpanishConverter(),
        FrenchConverter(),
        ArabicConverter(),
    ]
