"""Hindi (Devanagari) grapheme-to-phoneme conversion.

Devanagari is an abugida: every consonant letter carries an inherent
schwa (``ə``) unless a vowel sign (matra) or a virama (``्``) follows.
The converter implements:

* the full consonant/vowel/matra tables, including nukta consonants
  (``फ़`` → ``f``, ``ज़`` → ``z``, ``ड़`` → ``ɽ`` ...);
* anusvara (``ं``) as a nasal homorganic with the following consonant
  (``n`` before coronals, ``m`` before labials, ``ŋ`` before velars);
* candrabindu (``ँ``) as nasalization of the preceding vowel;
* visarga (``ः``) as ``h``;
* *schwa deletion*: the inherent schwa of a word-final consonant is
  dropped (``राम`` → ``raːm``, not ``raːmə``), and the standard medial
  rule drops a schwa in the context VC_CV (``जवाहरलाल`` →
  ``dʒəʋaːɦərlaːl`` keeps the first schwa but drops the one after ``ह``
  is resyllabified).

The paper used the Dhvani TTS for this step; this converter is a
self-contained equivalent producing the same style of IPA output.
"""

from __future__ import annotations

from repro.errors import TTPError
from repro.phonetics.parse import PhonemeString, parse_ipa
from repro.ttp.base import TTPConverter
from repro.ttp.normalize import normalize_indic

# Consonant letters -> IPA.  Dental stops are transcribed with the dental
# diacritic to preserve the dental/retroflex contrast that Devanagari
# maintains and Latin orthography collapses.
_CONSONANTS: dict[str, str] = {
    "क": "k", "ख": "kʰ", "ग": "g", "घ": "gʱ", "ङ": "ŋ",
    "च": "tʃ", "छ": "tʃʰ", "ज": "dʒ", "झ": "dʒʱ", "ञ": "ɲ",
    "ट": "ʈ", "ठ": "ʈʰ", "ड": "ɖ", "ढ": "ɖʱ", "ण": "ɳ",
    "त": "t̪", "थ": "t̪ʰ", "द": "d̪", "ध": "d̪ʱ", "न": "n",
    "प": "p", "फ": "pʰ", "ब": "b", "भ": "bʱ", "म": "m",
    "य": "j", "र": "r", "ल": "l", "व": "ʋ", "ळ": "ɭ",
    "श": "ʃ", "ष": "ʂ", "स": "s", "ह": "ɦ",
    # nukta forms (Perso-Arabic loan sounds)
    "क़": "q", "ख़": "x", "ग़": "ɣ", "ज़": "z", "झ़": "ʒ",
    "ड़": "ɽ", "ढ़": "ɽʱ", "फ़": "f",
    # Dravidian-extension letters ऩ/ऱ/ऴ.  Unlike क़..य़
    # (composition exclusions that NFC leaves decomposed), these
    # recompose under NFC, so the keys are single precomposed points.
    "ऩ": "n", "ऱ": "r", "ऴ": "ɻ",
}

# Independent vowel letters.
_VOWELS: dict[str, str] = {
    "अ": "ə", "आ": "aː", "इ": "ɪ", "ई": "iː", "उ": "ʊ", "ऊ": "uː",
    "ऋ": "rɪ", "ऌ": "lɪ", "ए": "eː", "ऐ": "ɛː", "ओ": "oː", "औ": "ɔː",
    "ऑ": "ɔ", "ॲ": "æ", "ऍ": "ɛ", "ऎ": "ɛ", "ऒ": "ɔ",
}

# Dependent vowel signs (matras).
_MATRAS: dict[str, str] = {
    "ा": "aː", "ि": "ɪ", "ी": "iː", "ु": "ʊ", "ू": "uː",
    "ृ": "rɪ", "ॄ": "riː", "े": "eː", "ै": "ɛː", "ो": "oː", "ौ": "ɔː",
    "ॉ": "ɔ", "ॅ": "ɛ", "ॆ": "ɛ", "ॊ": "ɔ",
}

_VIRAMA = "्"
_ANUSVARA = "ं"
_CANDRABINDU = "ँ"
_VISARGA = "ः"
_NUKTA = "़"
_OM = "ॐ"

# Anusvara assimilates to the place of the following consonant.
_ANUSVARA_BY_PLACE = {
    "labial": "m", "velar": "ŋ", "palatal": "ɲ", "retroflex": "ɳ",
}
_LABIALS = {"p", "pʰ", "b", "bʱ", "m"}
_VELARS = {"k", "kʰ", "g", "gʱ", "ŋ"}
_PALATALS = {"tʃ", "tʃʰ", "dʒ", "dʒʱ", "ɲ"}
_RETROFLEXES = {"ʈ", "ʈʰ", "ɖ", "ɖʱ", "ɳ"}

_SCHWA = "ə"


def _is_vowel_symbol(symbol: str) -> bool:
    from repro.phonetics.inventory import get_phoneme

    return get_phoneme(symbol).is_vowel


def _anusvara_for(following: str | None) -> str:
    if following is None:
        return "n"
    if following in _LABIALS:
        return "m"
    if following in _VELARS:
        return "ŋ"
    if following in _PALATALS:
        return "ɲ"
    if following in _RETROFLEXES:
        return "ɳ"
    return "n"


class HindiConverter(TTPConverter):
    """Devanagari G2P with inherent-schwa handling and schwa deletion."""

    language = "hindi"
    script = "devanagari"

    def __init__(self, delete_medial_schwa: bool = True):
        self.delete_medial_schwa = delete_medial_schwa

    def _word_to_phonemes(self, word: str) -> PhonemeString:
        word = normalize_indic(word)
        # Stage 1: letter-by-letter expansion with inherent schwas.
        segments: list[str] = []
        pending_schwa = False

        def flush_schwa() -> None:
            nonlocal pending_schwa
            if pending_schwa:
                segments.append(_SCHWA)
                pending_schwa = False

        i = 0
        n = len(word)
        while i < n:
            ch = word[i]
            # Combine nukta with the preceding base consonant if present.
            if i + 1 < n and word[i + 1] == _NUKTA:
                combined = ch + _NUKTA
                if combined in _CONSONANTS:
                    flush_schwa()
                    segments.extend(parse_ipa(_CONSONANTS[combined]))
                    pending_schwa = True
                    i += 2
                    continue
            if ch in _CONSONANTS:
                flush_schwa()
                segments.extend(parse_ipa(_CONSONANTS[ch]))
                pending_schwa = True
            elif ch in _MATRAS:
                if not pending_schwa:
                    raise TTPError(
                        f"hindi converter: matra {ch!r} without a "
                        f"consonant in {word!r}"
                    )
                pending_schwa = False
                segments.extend(parse_ipa(_MATRAS[ch]))
            elif ch in _VOWELS:
                flush_schwa()
                segments.extend(parse_ipa(_VOWELS[ch]))
            elif ch == _VIRAMA:
                pending_schwa = False
            elif ch == _ANUSVARA:
                flush_schwa()
                nxt = self._next_consonant(word, i + 1)
                segments.append(_anusvara_for(nxt))
            elif ch == _CANDRABINDU:
                flush_schwa()
                if segments and _is_vowel_symbol(segments[-1]):
                    segments[-1] = segments[-1] + "̃"
                else:
                    segments.append("n")
            elif ch == _VISARGA:
                flush_schwa()
                segments.append("h")
            elif ch == _OM:
                flush_schwa()
                segments.extend(parse_ipa("oːm"))
            else:
                raise TTPError(
                    f"hindi converter: unsupported character {ch!r} "
                    f"in {word!r}"
                )
            i += 1
        flush_schwa()
        return self._delete_schwas(tuple(segments))

    def _next_consonant(self, word: str, start: int) -> str | None:
        for ch in word[start:]:
            if ch in _CONSONANTS:
                return parse_ipa(_CONSONANTS[ch])[0]
            if ch in _VOWELS or ch in _MATRAS:
                return None
        return None

    def _delete_schwas(self, phonemes: PhonemeString) -> PhonemeString:
        """Word-final schwa deletion, plus the standard medial rule.

        Final: a schwa in absolute word-final position after a consonant
        is dropped.  Medial (VC_CV rule): a schwa flanked by single
        consonants that are themselves flanked by vowels is dropped,
        scanning left to right so earlier deletions feed later contexts.
        """
        phones = list(phonemes)
        # Final schwa deletion.
        if len(phones) >= 2 and phones[-1] == _SCHWA:
            if not self._is_vowel(phones[-2]):
                phones.pop()
        if not self.delete_medial_schwa:
            return tuple(phones)
        # Medial schwa deletion: V C ə C V -> V C C V, applied right to
        # left (Ohala's rule), so जवाहरलाल -> dʒəʋaːɦərlaːl as in the
        # paper's Figure 9.
        i = len(phones) - 3
        while i >= 2:
            if (
                phones[i] == _SCHWA
                and i < len(phones) - 2
                and not self._is_vowel(phones[i - 1])
                and self._is_vowel(phones[i - 2])
                and not self._is_vowel(phones[i + 1])
                and self._is_vowel(phones[i + 2])
            ):
                del phones[i]
            i -= 1
        return tuple(phones)

    @staticmethod
    def _is_vowel(symbol: str) -> bool:
        return _is_vowel_symbol(symbol)
