"""English grapheme-to-phoneme conversion.

A full NRL-style letter-to-sound rule set (Elovitz et al. 1976), adapted
to emit IPA inventory symbols, plus a small exceptions lexicon for names
whose conventional pronunciation the rules cannot derive.  The paper used
the Oxford English Dictionary and on-line TTP converters for this step;
rule-based conversion is the standard self-contained substitute and
produces the same *kind* of output (a phonemically plausible IPA string
per name, with systematic — not random — deviations).

English r is transcribed ``ɹ``; diphthongs are emitted as two-symbol
sequences (``eɪ`` → ``e ɪ``), which keeps phonemic lengths in the range
the paper reports (average 7.16 vs lexicographic 7.35 on the quality
lexicon).
"""

from __future__ import annotations

from repro.errors import TTPError
from repro.phonetics.parse import PhonemeString, parse_ipa
from repro.ttp.base import TTPConverter
from repro.ttp.normalize import normalize_latin
from repro.ttp.rules import apply_rules, compile_rules

# The rule table.  Format: (left context, fragment, right context, IPA).
# Order matters within each first-letter group; the last rule of each
# group is the unconditional fallback.
_RULES: list[tuple[str, str, str, str]] = [
    # ------------------------------------------------------------- A
    (" ", "a", " ", "ə"),
    (" ", "are", " ", "ɑɹ"),
    (" ", "ar", "o", "əɹ"),
    ("", "ar", "#", "ɛɹ"),
    ("^", "as", "#", "eɪs"),
    ("", "ah", " ", "ɑ"),
    ("", "a", "wa", "ə"),
    ("", "aw", "", "ɔ"),
    (" :", "any", "", "ɛni"),
    ("", "a", "^+#", "eɪ"),
    ("#:", "ally", "", "əli"),
    (" ", "al", "#", "əl"),
    ("", "again", "", "əgɛn"),
    ("#:", "ag", "e", "ɪdʒ"),
    ("", "a", "^+:#", "æ"),
    (" :", "a", "^+ ", "eɪ"),
    ("", "a", "^%", "eɪ"),
    (" ", "arr", "", "əɹ"),
    ("", "arr", "", "æɹ"),
    (" :", "ar", " ", "ɑɹ"),
    ("", "ar", " ", "ɜɹ"),
    ("", "ar", "", "ɑɹ"),
    ("", "air", "", "ɛɹ"),
    ("", "ai", "", "eɪ"),
    ("", "ay", "", "eɪ"),
    ("", "au", "", "ɔ"),
    ("#:", "al", " ", "əl"),
    ("#:", "als", " ", "əlz"),
    ("", "alk", "", "ɔk"),
    ("", "al", "^", "ɔl"),
    (" :", "able", "", "eɪbəl"),
    ("", "able", "", "əbəl"),
    ("", "ang", "+", "eɪndʒ"),
    ("", "a", "", "æ"),
    # ------------------------------------------------------------- B
    ("", "bb", "", "b"),
    (" ", "be", "^#", "bɪ"),
    ("", "being", "", "biɪŋ"),
    (" ", "both", " ", "boʊθ"),
    (" ", "bus", "#", "bɪz"),
    ("", "buil", "", "bɪl"),
    ("", "b", "", "b"),
    # ------------------------------------------------------------- C
    (" ", "ch", "^", "k"),
    ("^e", "ch", "", "k"),
    ("", "ch", "", "tʃ"),
    (" s", "ci", "#", "saɪ"),
    ("", "ci", "a", "ʃ"),
    ("", "ci", "o", "ʃ"),
    ("", "ci", "en", "ʃ"),
    ("", "c", "+", "s"),
    ("", "ck", "", "k"),
    ("", "com", "%", "kʌm"),
    ("", "c", "", "k"),
    # ------------------------------------------------------------- D
    ("", "dd", "", "d"),
    ("#:", "ded", " ", "dɪd"),
    (".e", "d", " ", "d"),
    ("#:^e", "d", " ", "t"),
    (" ", "de", "^#", "dɪ"),
    (" ", "do", " ", "du"),
    (" ", "does", "", "dʌz"),
    (" ", "doing", "", "duɪŋ"),
    (" ", "dow", "", "daʊ"),
    ("", "du", "a", "dʒu"),
    ("", "d", "", "d"),
    # ------------------------------------------------------------- E
    ("#:", "e", " ", ""),
    (" :^", "e", " ", ""),
    (" :", "e", " ", "i"),
    ("#", "ed", " ", "d"),
    ("#:", "e", "d ", ""),
    ("", "ev", "er", "ɛv"),
    ("", "e", "^%", "i"),
    ("", "eri", "#", "iɹi"),
    ("", "eri", "", "ɛɹɪ"),
    ("#:", "er", "#", "ɜɹ"),
    ("", "er", "#", "ɛɹ"),
    ("", "er", "", "ɜɹ"),
    (" ", "even", "", "ivɛn"),
    ("#:", "e", "w", ""),
    ("@", "ew", "", "u"),
    ("", "ew", "", "ju"),
    ("", "e", "o", "i"),
    ("#:&", "es", " ", "ɪz"),
    ("#:", "e", "s ", ""),
    ("#:", "ely", " ", "li"),
    ("#:", "ement", "", "mɛnt"),
    ("", "eful", "", "fʊl"),
    ("", "ee", "", "i"),
    ("", "earn", "", "ɜɹn"),
    (" ", "ear", "^", "ɜɹ"),
    ("", "ead", "", "ɛd"),
    ("#:", "ea", " ", "iə"),
    ("", "ea", "su", "ɛ"),
    ("", "ea", "", "i"),
    ("", "eigh", "", "eɪ"),
    ("", "ei", "", "i"),
    (" ", "eye", "", "aɪ"),
    ("", "ey", "", "i"),
    ("", "eu", "", "ju"),
    ("", "e", "", "ɛ"),
    # ------------------------------------------------------------- F
    ("", "ff", "", "f"),
    ("", "ful", "", "fʊl"),
    ("", "f", "", "f"),
    # ------------------------------------------------------------- G
    ("", "giv", "", "gɪv"),
    (" ", "g", "i^", "g"),
    ("", "ge", "t", "gɛ"),
    ("su", "gges", "", "gdʒɛs"),
    ("", "gg", "", "g"),
    (" b#", "g", "", "g"),
    ("", "g", "+", "dʒ"),
    ("", "great", "", "gɹeɪt"),
    ("#", "gh", "", ""),
    ("", "g", "", "g"),
    # ------------------------------------------------------------- H
    (" b", "h", "", ""),
    (" d", "h", "", ""),
    (" g", "h", "", ""),
    (" j", "h", "", ""),
    (" k", "h", "", ""),
    (" ", "hav", "", "hæv"),
    (" ", "here", "", "hiɹ"),
    (" ", "hour", "", "aʊɜɹ"),
    ("", "how", "", "haʊ"),
    ("", "h", "#", "h"),
    ("", "h", "", ""),
    # ------------------------------------------------------------- I
    (" ", "in", "", "ɪn"),
    (" ", "i", " ", "aɪ"),
    ("", "in", "d", "aɪn"),
    ("", "ier", "", "iɜɹ"),
    ("#:r", "ied", "", "id"),
    ("", "ied", " ", "aɪd"),
    ("", "ien", "", "iɛn"),
    ("", "ie", "t", "aɪɛ"),
    (" :", "i", "%", "aɪ"),
    ("", "i", "%", "i"),
    ("", "ie", "", "i"),
    ("", "i", "^+:#", "ɪ"),
    ("", "ir", "#", "aɪɹ"),
    ("", "iz", "%", "aɪz"),
    ("", "is", "%", "aɪz"),
    ("", "i", "d%", "aɪ"),
    ("+^", "i", "^+", "ɪ"),
    ("", "i", "t%", "aɪ"),
    ("#:^", "i", "^+", "ɪ"),
    ("", "i", "^+", "aɪ"),
    ("", "ir", "", "ɜɹ"),
    ("", "igh", "", "aɪ"),
    ("", "ild", "", "aɪld"),
    ("", "ign", " ", "aɪn"),
    ("", "ign", "^", "aɪn"),
    ("", "ign", "%", "aɪn"),
    ("", "ique", "", "ik"),
    ("", "i", "", "ɪ"),
    # ------------------------------------------------------------- J
    ("", "j", "", "dʒ"),
    # ------------------------------------------------------------- K
    (" ", "k", "n", ""),
    ("", "k", "", "k"),
    # ------------------------------------------------------------- L
    ("", "lo", "c#", "loʊ"),
    ("l", "l", "", ""),
    ("#:^", "l", "%", "əl"),
    ("", "lead", "", "lid"),
    ("", "l", "", "l"),
    # ------------------------------------------------------------- M
    ("", "mm", "", "m"),
    ("", "mov", "", "muv"),
    ("", "m", "", "m"),
    # ------------------------------------------------------------- N
    ("", "nn", "", "n"),
    ("e", "ng", "+", "ndʒ"),
    ("", "ng", "r", "ŋg"),
    ("", "ng", "#", "ŋg"),
    ("", "ngl", "%", "ŋgəl"),
    ("", "ng", "", "ŋ"),
    ("", "nk", "", "ŋk"),
    (" ", "now", " ", "naʊ"),
    ("", "n", "", "n"),
    # ------------------------------------------------------------- O
    ("", "of", " ", "əv"),
    (" ", "over", "", "oʊvɜɹ"),
    ("", "orough", "", "ɜɹoʊ"),
    ("#:", "or", " ", "ɜɹ"),
    ("#:", "ors", " ", "ɜɹz"),
    ("", "or", "", "ɔɹ"),
    (" ", "one", "", "wʌn"),
    ("", "ow", "", "oʊ"),
    ("", "ov", "", "ʌv"),
    ("", "o", "^%", "oʊ"),
    ("", "o", "^en", "oʊ"),
    ("", "o", "^i#", "oʊ"),
    ("", "ol", "d", "oʊl"),
    ("", "ought", "", "ɔt"),
    ("", "ough", "", "ʌf"),
    (" ", "ou", "", "aʊ"),
    ("h", "ou", "s#", "aʊ"),
    ("", "ous", "", "əs"),
    ("", "our", "", "ɔɹ"),
    ("", "ould", "", "ʊd"),
    ("^", "ou", "^l", "ʌ"),
    ("", "oup", "", "up"),
    ("", "ou", "", "aʊ"),
    ("", "oy", "", "ɔɪ"),
    ("", "oing", "", "oʊɪŋ"),
    ("", "oi", "", "ɔɪ"),
    ("", "oor", "", "ɔɹ"),
    ("", "ook", "", "ʊk"),
    ("", "ood", "", "ʊd"),
    ("", "oo", "", "u"),
    ("", "o", "e", "oʊ"),
    ("", "o", " ", "oʊ"),
    ("", "oa", "", "oʊ"),
    (" ", "only", "", "oʊnli"),
    (" ", "once", "", "wʌns"),
    ("c", "o", "n", "ɑ"),
    ("", "o", "ng", "ɔ"),
    (" :^", "o", "n", "ʌ"),
    ("i", "on", "", "ən"),
    ("#:", "on", " ", "ən"),
    ("#^", "on", "", "ən"),
    ("", "o", "st ", "oʊ"),
    ("", "of", "^", "ɔf"),
    ("", "other", "", "ʌðɜɹ"),
    ("", "oss", " ", "ɔs"),
    ("#:^", "om", "", "ʌm"),
    ("", "o", "", "ɑ"),
    # ------------------------------------------------------------- P
    ("", "pp", "", "p"),
    ("", "ph", "", "f"),
    ("", "peop", "", "pip"),
    ("", "pow", "", "paʊ"),
    ("", "put", " ", "pʊt"),
    ("", "p", "", "p"),
    # ------------------------------------------------------------- Q
    ("", "quar", "", "kwɔɹ"),
    ("", "qu", "", "kw"),
    ("", "q", "", "k"),
    # ------------------------------------------------------------- R
    ("", "rr", "", "ɹ"),
    (" ", "re", "^#", "ɹi"),
    ("", "r", "", "ɹ"),
    # ------------------------------------------------------------- S
    ("", "sh", "", "ʃ"),
    ("#", "sion", "", "ʒən"),
    ("", "some", "", "sʌm"),
    ("#", "sur", "#", "ʒɜɹ"),
    ("", "sure", " ", "ʃɜɹ"),
    ("#", "su", "#", "ʒu"),
    ("#", "ssu", "#", "ʃu"),
    ("#", "sed", " ", "zd"),
    ("#", "s", "#", "z"),
    ("", "said", "", "sɛd"),
    ("^", "sion", "", "ʃən"),
    ("", "s", "s", ""),
    (".", "s", " ", "z"),
    ("#:.e", "s", " ", "z"),
    ("#:^#", "s", " ", "s"),
    ("u", "s", " ", "s"),
    (" :#", "s", " ", "z"),
    (" ", "sch", "", "sk"),
    ("", "s", "c+", ""),
    ("#", "sm", "", "zm"),
    ("", "s", "", "s"),
    # ------------------------------------------------------------- T
    ("", "tt", "", "t"),
    (" ", "the", " ", "ðə"),
    ("", "to", " ", "tu"),
    ("", "that", " ", "ðæt"),
    (" ", "this", " ", "ðɪs"),
    (" ", "they", "", "ðeɪ"),
    (" ", "there", "", "ðɛɹ"),
    ("", "ther", "", "ðɜɹ"),
    ("", "their", "", "ðɛɹ"),
    (" ", "than", " ", "ðæn"),
    (" ", "them", " ", "ðɛm"),
    ("", "these", " ", "ðiz"),
    (" ", "then", "", "ðɛn"),
    ("", "through", "", "θɹu"),
    ("", "those", "", "ðoʊz"),
    ("", "though", " ", "ðoʊ"),
    (" ", "thus", "", "ðʌs"),
    ("", "th", "", "θ"),
    ("#:", "ted", " ", "tɪd"),
    ("s", "ti", "#n", "tʃ"),
    ("", "ti", "o", "ʃ"),
    ("", "ti", "a", "ʃ"),
    ("", "tien", "", "ʃən"),
    ("", "tur", "#", "tʃɜɹ"),
    ("", "tu", "a", "tʃu"),
    (" ", "two", "", "tu"),
    ("", "t", "", "t"),
    # ------------------------------------------------------------- U
    (" ", "un", "i", "jun"),
    (" ", "un", "", "ʌn"),
    (" ", "upon", "", "əpɔn"),
    ("@", "ur", "#", "ɜɹ"),
    ("", "ur", "#", "jʊɹ"),
    ("", "ur", "", "ɜɹ"),
    ("", "u", "^ ", "ʌ"),
    ("", "u", "^^", "ʌ"),
    ("", "uy", "", "aɪ"),
    (" g", "u", "#", ""),
    ("g", "u", "%", ""),
    ("g", "u", "#", "w"),
    ("#n", "u", "", "ju"),
    ("@", "u", "", "u"),
    ("", "u", "", "ju"),
    # ------------------------------------------------------------- V
    ("", "view", "", "vju"),
    ("", "v", "", "v"),
    # ------------------------------------------------------------- W
    (" ", "were", "", "wɜɹ"),
    ("", "wa", "s", "wɑ"),
    ("", "wa", "t", "wɑ"),
    ("", "where", "", "wɛɹ"),
    ("", "what", "", "wɑt"),
    ("", "whol", "", "hoʊl"),
    ("", "who", "", "hu"),
    ("", "wh", "", "w"),
    ("", "war", "", "wɔɹ"),
    ("", "wor", "^", "wɜɹ"),
    ("", "wr", "", "ɹ"),
    ("", "w", "", "w"),
    # ------------------------------------------------------------- X
    (" ", "x", "", "z"),
    ("", "x", "", "ks"),
    # ------------------------------------------------------------- Y
    ("", "young", "", "jʌŋ"),
    (" ", "you", "", "ju"),
    (" ", "yes", "", "jɛs"),
    (" ", "y", "", "j"),
    ("^", "y", "#", "j"),
    ("#:^", "y", " ", "i"),
    ("#:^", "y", "i", "i"),
    (" :", "y", " ", "aɪ"),
    (" :", "y", "#", "aɪ"),
    (" :", "y", "^+:#", "ɪ"),
    (" :", "y", "^#", "aɪ"),
    ("", "y", "", "ɪ"),
    # ------------------------------------------------------------- Z
    ("", "zz", "", "z"),
    ("", "z", "", "z"),
]

# Names whose conventional anglicized pronunciation the letter-to-sound
# rules cannot derive.  Kept deliberately small: the paper's point is that
# systematic TTP output, not a perfect dictionary, already supports good
# multiscript matching.
_EXCEPTIONS: dict[str, str] = {
    "nehru": "nɛhɹu",
    "iyer": "aɪjɜɹ",
    "iyengar": "aɪjəŋgɑɹ",
    "muhammad": "muhɑməd",
    "mohammed": "mohɑməd",
    "qaeda": "kaɪdə",
    "alqaeda": "ælkaɪdə",
    "gandhi": "gɑndi",
    "sean": "ʃɔn",
    "geoffrey": "dʒɛfɹi",
    "stephen": "stivən",
    "jose": "hoʊzeɪ",
    "juan": "wɑn",
    "xavier": "zeɪviɜɹ",
    "michael": "maɪkəl",
    "sarah": "sɛɹə",
    "thomas": "tɑməs",
    "theresa": "təɹisə",
    "anthony": "æntəni",
    "deborah": "dɛbɹə",
    "matthew": "mæθju",
    "joseph": "dʒoʊsəf",
    "john": "dʒɑn",
    "chicago": "ʃɪkɑgoʊ",
    "illinois": "ɪlənɔɪ",
    "arkansas": "ɑɹkənsɔ",
    "tucson": "tusɑn",
    "leicester": "lɛstɜɹ",
    "edinburgh": "ɛdɪnbəɹə",
}


class EnglishConverter(TTPConverter):
    """Rule-based English G2P with a small name-exceptions lexicon."""

    language = "english"
    script = "latin"

    def __init__(self, extra_exceptions: dict[str, str] | None = None):
        self._index = compile_rules(_RULES)
        self._exceptions: dict[str, PhonemeString] = {
            word: parse_ipa(ipa) for word, ipa in _EXCEPTIONS.items()
        }
        if extra_exceptions:
            for word, ipa in extra_exceptions.items():
                self._exceptions[normalize_latin(word)] = parse_ipa(ipa)

    def _word_to_phonemes(self, word: str) -> PhonemeString:
        normalized = normalize_latin(word)
        if not normalized:
            return ()
        exception = self._exceptions.get(normalized)
        if exception is not None:
            return exception
        if not normalized.isalpha():
            raise TTPError(
                f"english converter: word {word!r} contains "
                "non-alphabetic characters after normalization"
            )
        return apply_rules(normalized, self._index, self.language)
