"""French grapheme-to-phoneme conversion.

A compact NRL-engine rule table good for names and the paper's examples
(``René`` → ``ʁene`` is transcribed ``ɾene`` — we use the tap for French
r, keeping it inside the liquids cluster; ``École`` → ``ekɔl``;
``Descartes`` → ``dɛskaɾt``).  Covers the major silent-final-consonant,
nasal-vowel and digraph patterns; it is intentionally not a full French
phonologizer — names are the target domain, as in the paper.
"""

from __future__ import annotations

from repro.phonetics.parse import PhonemeString
from repro.ttp.base import TTPConverter
from repro.ttp.normalize import split_words
from repro.ttp.rules import apply_rules, compile_rules
import unicodedata

_RULES: list[tuple[str, str, str, str]] = [
    # A
    ("", "aine", " ", "ɛn"),
    ("", "ain", "", "ɛ̃"),
    ("", "aim", "", "ɛ̃"),
    ("", "ais", " ", "ɛ"),
    ("", "ait", " ", "ɛ"),
    ("", "ai", "", "ɛ"),
    ("", "au", "", "o"),
    ("", "an", "#", "an"),
    ("", "an", "n", "an"),
    ("", "am", "#", "am"),
    ("", "an", "", "ɑ̃"),
    ("", "am", "^", "ɑ̃"),
    ("", "ay", "", "ɛj"),
    ("", "a", "", "a"),
    # B
    ("", "b", " ", "b"),
    ("", "b", "", "b"),
    # C
    ("", "ch", "", "ʃ"),
    ("", "c", "+", "s"),
    ("", "ck", "", "k"),
    ("", "c", " ", "k"),
    ("", "c", "", "k"),
    # D  (final d silent)
    ("", "d", " ", ""),
    ("", "d", "", "d"),
    # E
    ("", "eaux", " ", "o"),
    ("", "eau", "", "o"),
    ("", "ein", "", "ɛ̃"),
    ("", "eu", "", "ø"),
    ("", "en", "#", "ən"),
    ("", "en", "n", "ɛn"),
    ("", "en", " ", "ɑ̃"),
    ("", "en", "", "ɑ̃"),
    ("", "em", "^", "ɑ̃"),
    ("", "er", " ", "e"),
    ("", "ez", " ", "e"),
    ("", "et", " ", "ɛ"),
    ("", "es", " ", ""),
    ("^", "e", " ", ""),
    ("", "e", " ", ""),
    ("", "e", "^^", "ɛ"),
    ("", "e", "", "ə"),
    # F
    ("", "f", "", "f"),
    # G
    ("", "gn", "", "ɲ"),
    ("", "gu", "+", "g"),
    ("", "g", "+", "ʒ"),
    ("", "g", " ", ""),
    ("", "g", "", "g"),
    # H (silent)
    ("", "h", "", ""),
    # I
    ("", "in", "#", "in"),
    ("", "in", "n", "in"),
    ("", "in", "", "ɛ̃"),
    ("", "im", "^", "ɛ̃"),
    ("", "ill", "#", "ij"),
    ("", "i", "#", "j"),
    ("", "i", "", "i"),
    # J
    ("", "j", "", "ʒ"),
    # K
    ("", "k", "", "k"),
    # L
    ("", "ll", "", "l"),
    ("", "l", "", "l"),
    # M
    ("", "m", "", "m"),
    # N
    ("", "nn", "", "n"),
    ("", "n", "", "n"),
    # O
    ("", "ou", "", "u"),
    ("", "oi", "", "wa"),
    ("", "on", "#", "ɔn"),
    ("", "on", "n", "ɔn"),
    ("", "on", "", "ɔ̃"),
    ("", "om", "^", "ɔ̃"),
    ("", "o", " ", "o"),
    ("", "o", "", "ɔ"),
    # P
    ("", "ph", "", "f"),
    ("", "p", " ", ""),
    ("", "p", "", "p"),
    # Q
    ("", "qu", "", "k"),
    ("", "q", "", "k"),
    # R
    ("", "r", "", "ɾ"),
    # S
    ("", "ss", "", "s"),
    ("#", "s", "#", "z"),
    ("", "s", " ", ""),
    ("", "s", "", "s"),
    # T
    ("", "tion", "", "sjɔ̃"),
    ("", "t", " ", ""),
    ("", "t", "", "t"),
    # U
    ("", "un", " ", "œ̃"),
    ("", "u", "", "y"),
    # V
    ("", "v", "", "v"),
    # W
    ("", "w", "", "v"),
    # X
    ("", "x", " ", ""),
    ("", "x", "", "ks"),
    # Y
    ("", "y", "#", "j"),
    ("", "y", "", "i"),
    # Z
    ("", "z", " ", ""),
    ("", "z", "", "z"),
]

# Accented letters that change the rule outcome are rewritten to
# unambiguous spellings before accent stripping.
_PRE_SUBSTITUTIONS = (
    ("é", "ey_"),  # handled by a dedicated fragment below
    ("è", "e_"),
    ("ê", "e_"),
    ("ë", "e_"),
    ("ç", "s_"),
)


class FrenchConverter(TTPConverter):
    """Rule-based French G2P for proper names."""

    language = "french"
    script = "latin"

    def __init__(self) -> None:
        rules = list(_RULES)
        # Dedicated fragments for the pre-substituted accented letters.
        rules.insert(0, ("", "ey_", "", "e"))   # é
        rules.insert(1, ("", "e_", "", "ɛ"))    # è/ê/ë
        rules.insert(2, ("", "s_", "", "s"))    # ç
        self._index = compile_rules(rules)

    def _split(self, text: str) -> list[str]:
        return split_words(text)

    def _word_to_phonemes(self, word: str) -> PhonemeString:
        lowered = unicodedata.normalize("NFC", word.lower())
        for accented, replacement in _PRE_SUBSTITUTIONS:
            lowered = lowered.replace(accented, replacement)
        decomposed = unicodedata.normalize("NFD", lowered)
        normalized = "".join(
            ch
            for ch in decomposed
            if not unicodedata.combining(ch) and (ch.isalpha() or ch == "_")
        )
        if not normalized:
            return ()
        return apply_rules(normalized, self._index, self.language)
