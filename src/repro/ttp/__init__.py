"""Text-to-Phoneme (TTP) converters.

The paper's LexEQUAL operator assumes per-language TTP converters that
turn a text string into "its phonetic representation in IPA alphabet"
(``transform`` in paper Figure 8).  The paper used external resources
(Oxford English Dictionary pronunciations, the Dhvani TTS for Hindi, hand
conversion for Tamil); this package provides self-contained rule-based
converters with the same interface and the same cross-language phoneme-set
mismatches that make multiscript matching inherently fuzzy.

Use :func:`repro.ttp.registry.converter_for` to obtain a converter, or
:func:`repro.ttp.registry.transform` for the one-shot string → IPA path.
"""

from repro.ttp.base import TTPConverter, builtin_converters
from repro.ttp.registry import (
    TTPRegistry,
    default_registry,
    converter_for,
    transform,
    supported_languages,
    detect_language,
)

__all__ = [
    "TTPConverter",
    "builtin_converters",
    "TTPRegistry",
    "default_registry",
    "converter_for",
    "transform",
    "supported_languages",
    "detect_language",
]
