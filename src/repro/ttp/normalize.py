"""Input normalization shared by the TTP converters.

The paper's preprocessing removes "those symbols specific to speech
generation, such as the supra-segmentals, diacritics, tones and accents".
On the *input* side we do the analogous cleanup per script family:

* Latin text is case-folded and accent-stripped (``René`` → ``rene``,
  ``École`` → ``ecole``) so the grapheme rules see plain ASCII letters;
* Indic text is NFC-normalized so matras and nuktas combine predictably;
* characters irrelevant to vocalization (apostrophes, hyphens, periods in
  initials) are removed or treated as word separators.
"""

from __future__ import annotations

import unicodedata

_WORD_JOINERS = {"'", "’", "ʼ", "-", "–", "—", ".", ","}


def strip_accents(text: str) -> str:
    """Remove combining marks from Latin text (``é`` → ``e``)."""
    decomposed = unicodedata.normalize("NFD", text)
    return "".join(
        ch for ch in decomposed if not unicodedata.combining(ch)
    )


def normalize_latin(text: str) -> str:
    """Case-fold, strip accents and drop punctuation from Latin text."""
    text = strip_accents(text).lower()
    cleaned = []
    for ch in text:
        if ch in _WORD_JOINERS:
            continue
        cleaned.append(ch)
    return "".join(cleaned)


def normalize_indic(text: str) -> str:
    """NFC-normalize Indic text and drop Latin punctuation."""
    text = unicodedata.normalize("NFC", text)
    return "".join(ch for ch in text if ch not in _WORD_JOINERS)


def split_words(text: str) -> list[str]:
    """Split on whitespace; converters transcribe word by word."""
    return [w for w in text.split() if w]
