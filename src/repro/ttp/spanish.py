"""Spanish grapheme-to-phoneme conversion.

Spanish orthography is highly regular; the converter reuses the NRL rule
engine with a compact table (Latin-American seseo: ``z`` and soft ``c``
both map to ``s``).  Needed for the paper's motivating examples
(``Jesus``/``Hesus``, ``Español``) and for exercising the
language-dependent-vocalization scenario of Section 2.1: the same Latin
string run through the English and Spanish converters yields different
phoneme strings.
"""

from __future__ import annotations

from repro.phonetics.parse import PhonemeString
from repro.ttp.base import TTPConverter
from repro.ttp.normalize import split_words, strip_accents
from repro.ttp.rules import apply_rules, compile_rules

_RULES: list[tuple[str, str, str, str]] = [
    # A
    ("", "a", "", "a"),
    # B
    ("", "b", "", "b"),
    # C
    ("", "ch", "", "tʃ"),
    ("", "c", "+", "s"),
    ("", "c", "", "k"),
    # D
    ("", "d", "", "d"),
    # E
    ("", "e", "", "e"),
    # F
    ("", "f", "", "f"),
    # G
    ("", "gu", "+", "g"),
    ("", "g", "+", "x"),
    ("", "g", "", "g"),
    # H (silent)
    ("", "h", "", ""),
    # I
    ("", "i", "#", "j"),
    ("", "i", "", "i"),
    # J
    ("", "j", "", "x"),
    # K
    ("", "k", "", "k"),
    # L
    ("", "ll", "", "ʎ"),
    ("", "l", "", "l"),
    # M
    ("", "m", "", "m"),
    # N (ñ is normalized to n + combining tilde and pre-substituted below)
    ("", "nh", "", "ɲ"),
    ("", "n", "", "n"),
    # O
    ("", "o", "", "o"),
    # P
    ("", "p", "", "p"),
    # Q
    ("", "qu", "", "k"),
    ("", "q", "", "k"),
    # R
    (" ", "rr", "", "r"),
    ("", "rr", "", "r"),
    (" ", "r", "", "r"),
    ("", "r", "", "ɾ"),
    # S
    ("", "s", "", "s"),
    # T
    ("", "t", "", "t"),
    # U
    ("", "u", "#", "w"),
    ("", "u", "", "u"),
    # V (betacism: v = b)
    ("", "v", "", "b"),
    # W
    ("", "w", "", "w"),
    # X
    ("", "x", "", "ks"),
    # Y
    ("", "y", " ", "i"),
    ("", "y", "", "j"),
    # Z (seseo)
    ("", "z", "", "s"),
]


class SpanishConverter(TTPConverter):
    """Rule-based Spanish G2P (Latin-American pronunciation)."""

    language = "spanish"
    script = "latin"

    def __init__(self) -> None:
        self._index = compile_rules(_RULES)

    def _split(self, text: str) -> list[str]:
        return split_words(text)

    def _word_to_phonemes(self, word: str) -> PhonemeString:
        # ñ must survive accent stripping: rewrite it to the private
        # digraph "nh" before folding, then strip the remaining accents.
        lowered = word.lower().replace("ñ", "nh")
        normalized = strip_accents(lowered)
        normalized = "".join(ch for ch in normalized if ch.isalpha())
        if not normalized:
            return ()
        return apply_rules(normalized, self._index, self.language)
