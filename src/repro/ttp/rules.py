"""A context-sensitive grapheme-to-phoneme rule engine.

The engine implements the rule formalism of the classic NRL letter-to-sound
system (Elovitz et al., *Automatic Translation of English Text to
Phonetics*, 1976), which the English converter instantiates with a full
rule set and the French/Spanish converters reuse with smaller ones.

A rule is ``(left, fragment, right, phonemes)``: when ``fragment`` occurs
at the cursor with ``left`` matching the text before it and ``right`` the
text after it, emit ``phonemes`` and advance past the fragment.  Rules are
tried in order; the per-letter fallback rule at the end of each group makes
the system total.

Context pattern language (matched against normalized lowercase text):

=========  ==========================================================
symbol     matches
=========  ==========================================================
``#``      one or more vowels (``aeiouy``)
``:``      zero or more consonants
``^``      exactly one consonant
``.``      one voiced consonant (``bdvgjlmnrwz``)
``+``      one front vowel (``eiy``)
``%``      one of the suffixes ``er e es ed ing ely`` (right only)
``&``      a sibilant (``s c g z x j`` or digraph ``ch sh``)
``@``      a coronal-ish consonant (``t s r d l z n j`` or digraph
           ``th ch sh``)
(space)    a word boundary
letter     itself
=========  ==========================================================
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import TTPError
from repro.phonetics.parse import PhonemeString, parse_ipa

_VOWELS = frozenset("aeiouy")
_CONSONANTS = frozenset("bcdfghjklmnpqrstvwxz")
_VOICED = frozenset("bdvgjlmnrwz")
_FRONT = frozenset("eiy")
_SIBILANT_LETTERS = frozenset("scgzxj")
_AT_LETTERS = frozenset("tsrdlzn j".replace(" ", ""))
_SUFFIXES = ("er", "e", "es", "ed", "ing", "ely")


class Rule(NamedTuple):
    """One grapheme-to-phoneme rewrite rule."""

    left: str
    fragment: str
    right: str
    phonemes: PhonemeString


def compile_rules(
    table: list[tuple[str, str, str, str]]
) -> dict[str, list[Rule]]:
    """Compile ``(left, fragment, right, ipa)`` rows into a rule index.

    The IPA output field is parsed once here, so a typo in a rule fails at
    import time rather than at match time.  Rules are indexed by the first
    letter of their fragment and kept in table order within each group.
    """
    index: dict[str, list[Rule]] = {}
    for left, fragment, right, ipa in table:
        if not fragment:
            raise TTPError("rule with empty fragment")
        rule = Rule(left, fragment, right, parse_ipa(ipa))
        index.setdefault(fragment[0], []).append(rule)
    return index


def _match_right(text: str, pos: int, pattern: str) -> bool:
    """Match ``pattern`` against ``text[pos:]`` (left-to-right)."""
    if not pattern:
        return True
    ch = pattern[0]
    rest = pattern[1:]
    n = len(text)
    if ch == " ":
        return pos >= n and _match_right(text, pos, rest)
    if ch == "#":
        count = 0
        while pos + count < n and text[pos + count] in _VOWELS:
            count += 1
        # one-or-more vowels, longest first with backtracking
        for used in range(count, 0, -1):
            if _match_right(text, pos + used, rest):
                return True
        return False
    if ch == ":":
        count = 0
        while pos + count < n and text[pos + count] in _CONSONANTS:
            count += 1
        for used in range(count, -1, -1):
            if _match_right(text, pos + used, rest):
                return True
        return False
    if ch == "^":
        return (
            pos < n
            and text[pos] in _CONSONANTS
            and _match_right(text, pos + 1, rest)
        )
    if ch == ".":
        return (
            pos < n
            and text[pos] in _VOICED
            and _match_right(text, pos + 1, rest)
        )
    if ch == "+":
        return (
            pos < n
            and text[pos] in _FRONT
            and _match_right(text, pos + 1, rest)
        )
    if ch == "%":
        for suffix in _SUFFIXES:
            if text.startswith(suffix, pos) and _match_right(
                text, pos + len(suffix), rest
            ):
                return True
        return False
    if ch == "&":
        if pos + 1 < n and text[pos : pos + 2] in ("ch", "sh"):
            if _match_right(text, pos + 2, rest):
                return True
        return (
            pos < n
            and text[pos] in _SIBILANT_LETTERS
            and _match_right(text, pos + 1, rest)
        )
    if ch == "@":
        if pos + 1 < n and text[pos : pos + 2] in ("th", "ch", "sh"):
            if _match_right(text, pos + 2, rest):
                return True
        return (
            pos < n
            and text[pos] in _AT_LETTERS
            and _match_right(text, pos + 1, rest)
        )
    # literal letter
    return pos < n and text[pos] == ch and _match_right(text, pos + 1, rest)


def _match_left(text: str, end: int, pattern: str) -> bool:
    """Match ``pattern`` against ``text[:end]``, anchored at ``end``.

    The pattern is written left-to-right but consumed right-to-left, so
    ``"#:"`` means "vowels, then any consonants, immediately before the
    fragment".
    """
    if not pattern:
        return True
    ch = pattern[-1]
    rest = pattern[:-1]
    if ch == " ":
        return end <= 0 and _match_left(text, end, rest)
    if ch == "#":
        count = 0
        while end - count - 1 >= 0 and text[end - count - 1] in _VOWELS:
            count += 1
        for used in range(count, 0, -1):
            if _match_left(text, end - used, rest):
                return True
        return False
    if ch == ":":
        count = 0
        while end - count - 1 >= 0 and text[end - count - 1] in _CONSONANTS:
            count += 1
        for used in range(count, -1, -1):
            if _match_left(text, end - used, rest):
                return True
        return False
    if ch == "^":
        return (
            end > 0
            and text[end - 1] in _CONSONANTS
            and _match_left(text, end - 1, rest)
        )
    if ch == ".":
        return (
            end > 0
            and text[end - 1] in _VOICED
            and _match_left(text, end - 1, rest)
        )
    if ch == "+":
        return (
            end > 0
            and text[end - 1] in _FRONT
            and _match_left(text, end - 1, rest)
        )
    if ch == "&":
        if end >= 2 and text[end - 2 : end] in ("ch", "sh"):
            if _match_left(text, end - 2, rest):
                return True
        return (
            end > 0
            and text[end - 1] in _SIBILANT_LETTERS
            and _match_left(text, end - 1, rest)
        )
    if ch == "@":
        if end >= 2 and text[end - 2 : end] in ("th", "ch", "sh"):
            if _match_left(text, end - 2, rest):
                return True
        return (
            end > 0
            and text[end - 1] in _AT_LETTERS
            and _match_left(text, end - 1, rest)
        )
    return end > 0 and text[end - 1] == ch and _match_left(text, end - 1, rest)


def apply_rules(
    word: str,
    index: dict[str, list[Rule]],
    language: str,
) -> PhonemeString:
    """Transcribe ``word`` with the compiled rule index.

    Every position must be consumed by some rule; the per-letter fallback
    rules of a complete table guarantee this for alphabetic input.  A
    character with no rule group raises :class:`~repro.errors.TTPError`.
    """
    phonemes: list[str] = []
    pos = 0
    n = len(word)
    while pos < n:
        ch = word[pos]
        group = index.get(ch)
        if group is None:
            raise TTPError(
                f"{language} converter: no rule for character {ch!r} "
                f"in word {word!r}"
            )
        for rule in group:
            end = pos + len(rule.fragment)
            if not word.startswith(rule.fragment, pos):
                continue
            if not _match_left(word, pos, rule.left):
                continue
            if not _match_right(word, end, rule.right):
                continue
            phonemes.extend(rule.phonemes)
            pos = end
            break
        else:
            raise TTPError(
                f"{language} converter: no rule matched at {pos} in {word!r}"
            )
    return tuple(phonemes)
