"""Modern Greek grapheme-to-phoneme conversion.

Modern Greek orthography is close to phonemic once the digraphs are
known, so this converter is a longest-match table with two contextual
rules: ``αυ``/``ευ`` voice-assimilate to the following segment, and ``γ``
palatalizes before front vowels.  Accented vowels are folded to their
plain forms (stress is suprasegmental and the paper strips it).
"""

from __future__ import annotations

import unicodedata

from repro.errors import TTPError
from repro.phonetics.parse import PhonemeString, parse_ipa
from repro.ttp.base import TTPConverter

# Digraphs first (longest match wins).
_DIGRAPHS: dict[str, str] = {
    "ου": "u",
    "αι": "ɛ",
    "ει": "i",
    "οι": "i",
    "υι": "i",
    "μπ": "b",
    "ντ": "d",
    "γκ": "g",
    "γγ": "ŋg",
    "τσ": "ts",
    "τζ": "dz",
}

_SINGLES: dict[str, str] = {
    "α": "a", "β": "v", "δ": "ð", "ε": "ɛ", "ζ": "z", "η": "i",
    "θ": "θ", "ι": "i", "κ": "k", "λ": "l", "μ": "m", "ν": "n",
    "ξ": "ks", "ο": "o", "π": "p", "ρ": "r", "σ": "s", "ς": "s",
    "τ": "t", "υ": "i", "φ": "f", "χ": "x", "ψ": "ps", "ω": "o",
}

_FRONT_VOWELS = frozenset("ειηυ")
_VOWELS = frozenset("αεηιουω")
# Voiced segments trigger [v] in αυ/ευ; voiceless trigger [f].
_VOICELESS_LETTERS = frozenset("θκξπστφχψ")


def _fold(text: str) -> str:
    """Lowercase and strip Greek accents/diaeresis."""
    lowered = text.lower()
    decomposed = unicodedata.normalize("NFD", lowered)
    stripped = "".join(
        ch for ch in decomposed if not unicodedata.combining(ch)
    )
    return unicodedata.normalize("NFC", stripped)


class GreekConverter(TTPConverter):
    """Modern Greek G2P (monotonic orthography)."""

    language = "greek"
    script = "greek"

    def _word_to_phonemes(self, word: str) -> PhonemeString:
        word = _fold(word)
        phonemes: list[str] = []
        i = 0
        n = len(word)
        while i < n:
            pair = word[i : i + 2]
            ch = word[i]
            if pair in ("αυ", "ευ"):
                vowel = "a" if ch == "α" else "ɛ"
                nxt = word[i + 2] if i + 2 < n else ""
                fricative = "f" if (not nxt or nxt in _VOICELESS_LETTERS) else "v"
                phonemes.extend(parse_ipa(vowel + fricative))
                i += 2
                continue
            if pair in _DIGRAPHS:
                phonemes.extend(parse_ipa(_DIGRAPHS[pair]))
                i += 2
                continue
            if ch == "γ":
                nxt = word[i + 1] if i + 1 < n else ""
                value = "j" if nxt in _FRONT_VOWELS else "ɣ"
                phonemes.append(value)
                i += 1
                continue
            if ch in _SINGLES:
                phonemes.extend(parse_ipa(_SINGLES[ch]))
                i += 1
                continue
            raise TTPError(
                f"greek converter: unsupported character {ch!r} in {word!r}"
            )
        return tuple(phonemes)
