"""The wire protocol: newline-delimited JSON requests and responses.

One TCP connection carries a sequence of *requests*, each a single JSON
object on its own ``\\n``-terminated UTF-8 line, answered in order by
exactly one *response* line.  The shape mirrors what pragmatic network
databases (Redis' RESP, CouchDB's _changes, ES' bulk API) converged on:
human-debuggable framing (``nc`` is a usable client) with structured
payloads.

Request::

    {"op": "query", "id": 7, "sql": "SELECT ...", "params": {...}}

``op`` is required; ``id`` is optional and echoed verbatim in the
response so clients may pipeline.  Responses are either::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "sql_error", "message": "..."}}

Ops, fields and error codes are specified in DESIGN.md §7; this module
owns encoding/decoding and request validation, and knows nothing about
execution.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProtocolError
from repro.minidb.values import LangText

#: Default TCP port (the paper is EDBT 2004).
DEFAULT_PORT = 2004

#: Hard cap on one request/response line, in bytes.  Protects the server
#: from unbounded buffering on hostile or broken clients.
MAX_LINE_BYTES = 1 << 20

# ---------------------------------------------------------- error codes

#: Request line was not valid JSON.
E_PARSE = "parse_error"
#: Request was valid JSON but not a valid request object.
E_INVALID = "invalid_request"
#: ``op`` is not one of the supported operations.
E_UNKNOWN_OP = "unknown_op"
#: Request line exceeded :data:`MAX_LINE_BYTES`.
E_TOO_LARGE = "too_large"
#: SQL could not be parsed, planned or executed.
E_SQL = "sql_error"
#: ``execute`` named a statement this session never prepared.
E_UNKNOWN_STATEMENT = "unknown_statement"
#: The per-request timeout expired before a worker finished.
E_TIMEOUT = "timeout"
#: The max-inflight backpressure limit rejected the request.
E_OVERLOADED = "overloaded"
#: The server is draining (SIGTERM received); no new work accepted.
E_SHUTTING_DOWN = "shutting_down"
#: No backend can answer (cluster mode: every owning shard is down, or
#: a write could not reach all shards).  Distinct from ``degraded``
#: responses, which are partial *successes*.
E_UNAVAILABLE = "unavailable"
#: Unexpected server-side failure (a bug; details in the message).
E_INTERNAL = "internal"

#: Supported operations (each documented in DESIGN.md §7).  ``faults``
#: drives the fault-injection registry and is rejected unless the
#: server was started with fault injection enabled.  ``health`` is the
#: liveness/readiness probe the cluster supervisor shares with
#: ``repro.cli client health``.
OPS = (
    "ping",
    "query",
    "prepare",
    "execute",
    "lexequal",
    "stats",
    "faults",
    "health",
)

#: Degradation fields a partial response may carry (DESIGN.md §7/§11).
#: A payload with any ``failed_*`` list MUST also set ``degraded``;
#: the LEX-A001 drift rule pins these literals across server, router
#: and docs so the names cannot fork.
F_DEGRADED = "degraded"
F_FAILED_LANGUAGES = "failed_languages"
F_FAILED_SHARDS = "failed_shards"
DEGRADED_FIELDS = (F_DEGRADED, F_FAILED_LANGUAGES, F_FAILED_SHARDS)


def decode_request(line: bytes | str) -> dict:
    """Parse and validate one request line into a request dict.

    Raises :class:`~repro.errors.ProtocolError` carrying the wire error
    code (``parse_error`` / ``invalid_request`` / ``unknown_op``).
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(E_PARSE, f"request is not UTF-8: {exc}")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(E_PARSE, f"request is not valid JSON: {exc}")
    if not isinstance(request, dict):
        raise ProtocolError(
            E_INVALID, "request must be a JSON object with an 'op' field"
        )
    # Validate the id first so later failures can still echo it back.
    request_id = request.get("id")
    if request_id is not None and not isinstance(
        request_id, (str, int, float)
    ):
        raise ProtocolError(E_INVALID, "'id' must be a string or number")

    def fail(code: str, message: str):
        error = ProtocolError(code, message)
        error.request_id = request_id
        raise error

    op = request.get("op")
    if not isinstance(op, str):
        fail(E_INVALID, "missing or non-string 'op' field")
    if op not in OPS:
        fail(
            E_UNKNOWN_OP,
            f"unknown op {op!r} (supported: {', '.join(OPS)})",
        )
    return request


def require_str(request: dict, field: str) -> str:
    """A required string field of a validated request."""
    value = request.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            E_INVALID, f"op {request['op']!r} needs a string {field!r} field"
        )
    return value


def optional_params(request: dict) -> dict:
    """The optional ``params`` field (SQL ``:name`` bindings)."""
    params = request.get("params")
    if params is None:
        return {}
    if not isinstance(params, dict):
        raise ProtocolError(E_INVALID, "'params' must be a JSON object")
    return params


def ok_response(request_id: Any, result: Any) -> bytes:
    """Encode a success response line (trailing newline included)."""
    return _encode({"id": request_id, "ok": True, "result": result})


def error_response(request_id: Any, code: str, message: str) -> bytes:
    """Encode an error response line (trailing newline included)."""
    return _encode(
        {
            "id": request_id,
            "ok": False,
            "error": {"code": code, "message": message},
        }
    )


def _encode(payload: dict) -> bytes:
    return (
        json.dumps(payload, ensure_ascii=False, default=jsonable) + "\n"
    ).encode("utf-8")


def jsonable(value: Any) -> Any:
    """JSON representation of a minidb value.

    :class:`~repro.minidb.values.LangText` becomes a tagged object so
    clients keep the language; anything else non-JSON falls back to
    ``str`` (loud types are better added here explicitly).
    """
    if isinstance(value, LangText):
        return {"text": value.text, "language": value.language}
    return str(value)


def jsonable_rows(rows: list[tuple]) -> list[list]:
    """Result rows as JSON-ready lists (see :func:`jsonable`)."""
    scalar = (type(None), bool, int, float, str)
    return [
        [v if isinstance(v, scalar) else jsonable(v) for v in row]
        for row in rows
    ]
