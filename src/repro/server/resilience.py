"""Client-side resilience: retry policies and circuit breakers.

A multiscript-matching service is only as reliable as its clients are
patient: transient faults (a dropped connection, a draining server, a
momentary overload reject) should be ridden through, while a *failing*
endpoint should be backed away from instead of hammered.  Two policies,
both consumed by :class:`~repro.server.client.LexEqualClient`:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *full jitter* (delay drawn uniformly from ``[0, min(cap, base·m^n)]``,
  the AWS-style variant that de-synchronizes retry storms);
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine per operation: after ``failure_threshold`` consecutive
  transport failures the breaker opens and calls fail fast with
  :class:`~repro.errors.CircuitOpenError`; after ``reset_timeout``
  seconds one half-open probe is let through, and its outcome closes or
  re-opens the circuit.

State transitions and retry decisions feed ``client.*`` metrics in
:mod:`repro.obs`, so a chaos run can assert *how* the client survived,
not just that it did.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro import obs
from repro.errors import CircuitOpenError
from repro.locks import make_lock

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with full jitter.

    ``max_attempts`` counts the first try: ``max_attempts=4`` is one
    call plus up to three retries.  Retry ``n`` (1-based) sleeps a
    uniform random delay in ``[0, min(max_delay, base_delay *
    multiplier**(n-1))]``.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")

    def backoff(self, retry_number: int, rng: random.Random) -> float:
        """The jittered delay before retry ``retry_number`` (1-based)."""
        cap = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (retry_number - 1),
        )
        return rng.uniform(0.0, cap)


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs for one :class:`CircuitBreaker`."""

    failure_threshold: int = 5
    reset_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")


class CircuitBreaker:
    """Closed → open → half-open breaker for one endpoint (op or shard).

    Thread-safe: the blocking client issues one request at a time, but
    the cluster router shares one breaker per *shard* across many
    concurrent fan-outs (and benchmark load generators race breakers
    deliberately).  All state lives behind one lock, and half-open
    admits **exactly one probe**: concurrent :meth:`allow` calls while
    the probe is in flight fail fast with
    :class:`~repro.errors.CircuitOpenError`.  The probe permit is
    released by whichever of :meth:`record_success` /
    :meth:`record_failure` resolves it, so a failed probe re-opens the
    circuit without stranding other callers' permit accounting.
    """

    def __init__(
        self,
        name: str,
        policy: BreakerPolicy | None = None,
        *,
        clock=time.monotonic,
    ):
        self.name = name
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._lock = make_lock("server.breaker")
        self.state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        #: True while the single half-open probe is in flight.
        self._probe_in_flight = False
        self._transitions: dict[str, int] = {}

    # ------------------------------------------------------------ states

    def _transition(self, new_state: str) -> None:
        # Caller holds self._lock.
        if new_state == self.state:
            return
        key = f"{self.state}->{new_state}"
        self._transitions[key] = self._transitions.get(key, 0) + 1
        obs.incr(f"client.breaker.transitions.{self.state}_to_{new_state}")
        self.state = new_state

    def allow(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` when open.

        An open breaker whose ``reset_timeout`` has elapsed moves to
        half-open and lets exactly one call through as the probe; other
        callers keep failing fast until the probe resolves.
        """
        with self._lock:
            if self.state == OPEN:
                elapsed = self._clock() - (self._opened_at or 0.0)
                if elapsed < self.policy.reset_timeout:
                    obs.incr("client.breaker.fast_fails")
                    raise CircuitOpenError(
                        self.name, self.policy.reset_timeout - elapsed
                    )
                self._transition(HALF_OPEN)
                self._probe_in_flight = True
                return
            if self.state == HALF_OPEN:
                if self._probe_in_flight:
                    obs.incr("client.breaker.fast_fails")
                    raise CircuitOpenError(self.name, 0.0)
                self._probe_in_flight = True

    def record_success(self) -> None:
        """A call completed at the transport level: close the circuit."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self.state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """A transport failure: trip or re-trip as the policy dictates."""
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self.state == HALF_OPEN:
                # The probe failed: straight back to open, timer re-armed.
                self._opened_at = self._clock()
                self._transition(OPEN)
            elif (
                self.state == CLOSED
                and self._consecutive_failures
                >= self.policy.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(OPEN)

    def info(self) -> dict:
        """Breaker state for diagnostics/metrics export."""
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.policy.failure_threshold,
                "reset_timeout": self.policy.reset_timeout,
                "probe_in_flight": self._probe_in_flight,
                "transitions": dict(self._transitions),
            }


class BreakerBoard:
    """Per-op circuit breakers sharing one policy (the client's view)."""

    def __init__(
        self, policy: BreakerPolicy | None = None, *, clock=time.monotonic
    ):
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._lock = make_lock("server.breaker_board")
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, op: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(op)
            if breaker is None:
                breaker = CircuitBreaker(op, self.policy, clock=self._clock)
                self._breakers[op] = breaker
            return breaker

    def info(self) -> dict:
        with self._lock:
            breakers = sorted(self._breakers.items())
        return {op: b.info() for op, b in breakers}
