"""A bounded worker pool bridging the event loop and CPU-bound matching.

The DP matcher and the SQL executor are pure-Python CPU work; running
them on the asyncio loop would stall every connection behind the
slowest query.  :class:`WorkerPool` offloads them to a small thread pool
and wraps three service-level policies around the hop:

* **backpressure** — at most ``max_inflight`` requests may be admitted
  (queued or running); beyond that, :meth:`run` fails *immediately*
  with :class:`PoolOverloadedError`, which the server maps to a
  structured ``overloaded`` error response.  Overload degrades into
  fast rejects, never into an unbounded queue or a hang;
* **per-request timeouts** — a request that exceeds its deadline fails
  with :class:`PoolTimeoutError` (wire code ``timeout``).  The thread
  itself cannot be interrupted mid-DP, so the slot stays occupied until
  the function returns — the accounting deliberately reflects the real
  load, which is what backpressure must see;
* **draining** — after :meth:`begin_drain`, new admissions fail with
  :class:`PoolDrainingError` while already-admitted requests run to
  completion; :meth:`wait_idle` resolves when the last one finishes
  (SIGTERM's graceful-shutdown path).

Inflight accounting mutates only on the event loop thread (admission in
:meth:`run`, release via a done-callback scheduled on the loop), so it
needs no lock.  Queue wait and execution time feed the
``server.queue_wait_seconds`` / ``server.worker_seconds`` histograms.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro import deadline, faults, obs
from repro.errors import DeadlineExceededError, ServerError


class PoolOverloadedError(ServerError):
    """Admission failed: the max-inflight backpressure limit was hit."""


class PoolTimeoutError(ServerError):
    """The per-request deadline expired before the worker finished."""


class PoolDrainingError(ServerError):
    """Admission failed: the pool is draining for shutdown."""


class WorkerPool:
    """Bounded ThreadPoolExecutor with inflight accounting (see module)."""

    def __init__(
        self,
        max_workers: int = 4,
        max_inflight: int = 32,
        request_timeout: float | None = 30.0,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_workers = max_workers
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="lexequal-worker"
        )
        self._inflight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    @property
    def inflight(self) -> int:
        """Requests admitted and not yet finished (queued or running)."""
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    async def run(
        self,
        fn: Callable[[], Any],
        *,
        timeout: float | None = None,
    ) -> Any:
        """Run ``fn()`` on a worker thread, enforcing the pool policies.

        ``timeout=None`` uses the pool default; pass ``0`` (or negative)
        to disable the deadline for this request.
        """
        if self._draining:
            obs.incr("server.rejects.draining")
            raise PoolDrainingError("server is shutting down")
        if faults.fire("pool.admit"):
            # Injected admission failure: surfaces as the same
            # structured overload reject a saturated pool produces.
            obs.incr("server.rejects.overloaded")
            raise PoolOverloadedError(
                "server overloaded (injected admission fault); retry later"
            )
        if self._inflight >= self.max_inflight:
            obs.incr("server.rejects.overloaded")
            raise PoolOverloadedError(
                f"server overloaded ({self._inflight} requests in flight, "
                f"limit {self.max_inflight}); retry later"
            )
        if timeout is None:
            timeout = self.request_timeout
        if timeout is not None and timeout <= 0:
            timeout = None

        loop = asyncio.get_running_loop()
        self._inflight += 1
        self._idle.clear()
        admitted = time.perf_counter()

        # The cooperative deadline mirrors the protocol timeout and is
        # anchored at admission (queue wait spends budget too): when the
        # response is already doomed to a `timeout` error, the worker
        # thread aborts its DP matching (repro.deadline) instead of
        # burning the slot to completion.
        deadline_at = (
            time.monotonic() + timeout if timeout is not None else None
        )

        def timed_fn():
            started = time.perf_counter()
            obs.observe("server.queue_wait_seconds", started - admitted)
            remaining = (
                deadline_at - time.monotonic()
                if deadline_at is not None
                else None
            )
            try:
                with deadline.deadline_scope(remaining):
                    faults.fire("pool.execute")  # latency/error injection
                    return fn()
            finally:
                obs.observe(
                    "server.worker_seconds", time.perf_counter() - started
                )

        future = loop.run_in_executor(self._executor, timed_fn)
        future.add_done_callback(self._release)
        try:
            # shield(): a timeout must not cancel the executor future —
            # the thread keeps running regardless, and the done-callback
            # is what releases the inflight slot.
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            obs.incr("server.timeouts")
            raise PoolTimeoutError(
                f"request exceeded the {timeout:g}s timeout"
            ) from None

    def _release(self, future: asyncio.Future) -> None:
        # Runs on the event loop.  Retrieve the exception of abandoned
        # (timed-out) futures so asyncio does not log it as unhandled.
        if not future.cancelled():
            exc = future.exception()
            if isinstance(exc, DeadlineExceededError):
                # The worker aborted its DP cooperatively: the slot is
                # back this much earlier than run-to-completion.
                obs.incr("server.deadline.cancels")
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    # --------------------------------------------------------- shutdown

    def begin_drain(self) -> None:
        """Stop admitting; inflight requests keep running."""
        self._draining = True

    async def wait_idle(self, timeout: float | None = None) -> bool:
        """Wait until no request is inflight; False if ``timeout`` hit."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def close(self) -> None:
        """Release the worker threads (does not wait for stragglers)."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    def info(self) -> dict:
        """Pool state for the ``stats`` op."""
        return {
            "workers": self.max_workers,
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "request_timeout": self.request_timeout,
            "draining": self._draining,
        }
