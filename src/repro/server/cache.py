"""A thread-safe LRU cache of parsed statements, keyed on SQL text.

The server executes on worker threads, and real workloads repeat the
same statement shapes endlessly (the paper's Figure 3 query with varying
bindings), so parsing is hoisted out of the per-request path: the first
time a SQL text is seen it is parsed once and the AST is cached;
``prepare``/``execute`` and plain ``query`` both route through here.
Statement ASTs are immutable dataclass trees, so one cached entry is
safely shared by concurrent executions — the planner builds a fresh
physical plan per execution (plans close over their parameter bindings
and cannot be reused across requests).

Hits and misses feed the ``server.statement_cache.*`` counters and the
``stats`` op's ``statement_cache`` block.
"""

from __future__ import annotations

from collections import OrderedDict

from repro import obs
from repro.locks import make_lock
from repro.minidb.sql import Statement, parse


class StatementCache:
    """Bounded LRU mapping SQL text to its parsed :class:`Statement`."""

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("statement cache needs maxsize >= 1")
        self.maxsize = maxsize
        self._lock = make_lock("server.cache")
        self._entries: OrderedDict[str, Statement] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def statement(self, sql: str) -> Statement:
        """The parsed statement for ``sql``, parsing and caching on miss.

        Parse errors propagate (and are not cached: a typo retried after
        a schema fix should be re-parsed, and failures are rare).
        """
        with self._lock:
            cached = self._entries.get(sql)
            if cached is not None:
                self._entries.move_to_end(sql)
                self._hits += 1
                obs.incr("server.statement_cache.hits")
                return cached
        # Parse outside the lock: parsing is pure and the cache stays
        # responsive; a concurrent duplicate parse just loses the race.
        stmt = parse(sql)
        with self._lock:
            self._misses += 1
            obs.incr("server.statement_cache.misses")
            self._entries[sql] = stmt
            self._entries.move_to_end(sql)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                obs.incr("server.statement_cache.evictions")
        return stmt

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> dict:
        """Cache state for the ``stats`` op (JSON-serializable)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
