"""Per-connection session state.

Each TCP connection gets one :class:`Session`: a server-unique id (shown
in logs and ``stats``), a monotone request counter, and the connection's
prepared statements.  Prepared statements are *session-scoped names*
bound to SQL text — the parsed ASTs themselves live in the shared
:class:`~repro.server.cache.StatementCache`, so two sessions preparing
the same SQL share one parse.

Sessions are only touched from the event loop (handlers run request
dispatch on the loop and offload pure execution to workers), so they
need no locking of their own.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.server.protocol import E_INVALID, E_UNKNOWN_STATEMENT

_session_ids = itertools.count(1)


@dataclass
class Session:
    """State of one client connection."""

    session_id: int = field(default_factory=lambda: next(_session_ids))
    peer: str = ""
    requests: int = 0
    _prepared: dict[str, str] = field(default_factory=dict)
    _names: itertools.count = field(
        default_factory=lambda: itertools.count(1)
    )

    def prepare(self, sql: str, name: str | None = None) -> str:
        """Bind ``sql`` under ``name`` (or a generated ``s<n>`` name).

        Re-preparing an existing name rebinds it, like SQL PREPARE in
        most engines.
        """
        if name is None:
            name = f"s{next(self._names)}"
        elif not isinstance(name, str) or not name:
            raise ProtocolError(E_INVALID, "'name' must be a string")
        self._prepared[name] = sql
        return name

    def prepared_sql(self, name: str) -> str:
        """The SQL text bound to ``name``; raises ``unknown_statement``."""
        try:
            return self._prepared[name]
        except KeyError:
            raise ProtocolError(
                E_UNKNOWN_STATEMENT,
                f"no prepared statement {name!r} in this session",
            ) from None

    @property
    def prepared_count(self) -> int:
        return len(self._prepared)
