"""The asyncio TCP server: connections, dispatch, graceful shutdown.

:class:`LexEqualServer` glues the transport-free pieces together: it
accepts connections, frames newline-delimited JSON requests
(:mod:`~repro.server.protocol`), keeps one
:class:`~repro.server.session.Session` per connection, runs cheap ops
(``ping``, ``prepare``, ``stats``) inline on the loop and offloads
CPU-bound ops (``query``, ``execute``, ``lexequal``) through the
:class:`~repro.server.workers.WorkerPool`.

Shutdown is graceful: :meth:`LexEqualServer.shutdown` stops accepting,
drains inflight requests (their responses are written), then closes the
remaining connections.  :func:`serve` wires that to SIGTERM/SIGINT for
the CLI, and :class:`BackgroundServer` runs the whole thing on a daemon
thread for tests and benchmarks.

Every layer feeds ``repro.obs``: connection open/close counters,
per-request latency histograms, per-op request counters, reject and
timeout counters — all visible through the ``stats`` op.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
import time

from repro import faults, obs
from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    ServerError,
)
from repro.server import protocol
from repro.server.service import QueryService
from repro.server.session import Session
from repro.server.workers import (
    PoolDrainingError,
    PoolOverloadedError,
    PoolTimeoutError,
    WorkerPool,
)

#: Wire error code for each pool failure.
_POOL_ERRORS = {
    PoolOverloadedError: protocol.E_OVERLOADED,
    PoolTimeoutError: protocol.E_TIMEOUT,
    PoolDrainingError: protocol.E_SHUTTING_DOWN,
}


class LexEqualServer:
    """A concurrent multiscript query service over one shared engine."""

    def __init__(
        self,
        service: QueryService | None = None,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        *,
        max_workers: int = 4,
        max_inflight: int = 32,
        request_timeout: float | None = 30.0,
        drain_timeout: float = 10.0,
        fault_injection: bool = False,
    ):
        self.service = service or QueryService()
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        #: Whether the remote ``faults`` op may reconfigure failpoints.
        #: Off by default — chaos tooling opts in explicitly
        #: (``lexequal serve --fault-injection`` / REPRO_FAULT_OPS=1).
        self.fault_injection = fault_injection
        self.pool = WorkerPool(
            max_workers=max_workers,
            max_inflight=max_inflight,
            request_timeout=request_timeout,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._started = 0.0
        # Requests between decode and response-write.  Drain waits on
        # this (not just pool idleness): an answered worker future does
        # not mean the response bytes were written yet.
        self._active_requests = 0
        self._quiesced = asyncio.Event()
        self._quiesced.set()

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        Metrics are enabled process-wide: a server without its ``stats``
        op would be flying blind, and the registry's overhead is the
        cost the observability layer already budgeted for.
        """
        obs.enable()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self._started = time.monotonic()
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish inflight, close.

        Ordering matters: the listening socket must be fully closed
        *before* the drain wait starts, so connection attempts during
        the drain are refused at the OS level instead of being accepted
        into a server that will never answer them.
        """
        if self._server is not None:
            self._server.close()
            # Let the loop process the listener close before draining;
            # without this tick an accept already scheduled could still
            # hand a doomed connection to _handle_connection.
            await asyncio.sleep(0)
        self.pool.begin_drain()
        try:
            await asyncio.wait_for(
                self._quiesced.wait(), self.drain_timeout
            )
        except asyncio.TimeoutError:
            obs.incr("server.drain.timeouts")
        for task, writer in list(self._connections.items()):
            writer.close()
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        if self._server is not None:
            await self._server.wait_closed()
        self.pool.close()

    def info(self) -> dict:
        """Server gauges for the ``stats`` op."""
        return {
            "host": self.host,
            "port": self.port,
            "connections": len(self._connections),
            "active_requests": self._active_requests,
            "uptime_seconds": (
                time.monotonic() - self._started if self._started else 0.0
            ),
            "pool": self.pool.info(),
        }

    # --------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections[task] = writer
        peername = writer.get_extra_info("peername")
        session = Session(peer=str(peername))
        obs.incr("server.connections.opened")
        try:
            await self._serve_session(session, reader, writer)
        except (
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away or server is closing: normal ends
        finally:
            obs.incr("server.connections.closed")
            self._connections.pop(task, None)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_session(
        self,
        session: Session,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # Line exceeded the stream limit: the framing is lost,
                # so answer once and drop the connection.
                writer.write(
                    protocol.error_response(
                        None,
                        protocol.E_TOO_LARGE,
                        f"request line exceeds "
                        f"{protocol.MAX_LINE_BYTES} bytes",
                    )
                )
                await writer.drain()
                return
            if not line:
                return  # EOF: client closed
            if not line.strip():
                continue
            if faults.fire("server.conn.drop_read"):
                # Injected transport fault: the request line is lost
                # before processing (a mid-request connection reset).
                obs.incr("server.conn.injected_drops")
                return
            session.requests += 1
            self._active_requests += 1
            self._quiesced.clear()
            try:
                started = time.perf_counter()
                response = await self._respond(session, line)
                obs.observe(
                    "server.request_seconds",
                    time.perf_counter() - started,
                )
                if faults.fire("server.conn.drop_write"):
                    # Injected transport fault: the work was done but
                    # the response bytes never reach the client.
                    obs.incr("server.conn.injected_drops")
                    return
                writer.write(response)
                await writer.drain()
            finally:
                self._active_requests -= 1
                if self._active_requests == 0:
                    self._quiesced.set()

    # ------------------------------------------------------------ dispatch

    async def _respond(self, session: Session, line: bytes) -> bytes:
        request_id = None
        try:
            request = protocol.decode_request(line)
            request_id = request.get("id")
            obs.incr("server.requests")
            obs.incr(f"server.requests.{request['op']}")
            result = await self._dispatch(session, request)
            return protocol.ok_response(request_id, result)
        except ProtocolError as exc:
            obs.incr("server.errors")
            request_id = getattr(exc, "request_id", request_id)
            return protocol.error_response(request_id, exc.code, str(exc))
        except DeadlineExceededError as exc:
            # The worker cancelled itself cooperatively; same wire code
            # as a protocol-level timeout, but the slot is already free.
            # (server.deadline.cancels is counted where the worker
            # future resolves, so it covers the common case where the
            # asyncio timeout wins the race for the response.)
            obs.incr("server.errors")
            return protocol.error_response(
                request_id, protocol.E_TIMEOUT, str(exc)
            )
        except ServerError as exc:
            # Pool admission/timeout failures carry their wire code.
            obs.incr("server.errors")
            code = _POOL_ERRORS.get(type(exc), protocol.E_INTERNAL)
            return protocol.error_response(request_id, code, str(exc))
        except ReproError as exc:
            # SQL/matching errors: the request failed, the session lives.
            obs.incr("server.errors")
            return protocol.error_response(
                request_id, protocol.E_SQL, str(exc)
            )
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            obs.incr("server.errors.internal")
            return protocol.error_response(
                request_id,
                protocol.E_INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )

    async def _dispatch(self, session: Session, request: dict):
        op = request["op"]
        service = self.service
        if op == "ping":
            return "pong"
        if op == "health":
            # Inline on the loop: the supervisor's health checks must
            # answer even when every worker slot is busy.
            return service.health(self.info())
        if op == "stats":
            return service.stats(self.info())
        if op == "faults":
            if not self.fault_injection:
                raise ProtocolError(
                    protocol.E_INVALID,
                    "fault injection is disabled on this server "
                    "(start with --fault-injection)",
                )
            return service.faults_op(request)
        if op == "prepare":
            sql = protocol.require_str(request, "sql")
            return service.prepare(session, sql, request.get("name"))
        timeout = request.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError(
                protocol.E_INVALID, "'timeout' must be a number"
            )
        if op == "query":
            sql = protocol.require_str(request, "sql")
            params = protocol.optional_params(request)
            return await self.pool.run(
                lambda: service.run_sql(sql, params), timeout=timeout
            )
        if op == "execute":
            name = protocol.require_str(request, "statement")
            # Resolve the name on the loop so unknown statements fail
            # fast (and never consume a worker slot).
            sql = session.prepared_sql(name)
            params = protocol.optional_params(request)
            return await self.pool.run(
                lambda: service.run_sql(sql, params), timeout=timeout
            )
        if op == "lexequal":
            left = protocol.require_str(request, "left")
            right = protocol.require_str(request, "right")
            threshold = request.get("threshold")
            languages = request.get("languages", "")
            if isinstance(languages, list):
                languages = ",".join(str(lang) for lang in languages)
            return await self.pool.run(
                lambda: service.lexequal(left, right, threshold, languages),
                timeout=timeout,
            )
        raise ProtocolError(  # pragma: no cover - decode_request guards
            protocol.E_UNKNOWN_OP, f"unknown op {op!r}"
        )


# ------------------------------------------------------------ entrypoints


async def serve_async(
    server: LexEqualServer, *, ready=None, stop: asyncio.Event | None = None
) -> None:
    """Run ``server`` until ``stop`` is set or SIGTERM/SIGINT arrives.

    ``ready(host, port)`` is called once the socket is bound (the CLI
    prints the address from it; tests capture the ephemeral port).
    """
    host, port = await server.start()
    if ready is not None:
        ready(host, port)
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    registered: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            registered.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without signal support
    try:
        await stop.wait()
    finally:
        for sig in registered:
            loop.remove_signal_handler(sig)
        await server.shutdown()


def serve(
    service: QueryService | None = None,
    host: str = "127.0.0.1",
    port: int = protocol.DEFAULT_PORT,
    *,
    ready=None,
    **options,
) -> None:
    """Blocking entrypoint: serve until SIGTERM/SIGINT, then drain."""
    server = LexEqualServer(service, host, port, **options)
    asyncio.run(serve_async(server, ready=ready))


class BackgroundServer:
    """A server on a daemon thread, for tests, benchmarks and scripts.

    Usage::

        with BackgroundServer() as bg:
            client = LexEqualClient(bg.host, bg.port)
            ...

    Exiting the context performs the same graceful drain as SIGTERM.
    """

    def __init__(self, service: QueryService | None = None, **options):
        options.setdefault("host", "127.0.0.1")
        options.setdefault("port", 0)
        host = options.pop("host")
        port = options.pop("port")
        self.server = LexEqualServer(service, host, port, **options)
        self.host: str | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, name="lexequal-server", daemon=True
        )

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def ready(host, port):
                self.host, self.port = host, port
                self._ready.set()

            try:
                await serve_async(
                    self.server, ready=ready, stop=self._stop
                )
            finally:
                self._ready.set()  # unblock start() on bind failure

        asyncio.run(main())

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self.port is None:
            raise ServerError("background server failed to start")
        return self

    def stop(self, timeout: float = 15.0) -> None:
        """Request graceful shutdown and wait for the thread to exit."""
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
