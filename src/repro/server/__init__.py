"""``repro.server`` — the concurrent multiscript query service.

A long-running network front-end for the reproduction: an asyncio TCP
server speaking a newline-delimited JSON protocol (``ping``, ``query``,
``prepare``/``execute``, ``lexequal``, ``stats``) over one shared
engine, with a statement cache, a bounded worker pool (backpressure +
per-request timeouts), graceful SIGTERM drain, and a small blocking
client.  See DESIGN.md §7 for the protocol specification and
``lexequal serve`` / ``lexequal client`` for the CLI front-ends.
"""

from repro.server.app import BackgroundServer, LexEqualServer, serve
from repro.server.cache import StatementCache
from repro.server.client import LexEqualClient
from repro.server.protocol import DEFAULT_PORT, MAX_LINE_BYTES, OPS
from repro.server.resilience import (
    BreakerBoard,
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
)
from repro.server.service import QueryService
from repro.server.session import Session
from repro.server.workers import (
    PoolDrainingError,
    PoolOverloadedError,
    PoolTimeoutError,
    WorkerPool,
)

__all__ = [
    "BackgroundServer",
    "BreakerBoard",
    "BreakerPolicy",
    "CircuitBreaker",
    "DEFAULT_PORT",
    "LexEqualClient",
    "LexEqualServer",
    "MAX_LINE_BYTES",
    "OPS",
    "PoolDrainingError",
    "PoolOverloadedError",
    "PoolTimeoutError",
    "QueryService",
    "RetryPolicy",
    "Session",
    "StatementCache",
    "WorkerPool",
    "serve",
]
