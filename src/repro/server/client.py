"""A small blocking client for the LexEQUAL query service.

Speaks the newline-delimited JSON protocol over a plain socket; one
request at a time per client (the protocol itself allows pipelining,
but the blocking client keeps the simple request/response discipline).
This is what ``lexequal client`` and the throughput benchmark use, and
the reference implementation for clients in other languages::

    from repro.server.client import LexEqualClient

    with LexEqualClient(port=2004) as client:
        client.ping()
        result = client.query(
            "SELECT author, title FROM books "
            "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
        )
        for row in result["rows"]:
            print(row)

Server-side failures surface as :class:`~repro.errors.RequestFailedError`
(carrying the wire error code); transport failures as
:class:`~repro.errors.ServerConnectionError`.  Both derive from
:class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Any

from repro.errors import (
    ProtocolError,
    RequestFailedError,
    ServerConnectionError,
)
from repro.server.protocol import DEFAULT_PORT, E_PARSE, MAX_LINE_BYTES


class LexEqualClient:
    """Blocking connection to a :class:`~repro.server.app.LexEqualServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float | None = 60.0,
    ):
        self.host = host
        self.port = port
        self._ids = itertools.count(1)
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ServerConnectionError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from None
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------ plumbing

    def request(self, op: str, **fields: Any) -> Any:
        """Send one request and return its ``result`` payload.

        Raises :class:`~repro.errors.RequestFailedError` on an error
        response and :class:`~repro.errors.ServerConnectionError` when
        the connection drops.
        """
        request_id = next(self._ids)
        payload = {"op": op, "id": request_id}
        payload.update(
            (k, v) for k, v in fields.items() if v is not None
        )
        line = (json.dumps(payload, ensure_ascii=False) + "\n").encode(
            "utf-8"
        )
        try:
            self._sock.sendall(line)
            raw = self._reader.readline(MAX_LINE_BYTES + 1)
        except OSError as exc:
            raise ServerConnectionError(
                f"connection to {self.host}:{self.port} failed: {exc}"
            ) from None
        if not raw:
            raise ServerConnectionError(
                f"server {self.host}:{self.port} closed the connection"
            )
        try:
            response = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                E_PARSE, f"unparseable response from server: {exc}"
            ) from None
        if not isinstance(response, dict) or "ok" not in response:
            raise ProtocolError(E_PARSE, f"malformed response: {response!r}")
        if response.get("id") != request_id:
            raise ProtocolError(
                E_PARSE,
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}",
            )
        if not response["ok"]:
            error = response.get("error") or {}
            raise RequestFailedError(
                str(error.get("code", "unknown")),
                str(error.get("message", "no message")),
            )
        return response.get("result")

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LexEqualClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------------- ops

    def ping(self) -> str:
        return self.request("ping")

    def query(
        self,
        sql: str,
        params: dict | None = None,
        *,
        timeout: float | None = None,
    ) -> dict:
        return self.request("query", sql=sql, params=params, timeout=timeout)

    def prepare(self, sql: str, name: str | None = None) -> str:
        return self.request("prepare", sql=sql, name=name)["statement"]

    def execute(
        self,
        statement: str,
        params: dict | None = None,
        *,
        timeout: float | None = None,
    ) -> dict:
        return self.request(
            "execute", statement=statement, params=params, timeout=timeout
        )

    def lexequal(
        self,
        left: str,
        right: str,
        threshold: float | None = None,
        languages: str = "",
    ) -> dict:
        return self.request(
            "lexequal",
            left=left,
            right=right,
            threshold=threshold,
            languages=languages or None,
        )

    def stats(self) -> dict:
        return self.request("stats")
