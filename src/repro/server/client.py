"""A small blocking client for the LexEQUAL query service.

Speaks the newline-delimited JSON protocol over a plain socket; one
request at a time per client (the protocol itself allows pipelining,
but the blocking client keeps the simple request/response discipline).
This is what ``lexequal client`` and the throughput benchmark use, and
the reference implementation for clients in other languages::

    from repro.server.client import LexEqualClient

    with LexEqualClient(port=2004) as client:
        client.ping()
        result = client.query(
            "SELECT author, title FROM books "
            "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
        )
        for row in result["rows"]:
            print(row)

Failure taxonomy:

* server-side failures surface as
  :class:`~repro.errors.RequestFailedError` (carrying the wire error
  code);
* *every* transport failure — refused connection, reset, EOF
  mid-response, socket timeout — is normalized to one
  :class:`~repro.errors.TransportError` carrying the op and request id;
* a tripped circuit breaker fails fast with
  :class:`~repro.errors.CircuitOpenError` without touching the network.

All derive from :class:`~repro.errors.ReproError`, so the CLI's
one-line ``error: ...`` convention covers them uniformly.

Resilience is opt-in and explicit::

    client = LexEqualClient(
        port=2004,
        retry=RetryPolicy(max_attempts=4),
        breaker=BreakerPolicy(failure_threshold=5),
    )

With a retry policy, transport faults on *idempotent* ops (``ping``,
``query``, ``lexequal``, ``stats``, ``faults``, ``health``) reconnect and retry
with exponential backoff + full jitter; ``prepare`` is never blindly
retried (re-running it could silently rebind a name), and ``execute``
is not transport-retried either — a reconnect starts a fresh session
without this session's prepared statements.  Structured ``overloaded``
rejects are retried for every op: admission rejection means the request
never ran, so re-submission is safe by construction.
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import time
from typing import Any

from repro import obs
from repro.errors import (
    ProtocolError,
    RequestFailedError,
    TransportError,
)
from repro.server.protocol import DEFAULT_PORT, E_PARSE, MAX_LINE_BYTES
from repro.server.resilience import (
    BreakerBoard,
    BreakerPolicy,
    RetryPolicy,
)

#: Ops safe to retry over a *new* connection: stateless on the server
#: (no session-scoped effects), so a replay cannot corrupt anything.
RETRYABLE_OPS = frozenset(
    {"ping", "query", "lexequal", "stats", "faults", "health"}
)

#: Structured error codes that are safe to retry for any op: they are
#: raised at admission, before the request executed.
RETRYABLE_CODES = frozenset({"overloaded"})


class LexEqualClient:
    """Blocking connection to a :class:`~repro.server.app.LexEqualServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float | None = 60.0,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._breakers = (
            BreakerBoard(breaker) if breaker is not None else None
        )
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._ids = itertools.count(1)
        self._sock: socket.socket | None = None
        self._reader = None
        self._connect()

    # ------------------------------------------------------------ plumbing

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            self._sock = None
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}",
                op="connect",
            ) from None
        self._reader = self._sock.makefile("rb")

    def _teardown(self) -> None:
        reader, sock = self._reader, self._sock
        self._reader = self._sock = None
        try:
            if reader is not None:
                reader.close()
        finally:
            if sock is not None:
                sock.close()

    def request(self, op: str, **fields: Any) -> Any:
        """Send one request and return its ``result`` payload.

        Applies the client's retry policy and circuit breaker (see the
        module docstring for the idempotency rules).  Raises
        :class:`~repro.errors.RequestFailedError` on an error response,
        :class:`~repro.errors.TransportError` when the connection
        drops, and :class:`~repro.errors.CircuitOpenError` fast while
        the op's breaker is open.
        """
        breaker = (
            self._breakers.breaker(op) if self._breakers is not None else None
        )
        max_attempts = self.retry.max_attempts if self.retry else 1
        attempt = 1
        while True:
            if breaker is not None:
                breaker.allow()  # may raise CircuitOpenError
            try:
                if self._sock is None:
                    # Previous attempt (or a prior request) broke the
                    # connection; transparently re-establish it.
                    obs.incr("client.reconnects")
                    self._connect()
                result = self._request_once(op, fields)
            except TransportError:
                if breaker is not None:
                    breaker.record_failure()
                obs.incr("client.transport_errors")
                self._teardown()
                if op not in RETRYABLE_OPS or attempt >= max_attempts:
                    raise
                self._backoff(attempt, op)
                attempt += 1
            except RequestFailedError as exc:
                # The server answered: the transport is healthy.
                if breaker is not None:
                    breaker.record_success()
                if exc.code not in RETRYABLE_CODES or attempt >= max_attempts:
                    raise
                self._backoff(attempt, op)
                attempt += 1
            else:
                if breaker is not None:
                    breaker.record_success()
                return result

    def _backoff(self, retry_number: int, op: str) -> None:
        obs.incr("client.retries")
        obs.incr(f"client.retries.{op}")
        delay = self.retry.backoff(retry_number, self._rng)
        if delay > 0:
            self._sleep(delay)

    def _request_once(self, op: str, fields: dict) -> Any:
        request_id = next(self._ids)
        payload = {"op": op, "id": request_id}
        payload.update(
            (k, v) for k, v in fields.items() if v is not None
        )
        line = (json.dumps(payload, ensure_ascii=False) + "\n").encode(
            "utf-8"
        )
        try:
            self._sock.sendall(line)
            raw = self._reader.readline(MAX_LINE_BYTES + 1)
        except OSError as exc:
            raise TransportError(
                f"connection to {self.host}:{self.port} failed: {exc}",
                op=op,
                request_id=request_id,
            ) from None
        if not raw:
            raise TransportError(
                f"server {self.host}:{self.port} closed the connection",
                op=op,
                request_id=request_id,
            )
        try:
            response = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                E_PARSE, f"unparseable response from server: {exc}"
            ) from None
        if not isinstance(response, dict) or "ok" not in response:
            raise ProtocolError(E_PARSE, f"malformed response: {response!r}")
        if response.get("id") != request_id:
            raise ProtocolError(
                E_PARSE,
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}",
            )
        if not response["ok"]:
            error = response.get("error") or {}
            raise RequestFailedError(
                str(error.get("code", "unknown")),
                str(error.get("message", "no message")),
            )
        return response.get("result")

    def resilience_info(self) -> dict:
        """Circuit-breaker states of this client (diagnostics)."""
        return self._breakers.info() if self._breakers is not None else {}

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "LexEqualClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------------- ops

    def ping(self) -> str:
        return self.request("ping")

    def query(
        self,
        sql: str,
        params: dict | None = None,
        *,
        timeout: float | None = None,
    ) -> dict:
        return self.request("query", sql=sql, params=params, timeout=timeout)

    def prepare(self, sql: str, name: str | None = None) -> str:
        return self.request("prepare", sql=sql, name=name)["statement"]

    def execute(
        self,
        statement: str,
        params: dict | None = None,
        *,
        timeout: float | None = None,
    ) -> dict:
        return self.request(
            "execute", statement=statement, params=params, timeout=timeout
        )

    def lexequal(
        self,
        left: str,
        right: str,
        threshold: float | None = None,
        languages: str = "",
    ) -> dict:
        return self.request(
            "lexequal",
            left=left,
            right=right,
            threshold=threshold,
            languages=languages or None,
        )

    def stats(self) -> dict:
        return self.request("stats")

    def health(self) -> dict:
        """The ``health`` probe (shared by supervisor and CLI)."""
        return self.request("health")

    def faults(self, action: str = "list", **fields: Any) -> dict:
        """Drive the server's fault-injection registry (chaos tooling)."""
        return self.request("faults", action=action, **fields)
