"""The query service: op execution against one shared engine.

A :class:`QueryService` owns the pieces every connection shares — the
:class:`~repro.minidb.catalog.Database`, the
:class:`~repro.core.matcher.LexEqualMatcher`, and the statement cache —
and exposes one synchronous method per protocol op.  Methods are called
from worker threads (CPU-bound ops) or the event loop (cheap ops); all
shared state they touch is thread-safe: the catalog takes its DDL/DML
lock, the TTP registry's conversion cache is lock-on-miss, and the
statement cache is a locking LRU.

The service is deliberately transport-free — tests drive it directly,
and :mod:`repro.server.app` is just asyncio plumbing around it.
"""

from __future__ import annotations

from repro import degrade, faults, obs
from repro.core.matcher import LexEqualMatcher
from repro.errors import ProtocolError, TTPError
from repro.minidb.catalog import Database
from repro.minidb.planner import ResultSet, execute_statement
from repro.server.cache import StatementCache
from repro.server.protocol import E_INVALID, jsonable_rows
from repro.server.session import Session


class QueryService:
    """Executes protocol ops against one shared database + matcher."""

    def __init__(
        self,
        db: Database | None = None,
        matcher: LexEqualMatcher | None = None,
        *,
        statement_cache_size: int = 128,
        strategy: str | None = None,
    ):
        if db is None:
            from repro.core.integration import demo_books_db

            matcher = matcher or LexEqualMatcher()
            db = demo_books_db("qgram", matcher)
            strategy = strategy or "qgram"
        self.db = db
        self.matcher = matcher or LexEqualMatcher()
        #: The accelerator strategy this service was built with (shown
        #: by the ``health`` op; ``None`` = caller didn't say).
        self.strategy = strategy
        self.statements = StatementCache(statement_cache_size)

    # ----------------------------------------------------------- SQL ops

    def run_sql(self, sql: str, params: dict) -> dict:
        """Execute ``sql`` (any statement kind) and return its payload.

        SELECT/EXPLAIN produce ``{"columns", "rows", "row_count"}``; DDL
        and INSERT produce ``{"row_count"}``.

        Runs under a degradation context: a per-language TTP failure
        mid-query drops that language's rows from the match instead of
        failing the whole request, and the payload gains
        ``degraded: true`` plus the ``failed_languages`` list.
        """
        stmt = self.statements.statement(sql)
        stmt = self._transform_statement(stmt, params)
        if stmt is None:
            # The transform swallowed the statement entirely (a shard
            # that owns none of an INSERT's rows): nothing to run.
            return {"row_count": 0}
        with degrade.collecting() as failed_languages:
            with obs.timed("server.execute"):
                result = execute_statement(self.db, stmt, params)
        if isinstance(result, ResultSet):
            payload = {
                "columns": list(result.columns),
                "rows": jsonable_rows(result.rows),
                "row_count": len(result.rows),
            }
        else:
            payload = {"row_count": int(result)}
        return self._mark_degraded(payload, failed_languages)

    def _transform_statement(self, stmt, params: dict):
        """Hook for subclasses to rewrite a statement before execution.

        The cluster's sharded service filters INSERT rows down to the
        ones this shard owns; the base service runs statements as-is.
        Returning ``None`` skips execution (an empty rewrite).
        """
        return stmt

    @staticmethod
    def _mark_degraded(payload: dict, failed_languages: set) -> dict:
        if failed_languages:
            payload["degraded"] = True
            payload["failed_languages"] = sorted(failed_languages)
            obs.incr("server.degraded_responses")
        return payload

    def prepare(self, session: Session, sql: str, name=None) -> dict:
        """Parse ``sql`` now (failing fast) and bind it in the session."""
        self.statements.statement(sql)  # validate + warm the cache
        bound = session.prepare(sql, name)
        return {"statement": bound}

    def execute_prepared(
        self, session: Session, name: str, params: dict
    ) -> dict:
        return self.run_sql(session.prepared_sql(name), params)

    # ------------------------------------------------------ matching op

    def lexequal(
        self,
        left: str,
        right: str,
        threshold: float | None = None,
        languages: str = "",
    ) -> dict:
        """The convenience op: one LexEQUAL comparison, fully explained.

        Language-restricted comparisons (``languages`` is the comma
        separated INLANGUAGES set) short-circuit to no-match when either
        operand's language falls outside the set, as the SQL operator
        does.
        """
        matcher = self.matcher
        if threshold is not None:
            try:
                threshold = float(threshold)
            except (TypeError, ValueError):
                raise ProtocolError(
                    E_INVALID, "'threshold' must be a number"
                ) from None
            matcher = LexEqualMatcher(
                matcher.config.with_threshold(threshold), matcher.registry
            )
        with degrade.collecting() as failed_languages:
            try:
                explanation = matcher.explain(left, right)
            except TTPError as exc:
                # A transient per-language TTP failure: degrade this
                # comparison to NORESOURCE (unknown) instead of erroring
                # the request — the language is down, not the server.
                degrade.record(getattr(exc, "language", None))
                return self._mark_degraded(
                    {
                        "outcome": "noresource",
                        "match": None,
                        "left_language": matcher.language_of(left),
                        "right_language": matcher.language_of(right),
                        "left_ipa": "",
                        "right_ipa": "",
                        "distance": None,
                        "budget": 0.0,
                    },
                    failed_languages,
                )
        outcome = explanation.outcome.value
        if languages:
            wanted = {
                lang.strip().lower()
                for lang in str(languages).split(",")
                if lang.strip()
            }
            if wanted and outcome == "true":
                if (
                    explanation.left_language not in wanted
                    or explanation.right_language not in wanted
                ):
                    outcome = "false"
        return {
            "outcome": outcome,
            "match": {"true": True, "false": False}.get(outcome),
            "left_language": explanation.left_language,
            "right_language": explanation.right_language,
            "left_ipa": explanation.left_ipa,
            "right_ipa": explanation.right_ipa,
            "distance": explanation.distance,
            "budget": explanation.budget,
        }

    # ------------------------------------------------------ health op

    def health(self, server_info: dict | None = None) -> dict:
        """The ``health`` payload: liveness + readiness in one probe.

        Cheap by construction (no SQL, no matching, no locks beyond the
        storage attribute read) so the cluster supervisor can poll it
        aggressively.  ``wal_lsn`` is the WAL high-water mark on
        persistent backends and ``None`` on in-memory ones; ``shard``
        identifies this process's slice when serving as a cluster shard.
        """
        info = server_info or {}
        storage = getattr(self.db, "storage", None)
        return {
            "status": "ok",
            "role": "server",
            "uptime_seconds": info.get("uptime_seconds", 0.0),
            "in_flight": info.get("active_requests", 0),
            "strategy": self.strategy or "default",
            "wal_lsn": getattr(storage, "wal_high_water_lsn", None),
            "shard": self.shard_info(),
        }

    def shard_info(self) -> dict | None:
        """Shard identity (index/count) — ``None`` off-cluster."""
        return None

    # ------------------------------------------------------- fault ops

    @staticmethod
    def faults_op(request: dict) -> dict:
        """The ``faults`` op: drive the failpoint registry remotely.

        Actions: ``configure`` (fields ``name`` + any of ``probability``,
        ``latency``, ``error``, ``count``, ``languages``), ``disable``
        (``name``), ``reset``, ``seed`` (``seed``), ``list``.  Every
        action answers with the current registry description so chaos
        drivers can assert their schedule took effect.  The server gates
        this op behind its ``--fault-injection`` flag.
        """
        action = request.get("action", "list")
        if action == "configure":
            name = request.get("name")
            if not isinstance(name, str) or not name:
                raise ProtocolError(
                    E_INVALID, "faults configure needs a string 'name'"
                )
            kwargs: dict = {}
            for field in ("probability", "latency"):
                value = request.get(field)
                if value is not None:
                    if not isinstance(value, (int, float)):
                        raise ProtocolError(
                            E_INVALID, f"'{field}' must be a number"
                        )
                    kwargs[field] = float(value)
            error = request.get("error")
            if error is not None:
                if not isinstance(error, str):
                    raise ProtocolError(E_INVALID, "'error' must be a string")
                kwargs["error"] = error
            count = request.get("count")
            if count is not None:
                if not isinstance(count, int) or isinstance(count, bool):
                    raise ProtocolError(
                        E_INVALID, "'count' must be an integer"
                    )
                kwargs["count"] = count
            languages = request.get("languages")
            if languages is not None:
                if not isinstance(languages, list) or not all(
                    isinstance(lang, str) for lang in languages
                ):
                    raise ProtocolError(
                        E_INVALID, "'languages' must be a list of strings"
                    )
                kwargs["languages"] = tuple(languages)
            try:
                faults.configure(name, **kwargs)
            except ValueError as exc:
                raise ProtocolError(E_INVALID, str(exc)) from None
        elif action == "disable":
            name = request.get("name")
            if not isinstance(name, str) or not name:
                raise ProtocolError(
                    E_INVALID, "faults disable needs a string 'name'"
                )
            faults.disable(name)
        elif action == "reset":
            faults.reset()
        elif action == "seed":
            seed = request.get("seed")
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ProtocolError(E_INVALID, "'seed' must be an integer")
            faults.seed(seed)
        elif action != "list":
            raise ProtocolError(
                E_INVALID,
                f"unknown faults action {action!r} (supported: "
                "configure, disable, reset, seed, list)",
            )
        return {"failpoints": faults.describe()}

    # ------------------------------------------------------------- stats

    def stats(self, server_info: dict | None = None) -> dict:
        """The ``stats`` payload: server gauges + metrics snapshot."""
        return {
            "server": server_info or {},
            "statement_cache": self.statements.info(),
            "tables": {
                name: len(self.db.table(name))
                for name in self.db.table_names()
            },
            "faults": faults.describe(),
            "metrics": obs.snapshot(),
        }
