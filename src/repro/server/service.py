"""The query service: op execution against one shared engine.

A :class:`QueryService` owns the pieces every connection shares — the
:class:`~repro.minidb.catalog.Database`, the
:class:`~repro.core.matcher.LexEqualMatcher`, and the statement cache —
and exposes one synchronous method per protocol op.  Methods are called
from worker threads (CPU-bound ops) or the event loop (cheap ops); all
shared state they touch is thread-safe: the catalog takes its DDL/DML
lock, the TTP registry's conversion cache is lock-on-miss, and the
statement cache is a locking LRU.

The service is deliberately transport-free — tests drive it directly,
and :mod:`repro.server.app` is just asyncio plumbing around it.
"""

from __future__ import annotations

from repro import obs
from repro.core.matcher import LexEqualMatcher
from repro.errors import ProtocolError
from repro.minidb.catalog import Database
from repro.minidb.planner import ResultSet, execute_statement
from repro.server.cache import StatementCache
from repro.server.protocol import E_INVALID, jsonable_rows
from repro.server.session import Session


class QueryService:
    """Executes protocol ops against one shared database + matcher."""

    def __init__(
        self,
        db: Database | None = None,
        matcher: LexEqualMatcher | None = None,
        *,
        statement_cache_size: int = 128,
    ):
        if db is None:
            from repro.core.integration import demo_books_db

            matcher = matcher or LexEqualMatcher()
            db = demo_books_db("qgram", matcher)
        self.db = db
        self.matcher = matcher or LexEqualMatcher()
        self.statements = StatementCache(statement_cache_size)

    # ----------------------------------------------------------- SQL ops

    def run_sql(self, sql: str, params: dict) -> dict:
        """Execute ``sql`` (any statement kind) and return its payload.

        SELECT/EXPLAIN produce ``{"columns", "rows", "row_count"}``; DDL
        and INSERT produce ``{"row_count"}``.
        """
        stmt = self.statements.statement(sql)
        with obs.timed("server.execute"):
            result = execute_statement(self.db, stmt, params)
        if isinstance(result, ResultSet):
            return {
                "columns": list(result.columns),
                "rows": jsonable_rows(result.rows),
                "row_count": len(result.rows),
            }
        return {"row_count": int(result)}

    def prepare(self, session: Session, sql: str, name=None) -> dict:
        """Parse ``sql`` now (failing fast) and bind it in the session."""
        self.statements.statement(sql)  # validate + warm the cache
        bound = session.prepare(sql, name)
        return {"statement": bound}

    def execute_prepared(
        self, session: Session, name: str, params: dict
    ) -> dict:
        return self.run_sql(session.prepared_sql(name), params)

    # ------------------------------------------------------ matching op

    def lexequal(
        self,
        left: str,
        right: str,
        threshold: float | None = None,
        languages: str = "",
    ) -> dict:
        """The convenience op: one LexEQUAL comparison, fully explained.

        Language-restricted comparisons (``languages`` is the comma
        separated INLANGUAGES set) short-circuit to no-match when either
        operand's language falls outside the set, as the SQL operator
        does.
        """
        matcher = self.matcher
        if threshold is not None:
            try:
                threshold = float(threshold)
            except (TypeError, ValueError):
                raise ProtocolError(
                    E_INVALID, "'threshold' must be a number"
                ) from None
            matcher = LexEqualMatcher(
                matcher.config.with_threshold(threshold), matcher.registry
            )
        explanation = matcher.explain(left, right)
        outcome = explanation.outcome.value
        if languages:
            wanted = {
                lang.strip().lower()
                for lang in str(languages).split(",")
                if lang.strip()
            }
            if wanted and outcome == "true":
                if (
                    explanation.left_language not in wanted
                    or explanation.right_language not in wanted
                ):
                    outcome = "false"
        return {
            "outcome": outcome,
            "match": {"true": True, "false": False}.get(outcome),
            "left_language": explanation.left_language,
            "right_language": explanation.right_language,
            "left_ipa": explanation.left_ipa,
            "right_ipa": explanation.right_ipa,
            "distance": explanation.distance,
            "budget": explanation.budget,
        }

    # ------------------------------------------------------------- stats

    def stats(self, server_info: dict | None = None) -> dict:
        """The ``stats`` payload: server gauges + metrics snapshot."""
        return {
            "server": server_info or {},
            "statement_cache": self.statements.info(),
            "tables": {
                name: len(self.db.table(name))
                for name in self.db.table_names()
            },
            "metrics": obs.snapshot(),
        }
