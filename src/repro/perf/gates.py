"""Performance floors and the perf-regression comparison gate.

Reports are plain dicts (the JSON written by ``scripts/perf_smoke.py``
and ``benchmarks/bench_parallel_scaling.py``)::

    {
      "rows": 1500,
      "cpu_count": 8,
      "scaling_workers": 4,
      "ratios": {
        "kernel_banded_vs_reference": 3.1,
        "kernel_batch_vs_reference": 9.4,
        "executor_vs_naive": 6.2,
        "scaling_4v1": 2.7
      }
    }

Every ratio is a dimensionless speedup (bigger is better), which makes
reports comparable across machines of different absolute speed.  The
scaling ratio is the exception to "always enforce": running 4 workers
on a box with fewer than 4 CPUs *cannot* beat 1 worker, so scaling
checks apply only when :func:`scaling_enforced` says the hardware can
express them — the report records ``cpu_count`` precisely so the gate
stays honest on small runners.

Two kinds of check:

* **floors** (:func:`check_floors`) — absolute minimums a single run
  must clear, deliberately lax so only real regressions trip them;
* **baseline comparison** (:func:`compare`) — a fresh run must stay
  within a jitter tolerance of the committed ``BENCH_baseline.json``
  ratios, which catches slow drift long before a floor would.
"""

from __future__ import annotations

#: Smoke-scale floors (1,500-row catalog; lax on purpose — CI jitter
#: must not trip them, only real regressions).
SMOKE_KERNEL_FLOOR = 1.5
SMOKE_EXECUTOR_FLOOR = 2.0

#: Acceptance-scale floors (200k-row catalog, the paper's Section 5
#: viability bar; enforced by ``benchmarks/bench_parallel_scaling.py``).
ACCEPTANCE_KERNEL_FLOOR = 20.0
ACCEPTANCE_SCALING_FLOOR = 3.0

#: Quality floors for the embedding prefilter (``--strategy ann``),
#: enforced by ``scripts/quality_smoke.py`` and, at acceptance scale,
#: ``benchmarks/bench_ann.py``.  Recall is measured on the Figure 11
#: harness at the default admission radius ("cost ≤ 2", i.e.
#: ``radius_scale=2.0``); reduction/speedup are dimensionless ratios
#: (bigger is better), like every other gate here.
ANN_RECALL_FLOOR = 0.98
ANN_REDUCTION_FLOOR = 5.0
ACCEPTANCE_ANN_SPEEDUP_FLOOR = 2.0
#: Smoke scale is too small for an end-to-end wall-clock win to be
#: reliable (index build amortizes over few queries), so the smoke gate
#: enforces recall + candidate reduction only.
ANN_QUALITY_FLOORS = {
    "ann_recall_vs_exact": ANN_RECALL_FLOOR,
    "ann_candidate_reduction": ANN_REDUCTION_FLOOR,
}
ANN_ACCEPTANCE_FLOORS = {
    **ANN_QUALITY_FLOORS,
    "ann_speedup_vs_best_exact": ACCEPTANCE_ANN_SPEEDUP_FLOOR,
}

#: The worker count whose scaling ratio reports measure, and the
#: hardware-permitting minimum: N workers must at least beat 1 worker.
SCALING_WORKERS = 4
SCALING_BEAT_FLOOR = 1.0

#: Below this catalog size a query finishes faster than pool dispatch
#: amortizes, so the scaling ratio is recorded but not enforced.
SCALING_MIN_ROWS = 10_000

#: Allowed fractional drop of a fresh ratio below its baseline before
#: the gate fails (timing jitter on shared CI runners is real).
DEFAULT_TOLERANCE = 0.35

#: Ratio-key -> absolute floor, applied by ``check_floors`` at smoke
#: scale.  The scaling ratio is handled separately (hardware-gated).
SMOKE_FLOORS = {
    "kernel_banded_vs_reference": SMOKE_KERNEL_FLOOR,
    "executor_vs_naive": SMOKE_EXECUTOR_FLOOR,
}

_SCALING_KEY = f"scaling_{SCALING_WORKERS}v1"


def scaling_enforced(report: dict) -> bool:
    """Can this report's run express multi-worker scaling at all?

    True when the recorded ``cpu_count`` is at least the worker count
    the scaling ratio measured *and* the catalog was big enough for a
    query to outlast pool dispatch.  Otherwise the ratio is still
    *recorded* (honesty) but never *enforced* (physics).
    """
    cpus = int(report.get("cpu_count") or 0)
    workers = int(report.get("scaling_workers") or SCALING_WORKERS)
    rows = int(report.get("rows") or 0)
    return cpus >= workers and rows >= SCALING_MIN_ROWS


def check_floors(
    report: dict, floors: dict[str, float] | None = None
) -> list[str]:
    """Absolute-floor failures for one report (empty list = pass)."""
    if floors is None:
        floors = SMOKE_FLOORS
    ratios = report.get("ratios", {})
    failures = []
    for key, floor in floors.items():
        value = ratios.get(key)
        if value is None:
            failures.append(f"missing ratio {key!r} (floor {floor}x)")
        elif value < floor:
            failures.append(
                f"{key} = {value:.2f}x below its {floor}x floor"
            )
    if scaling_enforced(report):
        scaling = ratios.get(_SCALING_KEY)
        if scaling is None:
            failures.append(
                f"missing ratio {_SCALING_KEY!r} "
                f"(cpu_count={report.get('cpu_count')} can express it)"
            )
        elif scaling < SCALING_BEAT_FLOOR:
            failures.append(
                f"{_SCALING_KEY} = {scaling:.2f}x: "
                f"{report.get('scaling_workers', SCALING_WORKERS)} "
                f"workers must beat 1 worker on "
                f"{report.get('cpu_count')} CPUs"
            )
    return failures


def compare(
    baseline: dict,
    fresh: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Regression messages for a fresh report vs the baseline.

    Every ratio present in the baseline must exist in the fresh report
    and stay at or above ``baseline * (1 - tolerance)``.  Scaling-ratio
    keys are exempted when the fresh run's hardware cannot express
    scaling (:func:`scaling_enforced`).  Reports over different row
    counts are not comparable and fail outright.
    """
    failures = []
    base_rows = baseline.get("rows")
    fresh_rows = fresh.get("rows")
    if base_rows != fresh_rows:
        failures.append(
            f"row-count mismatch: baseline ran {base_rows} rows, "
            f"fresh ran {fresh_rows} — reports are not comparable"
        )
        return failures
    enforce_scaling = scaling_enforced(fresh)
    fresh_ratios = fresh.get("ratios", {})
    for key, base_value in sorted(baseline.get("ratios", {}).items()):
        if key.startswith("scaling_") and not enforce_scaling:
            continue
        fresh_value = fresh_ratios.get(key)
        if fresh_value is None:
            failures.append(
                f"fresh report is missing ratio {key!r} "
                f"(baseline {base_value:.2f}x)"
            )
            continue
        allowed = base_value * (1.0 - tolerance)
        if fresh_value < allowed:
            failures.append(
                f"{key} regressed: {fresh_value:.2f}x < "
                f"{allowed:.2f}x (baseline {base_value:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    failures.extend(check_floors(fresh))
    return failures
