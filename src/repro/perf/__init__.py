"""``repro.perf`` — shared performance floors and regression gates.

One place for every performance constant the repo asserts on, so the
smoke script, the comparison gate and the acceptance benchmark can
never drift apart again (they did once: the smoke docstring claimed
2x/3x floors while the code enforced 1.5x/2x).

* :mod:`repro.perf.gates` holds the floors themselves plus the
  pure-dict comparison logic used by ``scripts/perf_compare.py``.
"""

from repro.perf.gates import (
    ACCEPTANCE_ANN_SPEEDUP_FLOOR,
    ACCEPTANCE_KERNEL_FLOOR,
    ACCEPTANCE_SCALING_FLOOR,
    ANN_ACCEPTANCE_FLOORS,
    ANN_QUALITY_FLOORS,
    ANN_RECALL_FLOOR,
    ANN_REDUCTION_FLOOR,
    DEFAULT_TOLERANCE,
    SCALING_BEAT_FLOOR,
    SCALING_MIN_ROWS,
    SCALING_WORKERS,
    SMOKE_EXECUTOR_FLOOR,
    SMOKE_FLOORS,
    SMOKE_KERNEL_FLOOR,
    check_floors,
    compare,
    scaling_enforced,
)

__all__ = [
    "ACCEPTANCE_ANN_SPEEDUP_FLOOR",
    "ACCEPTANCE_KERNEL_FLOOR",
    "ACCEPTANCE_SCALING_FLOOR",
    "ANN_ACCEPTANCE_FLOORS",
    "ANN_QUALITY_FLOORS",
    "ANN_RECALL_FLOOR",
    "ANN_REDUCTION_FLOOR",
    "DEFAULT_TOLERANCE",
    "SCALING_BEAT_FLOOR",
    "SCALING_MIN_ROWS",
    "SCALING_WORKERS",
    "SMOKE_EXECUTOR_FLOOR",
    "SMOKE_FLOORS",
    "SMOKE_KERNEL_FLOOR",
    "check_floors",
    "compare",
    "scaling_enforced",
]
