"""Approximate string matching substrate.

Implements the matching machinery of the paper:

* :mod:`repro.matching.costs` — cost models for the dynamic-programming
  edit distance, including the *Clustered Edit Distance* with its tunable
  intra-cluster substitution cost (paper Section 3.3);
* :mod:`repro.matching.editdist` — the ``editdistance`` routine of paper
  Figure 8 (full dynamic programming) plus a banded variant with early
  termination for threshold queries;
* :mod:`repro.matching.qgrams` — positional q-grams and the length /
  count / position filters of Gravano et al. (paper Section 5.2).
"""

from repro.matching.costs import (
    CostModel,
    LevenshteinCost,
    ClusteredCost,
    UNIT_COST,
)
from repro.matching.editdist import (
    edit_distance,
    edit_distance_within,
    distance_matrix,
)
from repro.matching.metric import (
    MetricViolation,
    check_metric_axioms,
    validate_metric,
)
from repro.matching.qgrams import (
    PositionalQGram,
    positional_qgrams,
    qgram_profile,
    length_filter,
    count_filter,
    position_filter,
    count_filter_threshold,
    passes_filters,
)

__all__ = [
    "CostModel",
    "LevenshteinCost",
    "ClusteredCost",
    "UNIT_COST",
    "edit_distance",
    "edit_distance_within",
    "distance_matrix",
    "MetricViolation",
    "check_metric_axioms",
    "validate_metric",
    "PositionalQGram",
    "positional_qgrams",
    "qgram_profile",
    "length_filter",
    "count_filter",
    "position_filter",
    "count_filter_threshold",
    "passes_filters",
]
