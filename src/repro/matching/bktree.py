"""A Burkhard-Keller (BK) metric tree over phoneme strings.

Paper Section 6: "we plan to explore extending the approximate indexing
techniques outlined in [1, 21] for creating a metric index for
phonemes."  A BK-tree is the classical such index: it stores items in a
tree whose edges are labelled by distance to the parent, and answers
range queries by triangle-inequality pruning — visiting only subtrees
whose distance interval can intersect ``[d(q, node) - r, d(q, node) + r]``.

Requirements and properties:

* the distance must be a metric.  The Clustered Edit Distance with
  symmetric substitution costs and equal insert/delete costs is one;
  pass the backing cost model as ``validate_costs`` to have
  :func:`repro.matching.metric.validate_metric` prove the axioms over
  the phoneme inventory at construction time (the static-analysis rule
  LEX-D003 runs the same checker over the shipped models in CI);
* distances here are real-valued (fractional costs), so children are
  bucketed by ``floor(distance / resolution)``; a bucket ``b`` holds
  children at distances in ``[b*res, (b+1)*res)`` and pruning uses the
  interval, which keeps range queries exact;
* unlike the grouped-key index, a BK range search has **no false
  dismissals** — it returns every item within the radius.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro import deadline, faults
from repro.errors import MatchConfigError

#: Distance function over token sequences.
DistanceFn = Callable[[Sequence[str], Sequence[str]], float]


class _Node:
    __slots__ = ("tokens", "items", "children")

    def __init__(self, tokens: tuple, item: object):
        self.tokens = tokens
        self.items = [item]
        self.children: dict[int, _Node] = {}


class BKTree:
    """A BK-tree mapping token sequences to items, with range search.

    ``validate_costs`` (optional) is the :class:`~repro.matching.costs.
    CostModel` that ``distance`` is built from; when given, the metric
    axioms are verified over ``symbols`` (default: the full phoneme
    inventory) before the tree accepts any item, raising
    :class:`~repro.errors.MatchConfigError` on a non-metric model whose
    triangle-inequality pruning would silently drop true matches.
    """

    def __init__(
        self,
        distance: DistanceFn,
        resolution: float = 0.25,
        *,
        validate_costs=None,
        symbols=None,
    ):
        if resolution <= 0:
            raise MatchConfigError(
                f"BK-tree resolution must be > 0, got {resolution}"
            )
        if validate_costs is not None:
            from repro.matching.metric import validate_metric

            validate_metric(validate_costs, symbols)
        self._distance = distance
        self._resolution = resolution
        self._root: _Node | None = None
        self._size = 0
        #: Distance computations performed by the last search (for
        #: benchmarks: the pruning factor vs a linear scan).
        self.last_search_distance_calls = 0

    def __len__(self) -> int:
        return self._size

    def add(self, tokens: Sequence[str], item: object) -> None:
        """Insert ``item`` keyed by ``tokens``."""
        tokens = tuple(tokens)
        self._size += 1
        if self._root is None:
            self._root = _Node(tokens, item)
            return
        node = self._root
        while True:
            d = self._distance(tokens, node.tokens)
            if d == 0.0:
                node.items.append(item)
                return
            bucket = int(d / self._resolution)
            child = node.children.get(bucket)
            if child is None:
                node.children[bucket] = _Node(tokens, item)
                return
            node = child

    def search(
        self, tokens: Sequence[str], radius: float
    ) -> list[tuple[float, object]]:
        """All ``(distance, item)`` pairs with ``distance <= radius``."""
        faults.fire("matching.bktree.search")
        self.last_search_distance_calls = 0
        if self._root is None:
            return []
        tokens = tuple(tokens)
        results: list[tuple[float, object]] = []
        stack = [self._root]
        res = self._resolution
        while stack:
            # The distance callback polls between DP rows, but an
            # injected or trivial distance never does — the traversal
            # itself must stay cancellable (LEX-C005).
            deadline.check("matching.bktree.search")
            node = stack.pop()
            d = self._distance(tokens, node.tokens)
            self.last_search_distance_calls += 1
            if d <= radius:
                results.extend((d, item) for item in node.items)
            low = d - radius
            high = d + radius
            for bucket, child in node.children.items():
                # Child subtree distances to `node` lie in
                # [bucket*res, (bucket+1)*res); by the triangle
                # inequality its items are within `radius` of the query
                # only if that interval intersects [low, high].
                if bucket * res <= high and (bucket + 1) * res > low:
                    stack.append(child)
        results.sort(key=lambda pair: pair[0])
        return results

    def height(self) -> int:
        """Tree height (diagnostics)."""
        if self._root is None:
            return 0

        def walk(node: _Node) -> int:
            if not node.children:
                return 1
            return 1 + max(walk(c) for c in node.children.values())

        return walk(self._root)
