"""Vectorized batch edit distances (numpy).

The quality experiments (paper Figures 11/12) compare *every* phoneme
string in the lexicon with every other — ~3M dynamic programs per cost
setting.  This module computes exact Clustered Edit Distances for one
query against many candidates at once, vectorizing across candidates of
equal length.

The insertion recurrence ``curr[j] = min(t[j], curr[j-1] + ins_j)`` looks
inherently sequential, but with non-negative insertion costs it unrolls
to a prefix minimum::

    curr[j] = C[j] + min_{k <= j} (t[k] - C[k]),   C[j] = sum_{l<=j} ins_l

which is ``np.minimum.accumulate`` — so each DP row is a handful of numpy
operations over a (batch, length) matrix.  Results are bit-identical to
:func:`repro.matching.editdist.edit_distance` (the test suite checks).

numpy is an optional dependency of the library proper: only this module
(and the evaluation harness that uses it) imports it.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.matching.costs import CostModel


class EncodedCosts:
    """A cost model compiled to integer-indexed numpy lookup tables."""

    def __init__(self, costs: CostModel, symbols: Sequence[str]):
        self.costs = costs
        self.index: dict[str, int] = {}
        for sym in symbols:
            if sym not in self.index:
                self.index[sym] = len(self.index)
        size = len(self.index)
        self.sub = np.zeros((size, size), dtype=np.float64)
        self.ins = np.zeros(size, dtype=np.float64)
        self.dele = np.zeros(size, dtype=np.float64)
        for a, ia in self.index.items():
            self.ins[ia] = costs.insert(a)
            self.dele[ia] = costs.delete(a)
            for b, ib in self.index.items():
                self.sub[ia, ib] = costs.substitute(a, b)

    def encode(self, tokens: Sequence[str]) -> np.ndarray:
        """Token sequence -> int vector (tokens must be known symbols)."""
        return np.fromiter(
            (self.index[t] for t in tokens), dtype=np.int64, count=len(tokens)
        )


def batch_edit_distances(
    query: Sequence[str],
    candidates: list[Sequence[str]],
    encoded: EncodedCosts,
) -> np.ndarray:
    """Exact edit distances from ``query`` to every candidate.

    Returns a float array aligned with ``candidates``.  Internally groups
    candidates by length and runs one vectorized DP per group.
    """
    result = np.empty(len(candidates), dtype=np.float64)
    by_length: dict[int, list[int]] = {}
    for idx, cand in enumerate(candidates):
        by_length.setdefault(len(cand), []).append(idx)
    q = encoded.encode(query)
    for length, indices in by_length.items():
        if length == 0:
            result[indices] = float(encoded.dele[q].sum())
            continue
        group = np.stack(
            [encoded.encode(candidates[i]) for i in indices]
        )  # (B, m)
        result[indices] = _group_distances(q, group, encoded)
    return result


def _group_distances(
    q: np.ndarray, group: np.ndarray, encoded: EncodedCosts
) -> np.ndarray:
    """DP over a (B, m) batch of equal-length candidates."""
    batch, m = group.shape
    n = len(q)
    ins_costs = encoded.ins[group]  # (B, m)
    # C[b, j] = cumulative insertion cost of candidate prefix j (C[:,0]=0).
    c = np.zeros((batch, m + 1), dtype=np.float64)
    np.cumsum(ins_costs, axis=1, out=c[:, 1:])
    prev = c.copy()
    if n == 0:
        return prev[:, -1]
    for i in range(n):
        del_cost = encoded.dele[q[i]]
        sub_costs = encoded.sub[q[i], group]  # (B, m)
        t0 = prev[:, 0] + del_cost  # (B,)
        t = np.minimum(prev[:, 1:] + del_cost, prev[:, :-1] + sub_costs)
        stacked = np.concatenate(
            [(t0 - c[:, 0])[:, None], t - c[:, 1:]], axis=1
        )
        np.minimum.accumulate(stacked, axis=1, out=stacked)
        prev = stacked + c
    return prev[:, -1]


def pairwise_distance_matrix(
    strings: list[Sequence[str]],
    costs: CostModel,
    symbols: Sequence[str] | None = None,
) -> np.ndarray:
    """Full symmetric matrix of edit distances between all strings.

    ``symbols`` defaults to the union of symbols in ``strings``.  With a
    symmetric cost model the matrix is symmetric; we compute the upper
    triangle once per row and mirror it.
    """
    if symbols is None:
        seen: dict[str, None] = {}
        for s in strings:
            for tok in s:
                seen.setdefault(tok)
        symbols = list(seen)
    encoded = EncodedCosts(costs, symbols)
    n = len(strings)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        rest = strings[i + 1 :]
        if not rest:
            break
        row = batch_edit_distances(strings[i], rest, encoded)
        matrix[i, i + 1 :] = row
        matrix[i + 1 :, i] = row
    return matrix
