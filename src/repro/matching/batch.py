"""Vectorized batch edit distances (numpy).

The quality experiments (paper Figures 11/12) compare *every* phoneme
string in the lexicon with every other — ~3M dynamic programs per cost
setting.  This module computes exact Clustered Edit Distances for one
query against many candidates at once, vectorizing across candidates of
equal length.

The insertion recurrence ``curr[j] = min(t[j], curr[j-1] + ins_j)`` looks
inherently sequential, but with non-negative insertion costs it unrolls
to a prefix minimum::

    curr[j] = C[j] + min_{k <= j} (t[k] - C[k]),   C[j] = sum_{l<=j} ins_l

which is ``np.minimum.accumulate`` — so each DP row is a handful of numpy
operations over a (batch, length) matrix.  Results are bit-identical to
:func:`repro.matching.editdist.edit_distance` (the test suite checks).

:func:`batch_edit_distances_within` is the thresholded counterpart of
:func:`repro.matching.editdist.edit_distance_within`: one padded DP
per cache-sized block of candidates (every surviving candidate in the
block advances one DP row per numpy step, whatever its length), with a
value-clipping band (cells over budget become ``inf`` — no over-budget
cell can lie on the optimal path of a within-budget result, so
clipping is exact and subsumes the Ukkonen band, whose off-diagonal
cells always exceed the budget), dead-candidate compression that drops
candidates whose whole DP row went over budget, and matrix narrowing
when the longest survivor shortens.  The parallel executor
(:mod:`repro.parallel`) attaches to pre-encoded int arrays in shared
memory and calls the ``_encoded`` variant directly.

numpy is an optional dependency of the library proper: only this module
(and the evaluation harness that uses it) imports it.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro import deadline, obs
from repro.errors import DeadlineExceededError
from repro.matching.costs import CostModel


class EncodedCosts:
    """A cost model compiled to integer-indexed numpy lookup tables."""

    def __init__(self, costs: CostModel, symbols: Sequence[str]):
        self.costs = costs
        self.index: dict[str, int] = {}
        for sym in symbols:
            if sym not in self.index:
                self.index[sym] = len(self.index)
        size = len(self.index)
        self.sub = np.zeros((size, size), dtype=np.float64)
        self.ins = np.zeros(size, dtype=np.float64)
        self.dele = np.zeros(size, dtype=np.float64)
        for a, ia in self.index.items():
            self.ins[ia] = costs.insert(a)
            self.dele[ia] = costs.delete(a)
            for b, ib in self.index.items():
                self.sub[ia, ib] = costs.substitute(a, b)
        #: Cached for the banded kernels (worker processes receive this
        #: object pickled; the scalar lookup avoids re-deriving it).
        self.min_indel = float(costs.min_indel_cost())

    def encode(self, tokens: Sequence[str]) -> np.ndarray:
        """Token sequence -> int vector (tokens must be known symbols)."""
        return np.fromiter(
            (self.index[t] for t in tokens), dtype=np.int64, count=len(tokens)
        )


def batch_edit_distances(
    query: Sequence[str],
    candidates: list[Sequence[str]],
    encoded: EncodedCosts,
) -> np.ndarray:
    """Exact edit distances from ``query`` to every candidate.

    Returns a float array aligned with ``candidates``.  Internally groups
    candidates by length and runs one vectorized DP per group.
    """
    result = np.empty(len(candidates), dtype=np.float64)
    by_length: dict[int, list[int]] = {}
    for idx, cand in enumerate(candidates):
        by_length.setdefault(len(cand), []).append(idx)
    q = encoded.encode(query)
    for length, indices in by_length.items():
        if length == 0:
            result[indices] = float(encoded.dele[q].sum())
            continue
        group = np.stack(
            [encoded.encode(candidates[i]) for i in indices]
        )  # (B, m)
        result[indices] = _group_distances(q, group, encoded)
    return result


def _group_distances(
    q: np.ndarray, group: np.ndarray, encoded: EncodedCosts
) -> np.ndarray:
    """DP over a (B, m) batch of equal-length candidates."""
    batch, m = group.shape
    n = len(q)
    ins_costs = encoded.ins[group]  # (B, m)
    # C[b, j] = cumulative insertion cost of candidate prefix j (C[:,0]=0).
    c = np.zeros((batch, m + 1), dtype=np.float64)
    np.cumsum(ins_costs, axis=1, out=c[:, 1:])
    prev = c.copy()
    if n == 0:
        return prev[:, -1]
    for i in range(n):
        del_cost = encoded.dele[q[i]]
        sub_costs = encoded.sub[q[i], group]  # (B, m)
        t0 = prev[:, 0] + del_cost  # (B,)
        t = np.minimum(prev[:, 1:] + del_cost, prev[:, :-1] + sub_costs)
        stacked = np.concatenate(
            [(t0 - c[:, 0])[:, None], t - c[:, 1:]], axis=1
        )
        np.minimum.accumulate(stacked, axis=1, out=stacked)
        prev = stacked + c
    return prev[:, -1]


#: Candidate-axis block size for the padded all-candidates DP.  Each DP
#: row touches a handful of (B, m) float64 temporaries; at 200k rows one
#: full-width matrix spills far out of cache and the kernel slows ~4x.
#: Blocks of 8k candidates keep the working set cache-resident.
#: Blocking is exact by construction: candidates never interact, so
#: running the DP per block returns identical values per candidate.
PADDED_BLOCK = 8192


def _batch_deadline_cancel(cells: int) -> DeadlineExceededError:
    """Account a cooperative batch-DP cancellation and build its error."""
    obs.incr("matching.batch.cells", cells)
    obs.incr("matching.dp.deadline_cancels")
    return DeadlineExceededError(
        "request deadline exceeded during edit-distance matching"
    )


def batch_edit_distances_within(
    query: Sequence[str],
    candidates: list[Sequence[str]],
    encoded: EncodedCosts,
    budgets,
) -> np.ndarray:
    """Thresholded batch distances (vectorized ``edit_distance_within``).

    ``budgets`` is a scalar or a per-candidate array.  Returns a float
    array aligned with ``candidates``: the exact edit distance where it
    does not exceed that candidate's budget, ``np.inf`` otherwise (so
    ``np.isfinite(result)`` is the accept mask).  Distances and accept
    decisions are identical to the scalar kernels (the differential
    suite checks).
    """
    count = len(candidates)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter((len(c) for c in candidates), np.int64, count),
        out=offsets[1:],
    )
    codes = np.empty(int(offsets[-1]), dtype=np.int64)
    for i, cand in enumerate(candidates):
        codes[offsets[i] : offsets[i + 1]] = encoded.encode(cand)
    return batch_edit_distances_within_encoded(
        encoded.encode(query), codes, offsets, encoded, budgets
    )


def batch_edit_distances_within_encoded(
    q: np.ndarray,
    codes: np.ndarray,
    offsets: np.ndarray,
    encoded: EncodedCosts,
    budgets,
    rows: np.ndarray | None = None,
) -> np.ndarray:
    """`batch_edit_distances_within` over pre-encoded flat int arrays.

    ``codes``/``offsets`` describe the candidate table in CSR layout:
    candidate ``i`` is ``codes[offsets[i]:offsets[i+1]]``.  ``rows``
    optionally selects a subset of candidates (indices into the CSR
    table); ``budgets`` and the result align with ``rows`` when given,
    with the whole table otherwise.  This is the fork-friendly entry
    point: worker processes hold the arrays (shipped once) and evaluate
    shards without rebuilding Python objects.
    """
    all_starts = offsets[:-1]
    all_lens = np.diff(offsets)
    if rows is None:
        starts, lens = all_starts, all_lens
    else:
        starts, lens = all_starts[rows], all_lens[rows]
    count = len(starts)
    result = np.full(count, np.inf, dtype=np.float64)
    budgets = np.broadcast_to(
        np.asarray(budgets, dtype=np.float64), (count,)
    )
    n = len(q)
    # Length filter: |len difference| indels are unavoidable.
    feasible = np.abs(lens - n) * encoded.min_indel <= budgets
    obs.incr("matching.batch.calls")
    if not feasible.any():
        return result
    deadline_at = deadline.current()
    stats = {"cells": 0, "pruned": 0}
    idx = np.nonzero(feasible)[0]
    for lo in range(0, len(idx), PADDED_BLOCK):
        blk = idx[lo : lo + PADDED_BLOCK]
        result[blk] = _padded_within(
            q,
            codes,
            starts[blk],
            lens[blk],
            encoded,
            budgets[blk],
            deadline_at,
            stats,
        )
    obs.incr("matching.batch.cells", stats["cells"])
    if stats["pruned"]:
        obs.incr("matching.batch.pruned", stats["pruned"])
    return result


def _padded_within(
    q: np.ndarray,
    codes: np.ndarray,
    starts: np.ndarray,
    lens: np.ndarray,
    encoded: EncodedCosts,
    budgets: np.ndarray,
    deadline_at: float | None,
    stats: dict,
) -> np.ndarray:
    """Banded DP over *all* candidates at once, padded to the longest.

    Candidates of every length share one (B, m_max) matrix: column
    ``j`` of candidate ``b`` is real only while ``j < lens[b]``
    (``colvalid``).  Padding is inert by construction — DP column ``j``
    depends only on columns ``<= j``, and the prefix-min insertion
    trick accumulates left to right, so garbage in padded columns can
    never flow into a real cell; each candidate's answer is read from
    its own final column.  Cells over their candidate's budget are
    clipped to ``inf`` after every row (exact — see module docstring),
    dead candidates (every *real* cell over budget) are compressed out
    of the batch mid-flight, and the matrix narrows whenever the
    longest surviving candidate shortens.  One DP row is ~10 numpy ops
    for the whole candidate set, versus one scalar DP per pair in the
    reference.
    """
    batch = len(starts)
    n = len(q)
    m_max = int(lens.max()) if batch else 0
    out = np.full(batch, np.inf, dtype=np.float64)
    active = np.arange(batch)
    alive_lens = lens.astype(np.int64)
    bud = budgets.astype(np.float64).reshape(batch, 1)
    if m_max:
        cols = np.arange(m_max)
        valid = cols < alive_lens[:, None]  # (B, m_max)
        group = codes[np.where(valid, starts[:, None] + cols, 0)]
        ins_costs = np.where(valid, encoded.ins[group], 0.0)
    else:
        valid = np.zeros((batch, 0), dtype=bool)
        group = np.zeros((batch, 0), dtype=np.int64)
        ins_costs = np.zeros((batch, 0), dtype=np.float64)
    c = np.zeros((batch, m_max + 1), dtype=np.float64)
    np.cumsum(ins_costs, axis=1, out=c[:, 1:])
    # Column 0 (empty prefix) is real for everyone; column j covers
    # candidate prefix j, real while j - 1 < len.
    colvalid = np.concatenate(
        [np.ones((batch, 1), dtype=bool), valid], axis=1
    )
    prev = np.where(c > bud, np.inf, c)
    for i in range(n):
        # Cooperative cancellation: one clock read per DP row, as in the
        # scalar kernels.
        if deadline_at is not None and time.monotonic() > deadline_at:
            raise _batch_deadline_cancel(stats["cells"])
        del_cost = encoded.dele[q[i]]
        sub_costs = encoded.sub[q[i], group]  # (B, m)
        t0 = prev[:, 0] + del_cost  # (B,)
        t = np.minimum(prev[:, 1:] + del_cost, prev[:, :-1] + sub_costs)
        stacked = np.concatenate(
            [(t0 - c[:, 0])[:, None], t - c[:, 1:]], axis=1
        )
        np.minimum.accumulate(stacked, axis=1, out=stacked)
        curr = stacked + c
        over = curr > bud
        curr[over] = np.inf
        stats["cells"] += int(colvalid.sum())
        dead = (over | ~colvalid).all(axis=1)
        if dead.any():
            stats["pruned"] += int(dead.sum())
            keep = ~dead
            if not keep.any():
                return out
            group = group[keep]
            c = c[keep]
            bud = bud[keep]
            active = active[keep]
            alive_lens = alive_lens[keep]
            colvalid = colvalid[keep]
            curr = curr[keep]
            narrowed = int(alive_lens.max())
            if narrowed < group.shape[1]:
                group = group[:, :narrowed]
                c = c[:, : narrowed + 1]
                colvalid = colvalid[:, : narrowed + 1]
                curr = curr[:, : narrowed + 1]
        prev = curr
    out[active] = prev[np.arange(len(active)), alive_lens]
    return out


def pairwise_distance_matrix(
    strings: list[Sequence[str]],
    costs: CostModel,
    symbols: Sequence[str] | None = None,
) -> np.ndarray:
    """Full symmetric matrix of edit distances between all strings.

    ``symbols`` defaults to the union of symbols in ``strings``.  With a
    symmetric cost model the matrix is symmetric; we compute the upper
    triangle once per row and mirror it.
    """
    if symbols is None:
        seen: dict[str, None] = {}
        for s in strings:
            for tok in s:
                seen.setdefault(tok)
        symbols = list(seen)
    encoded = EncodedCosts(costs, symbols)
    n = len(strings)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        rest = strings[i + 1 :]
        if not rest:
            break
        row = batch_edit_distances(strings[i], rest, encoded)
        matrix[i, i + 1 :] = row
        matrix[i + 1 :, i] = row
    return matrix
