"""Cost models for the LexEQUAL edit distance.

Paper Figure 8 parameterizes the dynamic program with three cost functions
— ``InsCost``, ``DelCost`` and ``SubCost`` — and Section 3.3 defines the
*Clustered Edit Distance*: substitutions between phonemes of the same
cluster cost the tunable *intra-cluster substitution cost* in ``[0, 1]``,
while everything else costs 1.  Setting the intra-cluster cost to 1
"simulat[es] the standard Levenshtein cost function" and 0 reproduces the
Soundex behaviour (free substitutions within a cluster).

Cost models are small immutable strategy objects so that the dynamic
program stays generic; they also expose :meth:`CostModel.min_op_cost`,
which the q-gram filter layer uses to translate a *cost* budget into a
bound on the *number* of edit operations (see ``repro.core.strategies``).
"""

from __future__ import annotations

import abc

from repro.errors import MatchConfigError
from repro.phonetics.clusters import PhonemeClustering, default_clustering


class CostModel(abc.ABC):
    """Edit-operation costs over phoneme symbols (or any hashable tokens)."""

    @abc.abstractmethod
    def insert(self, symbol: str) -> float:
        """Cost of inserting ``symbol``."""

    @abc.abstractmethod
    def delete(self, symbol: str) -> float:
        """Cost of deleting ``symbol``."""

    @abc.abstractmethod
    def substitute(self, a: str, b: str) -> float:
        """Cost of substituting ``a`` with ``b`` (0 when equal)."""

    @abc.abstractmethod
    def min_op_cost(self) -> float:
        """Smallest non-zero cost any single edit operation can have.

        Used to bound the number of operations an edit script with a given
        cost budget may contain.  Must be > 0; models whose substitutions
        can be free must still return the smallest *non-zero* cost (free
        operations are handled separately by mapping to cluster space).
        """

    @abc.abstractmethod
    def min_indel_cost(self) -> float:
        """Smallest possible insertion/deletion cost (> 0).

        The banded edit distance and the length filter use this to bound
        how far an edit script can drift off the diagonal within a given
        cost budget.
        """

    def min_mapped_op_cost(self) -> float:
        """Cheapest operation visible after cluster mapping (> 0).

        Default: same as :meth:`min_op_cost`.  Cluster-aware models
        override this, since their intra-cluster substitutions map to
        identities.
        """
        return self.min_op_cost()


class LevenshteinCost(CostModel):
    """The classical unit-cost model: every operation costs 1."""

    def insert(self, symbol: str) -> float:
        return 1.0

    def delete(self, symbol: str) -> float:
        return 1.0

    def substitute(self, a: str, b: str) -> float:
        return 0.0 if a == b else 1.0

    def min_op_cost(self) -> float:
        return 1.0

    def min_indel_cost(self) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "LevenshteinCost()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LevenshteinCost)

    def __hash__(self) -> int:
        return hash(LevenshteinCost)


#: Shared unit-cost instance.
UNIT_COST = LevenshteinCost()


#: Segments whose insertion/deletion is discounted by default: laryngeals
#: and schwa — the segments most commonly elided or epenthesized when a
#: name crosses scripts (Hindi नेहरु keeps the ɦ that Tamil நேரு drops;
#: Indic renderings of English names routinely epenthesize or delete
#: unstressed vowels, and English diphthongs shed their offglides, whose
#: lax members fold onto i/u before matching).
WEAK_PHONEMES = frozenset({"h", "ɦ", "ʔ", "ə", "i", "u"})


class ClusteredCost(CostModel):
    """The paper's Clustered Edit Distance cost model.

    ``intra_cluster_cost`` is the substitution cost between two *distinct*
    phonemes of the same cluster; substitutions across clusters cost 1.
    Legal range is ``[0, 1]``.

    Insertions and deletions cost 1, except for *weak* segments
    (laryngeals and vowels by default) which cost ``weak_indel_cost`` —
    the paper's Figure 8 signature (``InsCost(S_Li)``, ``DelCost``)
    explicitly allows phoneme-dependent insert/delete costs, and this is
    the linguistically load-bearing instance for cross-script names.
    Likewise a substitution between two vowels of *different* clusters
    costs ``vowel_cross_cost`` rather than the full cross-cluster 1 —
    vowel quality is the least stable feature of a name across scripts.
    Set ``weak_indel_cost=1.0`` and ``vowel_cross_cost=1.0`` for the flat
    classical behaviour.
    """

    def __init__(
        self,
        intra_cluster_cost: float = 0.5,
        clustering: PhonemeClustering | None = None,
        *,
        weak_indel_cost: float = 0.5,
        vowel_cross_cost: float = 0.5,
        weak_phonemes: frozenset[str] = WEAK_PHONEMES,
    ):
        if not 0.0 <= intra_cluster_cost <= 1.0:
            raise MatchConfigError(
                f"intra-cluster substitution cost {intra_cluster_cost} "
                "not in [0, 1]"
            )
        if not 0.0 < weak_indel_cost <= 1.0:
            raise MatchConfigError(
                f"weak insert/delete cost {weak_indel_cost} not in (0, 1]"
            )
        if not 0.0 < vowel_cross_cost <= 1.0:
            raise MatchConfigError(
                f"vowel cross-cluster cost {vowel_cross_cost} not in (0, 1]"
            )
        self.intra_cluster_cost = float(intra_cluster_cost)
        self.clustering = clustering or default_clustering()
        self.weak_indel_cost = float(weak_indel_cost)
        self.vowel_cross_cost = float(vowel_cross_cost)
        self.weak_phonemes = weak_phonemes
        from repro.phonetics.inventory import INVENTORY

        self._vowels = frozenset(
            sym for sym, ph in INVENTORY.items() if ph.is_vowel
        )

    def insert(self, symbol: str) -> float:
        if symbol in self.weak_phonemes:
            return self.weak_indel_cost
        return 1.0

    def delete(self, symbol: str) -> float:
        if symbol in self.weak_phonemes:
            return self.weak_indel_cost
        return 1.0

    def substitute(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        if self.clustering.same_cluster(a, b):
            return self.intra_cluster_cost
        if a in self._vowels and b in self._vowels:
            return self.vowel_cross_cost
        return 1.0

    def min_op_cost(self) -> float:
        floor = min(
            1.0, self.weak_indel_cost, self.vowel_cross_cost
        )
        if self.intra_cluster_cost > 0.0:
            return min(floor, self.intra_cluster_cost)
        # Intra-cluster substitutions are free; the cheapest *non-zero*
        # operation is then an insert/delete/cross-cluster substitution.
        return floor

    def min_indel_cost(self) -> float:
        return self.weak_indel_cost

    def min_mapped_op_cost(self) -> float:
        """Cheapest operation still visible after cluster mapping.

        Intra-cluster substitutions become identities in cluster space;
        everything else costs at least this much.  Used by the cluster-
        domain q-gram filters to bound operation counts.
        """
        return min(1.0, self.weak_indel_cost, self.vowel_cross_cost)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusteredCost(intra_cluster_cost={self.intra_cluster_cost}, "
            f"clustering={self.clustering.name!r}, "
            f"weak_indel_cost={self.weak_indel_cost}, "
            f"vowel_cross_cost={self.vowel_cross_cost})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusteredCost):
            return NotImplemented
        return (
            self.intra_cluster_cost == other.intra_cluster_cost
            and self.clustering == other.clustering
            and self.weak_indel_cost == other.weak_indel_cost
            and self.vowel_cross_cost == other.vowel_cross_cost
            and self.weak_phonemes == other.weak_phonemes
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.intra_cluster_cost,
                self.clustering,
                self.weak_indel_cost,
                self.vowel_cross_cost,
                self.weak_phonemes,
            )
        )
