"""Positional q-grams and the length / count / position filters.

Paper Section 5.2 adapts the approximate-join filters of Gravano et al.
(ref. [6]) to phoneme strings.  Definitions (paper footnote 4):

* a string of length ``n`` is extended with ``q - 1`` start symbols and
  ``q - 1`` end symbols that are outside the alphabet;
* its *positional q-grams* are the pairs ``(i, extended[i : i + q])`` for
  ``i = 1 .. n + q - 1``.

The three filters are *necessary* conditions for two strings to be within
(unit-cost) edit distance ``k``:

* **length filter** — the lengths differ by at most ``k``;
* **count filter** — the strings share at least
  ``max(|s1|, |s2|) - 1 - (k - 1) * q`` q-grams;
* **position filter** — only q-gram occurrences whose positions differ by
  at most ``k`` may be counted as shared.

Following the SQL formulation of paper Figure 14, the shared-gram count is
the number of *joined pairs* ``(g1, g2)`` with equal grams and close
positions; this over-counts duplicated grams relative to a perfect bag
intersection, which keeps the filter conservative (it can only let extra
candidates through, never drop a true match).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from typing import NamedTuple

from repro import faults, obs
from repro.errors import MatchConfigError

#: Start sentinel prepended to the extended string (outside any alphabet).
START_SYMBOL = "◂"  # ◂
#: End sentinel appended to the extended string.
END_SYMBOL = "▸"  # ▸


class PositionalQGram(NamedTuple):
    """A q-gram occurrence: 1-based position plus the gram itself."""

    pos: int
    gram: tuple[str, ...]


def positional_qgrams(
    tokens: Sequence[str], q: int = 2
) -> tuple[PositionalQGram, ...]:
    """Positional q-grams of a token sequence.

    >>> [g.gram for g in positional_qgrams("ab", q=2)]  # doctest: +SKIP
    [('◂', 'a'), ('a', 'b'), ('b', '▸')]
    """
    if q < 1:
        raise MatchConfigError(f"q must be >= 1, got {q}")
    extended = (
        (START_SYMBOL,) * (q - 1) + tuple(tokens) + (END_SYMBOL,) * (q - 1)
    )
    count = len(tokens) + q - 1
    return tuple(
        PositionalQGram(i + 1, extended[i : i + q]) for i in range(count)
    )


def qgram_profile(tokens: Sequence[str], q: int = 2) -> Counter:
    """Bag of (non-positional) q-grams of a token sequence."""
    return Counter(g.gram for g in positional_qgrams(tokens, q))


def length_filter(len_a: int, len_b: int, k: float) -> bool:
    """True if two strings of these lengths *can* be within distance ``k``."""
    passed = abs(len_a - len_b) <= k
    obs.incr("filters.length.pass" if passed else "filters.length.reject")
    return passed


def count_filter_threshold(len_a: int, len_b: int, k: float, q: int) -> float:
    """Minimum number of shared q-grams required by the count filter.

    May be zero or negative for short strings / large ``k``, in which case
    the count filter is vacuous (any pair passes).
    """
    return max(len_a, len_b) - 1 - (k - 1) * q


def matching_qgram_pairs(
    grams_a: Sequence[PositionalQGram],
    grams_b: Sequence[PositionalQGram],
    k: float,
) -> int:
    """Number of q-gram pairs with equal grams and positions within ``k``.

    This mirrors the relational join of paper Figure 14 (including its
    bag-pair counting semantics).
    """
    by_gram: dict[tuple[str, ...], list[int]] = {}
    for g in grams_b:
        by_gram.setdefault(g.gram, []).append(g.pos)
    pairs = 0
    for g in grams_a:
        positions = by_gram.get(g.gram)
        if positions:
            pairs += sum(1 for p in positions if abs(g.pos - p) <= k)
    return pairs


def count_filter(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    k: float,
    q: int = 2,
) -> bool:
    """Count filter alone (no position constraint)."""
    needed = count_filter_threshold(len(tokens_a), len(tokens_b), k, q)
    if needed <= 0:
        obs.incr("filters.count.pass")
        return True
    shared = 0
    profile_b = qgram_profile(tokens_b, q)
    for gram, n in qgram_profile(tokens_a, q).items():
        shared += min(n, profile_b.get(gram, 0))
        if shared >= needed:
            obs.incr("filters.count.pass")
            return True
    passed = shared >= needed
    obs.incr("filters.count.pass" if passed else "filters.count.reject")
    return passed


def position_filter(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    k: float,
    q: int = 2,
) -> bool:
    """Count filter with the position constraint applied (Figure 14 form)."""
    needed = count_filter_threshold(len(tokens_a), len(tokens_b), k, q)
    if needed <= 0:
        obs.incr("filters.position.pass")
        return True
    pairs = matching_qgram_pairs(
        positional_qgrams(tokens_a, q), positional_qgrams(tokens_b, q), k
    )
    passed = pairs >= needed
    obs.incr("filters.position.pass" if passed else "filters.position.reject")
    return passed


def publish_filter_counts(
    pos_pass: int,
    pos_reject: int,
    len_pass: int,
    len_reject: int,
    cnt_pass: int,
    cnt_reject: int,
) -> None:
    """Batch-publish inline filter decisions to the metrics registry.

    The strategy/accelerator hot loops count locally (plain integer
    adds) and publish once per invocation, so instrumentation stays
    free when metrics are disabled.
    """
    if not obs.is_enabled():
        return
    if pos_pass:
        obs.incr("filters.position.pass", pos_pass)
    if pos_reject:
        obs.incr("filters.position.reject", pos_reject)
    if len_pass:
        obs.incr("filters.length.pass", len_pass)
    if len_reject:
        obs.incr("filters.length.reject", len_reject)
    if cnt_pass:
        obs.incr("filters.count.pass", cnt_pass)
    if cnt_reject:
        obs.incr("filters.count.reject", cnt_reject)


def passes_filters(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    k: float,
    q: int = 2,
) -> bool:
    """All three filters combined: the cheap pre-check before the UDF.

    Guaranteed conservative with respect to unit-cost edit distance: if
    ``edit_distance(a, b) <= k`` then this returns True.
    """
    faults.fire("matching.qgrams.filter")
    if not length_filter(len(tokens_a), len(tokens_b), k):
        return False
    return position_filter(tokens_a, tokens_b, k, q)
