"""Articulatory-feature embeddings with a provable lower-bound contract.

PAPERS.md motivates a cheap *embedding tier* in front of the exact
clustered-edit-distance verifier: Ahmed et al. derive fixed-width
feature vectors from articulatory phonetics, and Symphonym shows that a
lossy-but-measured prefilter plus an exact verifier is the right
architecture for cross-script name matching at scale.  This module is
that tier: every phoneme string becomes a fixed ``DIM``-wide vector by
*pooling* per-phoneme articulatory features (the same weighted
manner/place/voicing and height/backness/rounding bundles that
:mod:`repro.phonetics.features` scores), and the L1 distance between two
pooled vectors provably never exceeds a constant multiple of their
Clustered Edit Distance.

Lower-bound contract
--------------------

Let ``v(p)`` be the (collapsed, see below) base vector of phoneme ``p``
and ``phi(s) = sum_i v(s_i) + pos(s)`` the pooled embedding, where
``pos(s)`` puts ``min(i, POS_CAP) * W_POS`` of *positional mass* on the
consonant or vowel mass dimension for the phoneme at index ``i``.  For
any single edit operation transforming ``s`` into ``s'``:

* substituting ``a -> b`` changes ``phi`` by at most
  ``|v(a) - v(b)|_1`` plus, when the two phonemes' classes differ,
  ``2 * POS_CAP * W_POS`` of migrated positional mass (positions of all
  other phonemes are unchanged);
* inserting or deleting ``p`` at index ``j`` changes the pooled sum by
  ``|v(p)|_1`` and the positional mass by at most ``POS_CAP * W_POS``
  (the phoneme's own capped mass ``min(j, POS_CAP)`` plus one unit for
  each of the at most ``POS_CAP - j`` later phonemes still under the
  cap — their total is ``<= POS_CAP`` for every ``j``).

:meth:`EmbeddingModel.lower_bound_constant` enumerates every operation
the cost model admits over the symbol table and returns::

    c = max( max_{p}      (|v(p)|_1 + POS_CAP*W_POS) / indel_cost(p),
             max_{a != b} (|v(a)-v(b)|_1 + class_delta) / sub_cost(a, b) )

Summing over the operations of an optimal edit script and applying the
triangle inequality for L1 gives, for **all** strings ``s, t``::

    |phi(s) - phi(t)|_1  <=  c * d_edit(s, t)

so a radius search at ``c * k`` around ``phi(q)`` can never dismiss a
candidate within edit distance ``k`` (the *lossless* configuration),
and a radius search at ``r * k`` for ``r < c`` is a lossy prefilter
whose recall the quality harness measures rather than assumes.

Zero-cost substitutions (``intra_cluster_cost=0`` reproduces Soundex)
would break the ratio, so symbols connected by a zero-cost substitution
are *collapsed* to one shared vector before the constant is computed —
a zero-cost edit then moves the embedding by exactly zero.

Quantization
------------

:class:`QuantizedMatrixIndex` stores ``round(clip(phi * scale))`` as an
``int8`` matrix.  Rounding perturbs each coordinate by at most 0.5 and
saturating clipping is a contraction, so for any two vectors::

    |q(x) - q(y)|_1  <=  scale * |x - y|_1 + DIM

Admitting a row when its quantized L1 distance is at most
``scale * radius + DIM`` therefore admits a *superset* of the rows the
float-space radius search would admit: quantization can widen the
candidate set but never costs recall.  The property suite checks both
inequalities on generated strings.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import deadline, obs
from repro.errors import MatchConfigError
from repro.matching.batch import EncodedCosts
from repro.matching.costs import CostModel
from repro.phonetics.inventory import INVENTORY, Manner

# Feature weights mirror repro.phonetics.features: manner dominates for
# consonants, height for vowels; the shared bookkeeping components
# (class, length, positional mass) are deliberately light so they sharpen
# the prefilter without inflating the lower-bound constant.
_W_MANNER = 0.45
_W_PLACE = 0.30
_W_VOICE = 0.15
_W_ASPIRATION = 0.10
_W_HEIGHT = 0.40
_W_BACKNESS = 0.30
_W_ROUNDED = 0.12
_W_LONG = 0.10
_W_VNASAL = 0.08
_W_CLASS = 0.25
_W_LEN = 0.08
#: Weight of one unit of capped positional mass.
W_POS = 0.04
#: Positions at and beyond the cap contribute the same mass — the cap is
#: what keeps a single insertion's ripple effect bounded (see module
#: docstring) instead of linear in the string length.
POS_CAP = 4

#: Weight of one phoneme's cluster-histogram component.  Chosen so the
#: *common* operations stay within a factor-2 embedding motion: an
#: intra-cluster substitution moves the histogram by 0 and a cross-
#: cluster one by ``2 * W_HIST = 1.0 <= 2 * vowel_cross_cost``; an indel
#: moves it by ``W_HIST = 0.5 <= 2 * weak_indel_cost``.  The histogram
#: is the linearly-scaling discrimination signal: unrelated strings of
#: length ``n`` differ by O(n) in histogram L1, matching how the edit
#: budget grows, where the pooled articulatory dims alone cancel like a
#: random walk.
W_HIST = 0.5

_MANNERS = tuple(Manner)

#: Width of the fixed articulatory prefix: class pair + length + two
#: positional-mass dims + manner one-hot + place/voice/aspiration + the
#: five vowel features.  A model's full width is ``DIM`` plus one
#: cluster-histogram dimension per phoneme group (``EmbeddingModel.dim``).
DIM = 5 + len(_MANNERS) + 3 + 5

# Dimension indices.
_D_CONS = 0
_D_VOWEL = 1
_D_LEN = 2
_D_POS_CONS = 3
_D_POS_VOWEL = 4
_D_MANNER0 = 5
_D_PLACE = _D_MANNER0 + len(_MANNERS)
_D_VOICE = _D_PLACE + 1
_D_ASP = _D_VOICE + 1
_D_HEIGHT = _D_ASP + 1
_D_BACK = _D_HEIGHT + 1
_D_ROUND = _D_BACK + 1
_D_LONG = _D_ROUND + 1
_D_VNASAL = _D_LONG + 1

#: Default quantizer scale: coarse enough that realistic name vectors
#: stay inside int8 (saturation is correctness-safe either way, see the
#: module docstring), fine enough that the DIM rounding slack stays well
#: under one scaled cost unit of admission radius.
QUANT_SCALE = 32.0

#: Row block for the chunked int8 scan (mirrors ``PADDED_BLOCK``: big
#: enough to amortize numpy dispatch, small enough to poll deadlines).
EMBED_BLOCK = 8192


def _base_vector(symbol: str) -> np.ndarray:
    """The uncollapsed per-phoneme feature vector.

    Symbols outside the inventory get only the length component: all
    unknowns share one vector, so substituting one unknown for another
    moves the embedding by zero — never *more* than the (positive)
    substitution cost, which is all the lower bound needs.
    """
    vec = np.zeros(DIM, dtype=np.float64)
    vec[_D_LEN] = _W_LEN
    phoneme = INVENTORY.get(symbol)
    if phoneme is None:
        return vec
    if phoneme.is_consonant:
        from repro.phonetics.features import _PLACE_ORDER, _PLACE_SPAN

        vec[_D_CONS] = _W_CLASS
        vec[_D_MANNER0 + _MANNERS.index(phoneme.manner)] = _W_MANNER
        vec[_D_PLACE] = (
            _W_PLACE * _PLACE_ORDER[phoneme.place] / _PLACE_SPAN
        )
        if phoneme.voiced:
            vec[_D_VOICE] = _W_VOICE
        if phoneme.aspirated:
            vec[_D_ASP] = _W_ASPIRATION
    else:
        from repro.phonetics.features import _HEIGHT_SPAN

        vec[_D_VOWEL] = _W_CLASS
        vec[_D_HEIGHT] = _W_HEIGHT * phoneme.height.value / _HEIGHT_SPAN
        vec[_D_BACK] = _W_BACKNESS * phoneme.backness.value / 2.0
        if phoneme.rounded:
            vec[_D_ROUND] = _W_ROUNDED
        if phoneme.long:
            vec[_D_LONG] = _W_LONG
        if phoneme.nasal:
            vec[_D_VNASAL] = _W_VNASAL
    return vec


def _phoneme_class(symbol: str) -> int:
    """+1 consonant, -1 vowel, 0 out-of-inventory (its own class)."""
    phoneme = INVENTORY.get(symbol)
    if phoneme is None:
        return 0
    return 1 if phoneme.is_consonant else -1


class EmbeddingModel:
    """Pooled articulatory embeddings over one cost model's symbol table.

    Built from the same :class:`~repro.matching.batch.EncodedCosts` the
    banded verifier uses, so embedding code space and DP code space are
    identical — a CSR ``codes``/``offsets`` table encodes into an
    ``(N, DIM)`` matrix with one :func:`np.add.reduceat` pass.
    """

    def __init__(self, encoded: EncodedCosts):
        self.encoded = encoded
        symbols = sorted(encoded.index, key=encoded.index.__getitem__)
        self.symbols = tuple(symbols)
        size = len(symbols)
        groups = self._symbol_groups(encoded, symbols)
        n_groups = (max(groups) + 1) if groups else 0
        self.dim = DIM + n_groups
        vectors = np.zeros((size, self.dim), dtype=np.float64)
        for pos, sym in enumerate(symbols):
            vectors[pos, :DIM] = _base_vector(sym)
            vectors[pos, DIM + groups[pos]] = W_HIST
        classes = np.fromiter(
            (_phoneme_class(sym) for sym in symbols),
            dtype=np.int8,
            count=size,
        )
        # Collapse symbols connected by zero-cost substitutions onto one
        # representative vector (and class), so free edits move the
        # embedding by exactly zero — required by the lower bound.
        root = self._zero_cost_roots(encoded.sub)
        self.vectors = vectors[root]
        self.classes = classes[root]
        self._constant: float | None = None

    @staticmethod
    def _symbol_groups(
        encoded: EncodedCosts, symbols: Sequence[str]
    ) -> list[int]:
        """Histogram group per symbol: its phoneme cluster when the cost
        model has one, its own singleton group otherwise."""
        clustering = getattr(encoded.costs, "clustering", None)
        keys: dict[object, int] = {}
        groups = []
        for sym in symbols:
            key: object = sym
            if clustering is not None:
                try:
                    key = ("cluster", clustering.cluster_id(sym))
                except (KeyError, ValueError):
                    key = sym
            groups.append(keys.setdefault(key, len(keys)))
        return groups

    @classmethod
    def for_costs(
        cls, costs: CostModel, symbols: Sequence[str] | None = None
    ) -> EmbeddingModel:
        """Build from a bare cost model (full inventory by default)."""
        if symbols is None:
            symbols = sorted(INVENTORY)
        return cls(EncodedCosts(costs, list(symbols)))

    @staticmethod
    def _zero_cost_roots(sub: np.ndarray) -> np.ndarray:
        """Union-find representative per code over zero-cost sub pairs."""
        size = sub.shape[0]
        parent = np.arange(size)

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        zero_a, zero_b = np.nonzero(
            (sub <= 0.0) & ~np.eye(size, dtype=bool)
        )
        for a, b in zip(zero_a.tolist(), zero_b.tolist()):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
        return np.fromiter(
            (find(i) for i in range(size)), dtype=np.int64, count=size
        )

    # ------------------------------------------------------------ encode

    def encode_codes(self, codes: np.ndarray) -> np.ndarray:
        """Embed one code vector (see :meth:`EncodedCosts.encode`)."""
        offsets = np.array([0, len(codes)], dtype=np.int64)
        return self.encode_many(codes, offsets)[0]

    def encode(self, phonemes: Sequence[str]) -> np.ndarray:
        """Embed one phoneme string (symbols must be known)."""
        return self.encode_codes(self.encoded.encode(phonemes))

    def encode_many(
        self, codes: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Embed a CSR table of phoneme strings into ``(N, DIM)``.

        Row ``i`` is ``codes[offsets[i]:offsets[i+1]]``; empty rows embed
        to the zero vector.
        """
        count = len(offsets) - 1
        out = np.zeros((count, self.dim), dtype=np.float64)
        if count == 0 or len(codes) == 0:
            return out
        lens = np.diff(offsets)
        # reduceat misbehaves on empty segments (it returns the element
        # *at* the index — and clamping an out-of-range trailing start
        # would steal the previous row's last phoneme), so reduce over
        # the non-empty rows only: their starts are strictly increasing
        # and each segment runs exactly to the next non-empty start.
        nonempty = np.nonzero(lens > 0)[0]
        if len(nonempty) == 0:
            return out
        starts = offsets[:-1][nonempty]
        per_code = self.vectors[codes]
        sums = np.add.reduceat(per_code, starts, axis=0)
        # Capped positional mass, routed to the phoneme's class dim.
        row_of = np.repeat(np.arange(count), lens)
        local = np.arange(len(codes)) - offsets[row_of]
        mass = np.minimum(local, POS_CAP).astype(np.float64) * W_POS
        cls = self.classes[codes]
        cons_mass = np.where(cls > 0, mass, 0.0)
        vowel_mass = np.where(cls < 0, mass, 0.0)
        sums[:, _D_POS_CONS] += np.add.reduceat(cons_mass, starts)
        sums[:, _D_POS_VOWEL] += np.add.reduceat(vowel_mass, starts)
        out[nonempty] = sums
        return out

    # ----------------------------------------------------- contract math

    def lower_bound_constant(self) -> float:
        """The proven constant ``c`` with ``|phi(s)-phi(t)|_1 <= c*d``.

        Enumerates every operation over the symbol table (module
        docstring has the per-operation bounds).  Raises
        :class:`~repro.errors.MatchConfigError` if any operation has
        non-positive cost but nonzero embedding motion — impossible
        after zero-cost collapsing for substitutions, and ruled out for
        indels by the :meth:`CostModel.min_indel_cost` contract.
        """
        if self._constant is not None:
            return self._constant
        size = len(self.symbols)
        if size == 0:
            self._constant = 1.0
            return 1.0
        encoded = self.encoded
        norms = np.abs(self.vectors).sum(axis=1)
        indel_cost = np.minimum(encoded.ins, encoded.dele)
        if np.any(indel_cost <= 0.0):
            raise MatchConfigError(
                "embedding lower bound requires positive indel costs"
            )
        ratio = ((norms + POS_CAP * W_POS) / indel_cost).max()
        diffs = np.abs(
            self.vectors[:, None, :] - self.vectors[None, :, :]
        ).sum(axis=2)
        diffs += (
            self.classes[:, None] != self.classes[None, :]
        ) * (2.0 * POS_CAP * W_POS)
        sub = encoded.sub
        payable = sub > 0.0
        if np.any(~payable & (diffs > 1e-12) & ~np.eye(size, dtype=bool)):
            raise MatchConfigError(
                "zero-cost substitution between symbols with distinct "
                "embeddings survived collapsing"
            )
        if payable.any():
            ratio = max(
                ratio, (diffs[payable] / sub[payable]).max()
            )
        self._constant = float(ratio)
        return self._constant


def quantize(vectors: np.ndarray, scale: float = QUANT_SCALE) -> np.ndarray:
    """Float vectors -> saturating int8 at ``scale`` (see module doc)."""
    return np.clip(np.rint(vectors * scale), -127, 127).astype(np.int8)


def quantized_radius(
    radius: float, dim: int, scale: float = QUANT_SCALE
) -> float:
    """Admission limit in quantized units for a float-space ``radius``.

    ``scale * radius + dim`` absorbs the worst-case rounding slack (one
    unit per dimension), so the quantized test admits a superset of the
    float-space test.
    """
    return scale * radius + dim


class QuantizedMatrixIndex:
    """Chunked int8 L1 radius scan over an ``(N, DIM)`` matrix.

    The batch path of the prefilter: one contiguous quantized matrix,
    scanned ``EMBED_BLOCK`` rows at a time (deadline-polled between
    blocks).  Supports append / tombstone-delete maintenance and exposes
    its whole state as plain arrays for LEXSNAP snapshotting.
    """

    def __init__(self, dim: int = DIM, scale: float = QUANT_SCALE):
        self.scale = float(scale)
        self.matrix = np.zeros((0, dim), dtype=np.int8)
        self.alive = np.zeros(0, dtype=bool)
        self.last_scan_rows = 0

    def __len__(self) -> int:
        return int(self.alive.sum())

    @classmethod
    def from_vectors(
        cls, vectors: np.ndarray, scale: float = QUANT_SCALE
    ) -> QuantizedMatrixIndex:
        index = cls(vectors.shape[1], scale)
        index.matrix = quantize(vectors, scale)
        index.alive = np.ones(len(index.matrix), dtype=bool)
        return index

    def append(self, vector: np.ndarray) -> int:
        """Add one float vector; returns its position."""
        row = quantize(vector[None, :], self.scale)
        self.matrix = np.concatenate([self.matrix, row])
        self.alive = np.append(self.alive, True)
        obs.incr("ann.index.inserts")
        return len(self.matrix) - 1

    def delete(self, position: int) -> None:
        """Tombstone one position (idempotent)."""
        if self.alive[position]:
            self.alive[position] = False
            obs.incr("ann.index.deletes")

    def search(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Positions whose quantized L1 distance admits at ``radius``.

        ``query`` is a float vector; ``radius`` a float-space radius.
        The result is a superset of ``{i : |phi_i - query|_1 <= radius}``
        (quantization slack only ever widens it).
        """
        limit = quantized_radius(radius, self.matrix.shape[1], self.scale)
        q = quantize(query[None, :], self.scale).astype(np.int32)[0]
        total = len(self.matrix)
        hits = []
        for lo in range(0, total, EMBED_BLOCK):
            deadline.check("matching.embed.scan")
            block = self.matrix[lo : lo + EMBED_BLOCK].astype(np.int32)
            dist = np.abs(block - q[None, :]).sum(axis=1)
            ok = (dist <= limit) & self.alive[lo : lo + EMBED_BLOCK]
            hits.append(np.nonzero(ok)[0] + lo)
        self.last_scan_rows = total
        out = (
            np.concatenate(hits) if hits else np.empty(0, dtype=np.int64)
        )
        obs.incr("ann.scan.invocations")
        obs.incr("ann.scan.rows", total)
        obs.incr("ann.scan.admitted", len(out))
        return out

    # --------------------------------------------------------- snapshots

    def state(self) -> dict:
        """Plain-array state for the LEXSNAP codec."""
        return {
            "scale": self.scale,
            "matrix": self.matrix,
            "alive": self.alive,
        }

    @classmethod
    def from_state(cls, state: dict) -> QuantizedMatrixIndex:
        matrix = np.ascontiguousarray(state["matrix"], dtype=np.int8)
        index = cls(matrix.shape[1], float(state["scale"]))
        index.matrix = matrix
        index.alive = np.ascontiguousarray(state["alive"], dtype=bool)
        return index


class VPTree:
    """A vantage-point tree over float embedding vectors (L1 metric).

    The pointwise counterpart of :class:`QuantizedMatrixIndex`: the same
    admission guarantees (it searches the *float* vectors, so no
    quantization slack at all), sublinear per-query work via triangle-
    inequality pruning.  Inserts land in a linear overflow list that is
    folded into a rebuilt tree once it outgrows ``rebuild_fraction`` of
    the indexed points; deletes are tombstones.
    """

    def __init__(
        self, vectors: np.ndarray, *, rebuild_fraction: float = 0.25
    ):
        self._vectors = np.asarray(vectors, dtype=np.float64)
        self._rebuild_fraction = rebuild_fraction
        self._overflow: list[int] = []
        self._dead: set[int] = set()
        self.last_distance_calls = 0
        # Node-table layout: vantage position, split radius, child ids.
        self._vantage: list[int] = []
        self._mu: list[float] = []
        self._inner: list[int] = []
        self._outer: list[int] = []
        self._members: list[np.ndarray | None] = []
        self._root = self._build(np.arange(len(self._vectors)))

    _LEAF_SIZE = 16

    def __len__(self) -> int:
        return (
            len(self._vectors) + len(self._overflow) - len(self._dead)
        )

    def _build(self, positions: np.ndarray) -> int:
        if len(positions) == 0:
            return -1
        node = len(self._vantage)
        self._vantage.append(int(positions[0]))
        self._mu.append(0.0)
        self._inner.append(-1)
        self._outer.append(-1)
        self._members.append(None)
        if len(positions) <= self._LEAF_SIZE:
            self._members[node] = positions
            return node
        vantage = self._vectors[positions[0]]
        rest = positions[1:]
        dist = np.abs(self._vectors[rest] - vantage[None, :]).sum(axis=1)
        mu = float(np.median(dist))
        self._mu[node] = mu
        inside = rest[dist <= mu]
        outside = rest[dist > mu]
        if len(inside) == 0 or len(outside) == 0:
            # Degenerate split (duplicated vectors): keep them as a leaf
            # bucket rather than recursing forever.
            self._members[node] = positions
            return node
        self._members[node] = positions[:1]
        self._inner[node] = self._build(inside)
        self._outer[node] = self._build(outside)
        return node

    def add(self, position: int, vector: np.ndarray) -> None:
        """Register ``vector`` at ``position`` (appended if new)."""
        if position >= len(self._vectors):
            pad = position + 1 - len(self._vectors)
            self._vectors = np.concatenate(
                [self._vectors, np.zeros((pad, self._vectors.shape[1]))]
            )
        self._vectors[position] = vector
        self._dead.discard(position)
        self._overflow.append(position)
        obs.incr("ann.vptree.inserts")
        limit = self._rebuild_fraction * max(
            self._LEAF_SIZE, len(self._vectors)
        )
        if len(self._overflow) > limit:
            self.rebuild()

    def delete(self, position: int) -> None:
        self._dead.add(position)
        obs.incr("ann.vptree.deletes")

    def rebuild(self) -> None:
        """Fold overflow and tombstones back into a balanced tree."""
        keep = np.array(
            [
                pos
                for pos in range(len(self._vectors))
                if pos not in self._dead
            ],
            dtype=np.int64,
        )
        vectors = np.zeros((len(self._vectors), self._vectors.shape[1]))
        vectors[keep] = self._vectors[keep]
        self._vectors = vectors
        self._overflow = []
        self._vantage, self._mu = [], []
        self._inner, self._outer, self._members = [], [], []
        self._root = self._build(keep)

    def search(self, query: np.ndarray, radius: float) -> np.ndarray:
        """All live positions within L1 ``radius`` of ``query``."""
        query = np.asarray(query, dtype=np.float64)
        self.last_distance_calls = 0
        hits: list[int] = []
        stack = [self._root] if self._root >= 0 else []
        while stack:
            deadline.check("matching.embed.vptree")
            node = stack.pop()
            members = self._members[node]
            if members is not None and len(members) > 1:
                dist = np.abs(
                    self._vectors[members] - query[None, :]
                ).sum(axis=1)
                self.last_distance_calls += len(members)
                for pos in members[dist <= radius].tolist():
                    if pos not in self._dead:
                        hits.append(pos)
                continue
            vantage = self._vantage[node]
            d = float(np.abs(self._vectors[vantage] - query).sum())
            self.last_distance_calls += 1
            if d <= radius and vantage not in self._dead:
                hits.append(vantage)
            mu = self._mu[node]
            if self._inner[node] >= 0 and d - radius <= mu:
                stack.append(self._inner[node])
            if self._outer[node] >= 0 and d + radius > mu:
                stack.append(self._outer[node])
        if self._overflow:
            extra = np.array(self._overflow, dtype=np.int64)
            dist = np.abs(self._vectors[extra] - query[None, :]).sum(
                axis=1
            )
            self.last_distance_calls += len(extra)
            for pos in extra[dist <= radius].tolist():
                if pos not in self._dead:
                    hits.append(pos)
        obs.incr("ann.vptree.distance_calls", self.last_distance_calls)
        return np.unique(np.array(hits, dtype=np.int64))
