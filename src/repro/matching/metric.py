"""Metric-axiom validation for edit-distance cost models.

The BK-tree (:mod:`repro.matching.bktree`) prunes subtrees with the
triangle inequality and the phonetic index relies on the distance being
symmetric, so both are *only correct* when the cost model induces a true
(pseudo)metric on phoneme strings.  A weighted edit distance is one iff
the per-symbol costs satisfy, for all inventory symbols ``a, b, k``:

* **positivity** — ``insert(a) > 0``, ``delete(a) > 0``,
  ``substitute(a, b) >= 0``;
* **identity** — ``substitute(a, a) == 0``;
* **symmetry** — ``substitute(a, b) == substitute(b, a)`` and
  ``insert(a) == delete(a)`` (reversing an edit script swaps inserts
  with deletes and transposes substitutions);
* **triangle** — ``substitute(a, b) <= substitute(a, k) +
  substitute(k, b)``, ``substitute(a, b) <= delete(a) + insert(b)``, and
  ``delete(a) <= substitute(a, b) + delete(b)`` (an operation is never
  beaten by a detour through a third symbol).

:func:`check_metric_axioms` verifies all of these exhaustively over the
phoneme inventory (or any symbol set) and returns the violations;
:func:`validate_metric` raises :class:`~repro.errors.MatchConfigError`
instead.  The static-analysis pass (``repro.analysis``, rule LEX-D003)
runs the same checker over the shipped cost models on every CI run.

With numpy available the checks are vectorized (the triangle scan is
``O(n^3)`` over ~150 symbols); a pure-Python fallback keeps the checker
working when numpy is absent.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import MatchConfigError
from repro.matching.costs import CostModel

#: Comparison slack for float cost arithmetic.
_EPS = 1e-9


@dataclass(frozen=True)
class MetricViolation:
    """One broken axiom: which one, the symbols involved, and the math."""

    axiom: str  # positivity | identity | symmetry | triangle
    symbols: tuple[str, ...]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.axiom}({', '.join(self.symbols)}): {self.detail}"


def _inventory_symbols() -> tuple[str, ...]:
    from repro.phonetics.parse import all_symbols

    return all_symbols()


def check_metric_axioms(
    costs: CostModel,
    symbols: Sequence[str] | None = None,
    *,
    max_violations: int = 50,
) -> list[MetricViolation]:
    """Exhaustively check the metric axioms of ``costs`` over ``symbols``.

    ``symbols`` defaults to the full phoneme inventory.  Returns at most
    ``max_violations`` violations (the scan stops early once the cap is
    reached); an empty list means the induced edit distance is a
    symmetric pseudometric, which is what BK-tree pruning requires.
    """
    syms = tuple(symbols) if symbols is not None else _inventory_symbols()
    try:
        return _check_numpy(costs, syms, max_violations)
    except ImportError:  # pragma: no cover - numpy is present in CI
        return _check_pure(costs, syms, max_violations)


def validate_metric(
    costs: CostModel,
    symbols: Sequence[str] | None = None,
) -> None:
    """Raise :class:`MatchConfigError` unless ``costs`` is metric.

    This is the build-time form of the BK-tree's docstring requirement:
    pass the cost model backing a ``BKTree`` distance function (or any
    custom :class:`~repro.matching.costs.CostModel`) and the full set of
    symbols it will see; a broken model fails loudly here instead of
    silently dropping true matches during pruned searches.
    """
    violations = check_metric_axioms(costs, symbols, max_violations=5)
    if violations:
        shown = "; ".join(str(v) for v in violations)
        raise MatchConfigError(
            f"cost model {costs!r} violates the metric axioms the "
            f"BK-tree and phonetic index require: {shown}"
        )


# ------------------------------------------------------------ numpy path


def _check_numpy(
    costs: CostModel, syms: tuple[str, ...], cap: int
) -> list[MetricViolation]:
    import numpy as np

    from repro.matching.batch import EncodedCosts

    enc = EncodedCosts(costs, syms)
    sub, ins, dele = enc.sub, enc.ins, enc.dele
    out: list[MetricViolation] = []

    def add(axiom: str, involved: tuple[str, ...], detail: str) -> bool:
        out.append(MetricViolation(axiom, involved, detail))
        return len(out) >= cap

    for i in np.flatnonzero((ins <= 0) | (dele <= 0)):
        if add(
            "positivity",
            (syms[i],),
            f"insert={ins[i]:g} delete={dele[i]:g} (must be > 0)",
        ):
            return out
    for i, j in zip(*np.nonzero(sub < 0)):
        if add(
            "positivity",
            (syms[i], syms[j]),
            f"substitute={sub[i, j]:g} (must be >= 0)",
        ):
            return out
    for i in np.flatnonzero(np.abs(np.diag(sub)) > _EPS):
        if add("identity", (syms[i],), f"substitute(a, a)={sub[i, i]:g}"):
            return out
    for i, j in zip(*np.nonzero(np.abs(sub - sub.T) > _EPS)):
        if i < j and add(
            "symmetry",
            (syms[i], syms[j]),
            f"substitute(a, b)={sub[i, j]:g} != "
            f"substitute(b, a)={sub[j, i]:g}",
        ):
            return out
    for i in np.flatnonzero(np.abs(ins - dele) > _EPS):
        if add(
            "symmetry",
            (syms[i],),
            f"insert={ins[i]:g} != delete={dele[i]:g}",
        ):
            return out
    # substitute(a, b) <= min_k substitute(a, k) + substitute(k, b):
    # one min-plus "square" of the substitution matrix.
    through = np.min(sub[:, :, None] + sub[None, :, :], axis=1)
    for i, j in zip(*np.nonzero(sub > through + _EPS)):
        k = int(np.argmin(sub[i] + sub[:, j]))
        if add(
            "triangle",
            (syms[i], syms[j], syms[k]),
            f"substitute(a, b)={sub[i, j]:g} > "
            f"substitute(a, k) + substitute(k, b)={through[i, j]:g}",
        ):
            return out
    for i, j in zip(*np.nonzero(sub > dele[:, None] + ins[None, :] + _EPS)):
        if add(
            "triangle",
            (syms[i], syms[j]),
            f"substitute(a, b)={sub[i, j]:g} > "
            f"delete(a) + insert(b)={dele[i] + ins[j]:g}",
        ):
            return out
    for i, j in zip(*np.nonzero(dele[:, None] > sub + dele[None, :] + _EPS)):
        if add(
            "triangle",
            (syms[i], syms[j]),
            f"delete(a)={dele[i]:g} > substitute(a, b) + "
            f"delete(b)={sub[i, j] + dele[j]:g}",
        ):
            return out
    return out


# ------------------------------------------------------ pure-python path


def _check_pure(
    costs: CostModel, syms: tuple[str, ...], cap: int
) -> list[MetricViolation]:
    out: list[MetricViolation] = []
    sub = {
        (a, b): costs.substitute(a, b) for a in syms for b in syms
    }
    ins = {a: costs.insert(a) for a in syms}
    dele = {a: costs.delete(a) for a in syms}

    def add(axiom: str, involved: tuple[str, ...], detail: str) -> bool:
        out.append(MetricViolation(axiom, involved, detail))
        return len(out) >= cap

    for a in syms:
        if ins[a] <= 0 or dele[a] <= 0:
            if add(
                "positivity",
                (a,),
                f"insert={ins[a]:g} delete={dele[a]:g} (must be > 0)",
            ):
                return out
        if abs(sub[a, a]) > _EPS:
            if add("identity", (a,), f"substitute(a, a)={sub[a, a]:g}"):
                return out
        if abs(ins[a] - dele[a]) > _EPS:
            if add(
                "symmetry",
                (a,),
                f"insert={ins[a]:g} != delete={dele[a]:g}",
            ):
                return out
    for a in syms:
        for b in syms:
            if sub[a, b] < 0:
                if add(
                    "positivity",
                    (a, b),
                    f"substitute={sub[a, b]:g} (must be >= 0)",
                ):
                    return out
            if a < b and abs(sub[a, b] - sub[b, a]) > _EPS:
                if add(
                    "symmetry",
                    (a, b),
                    f"substitute(a, b)={sub[a, b]:g} != "
                    f"substitute(b, a)={sub[b, a]:g}",
                ):
                    return out
            if sub[a, b] > dele[a] + ins[b] + _EPS:
                if add(
                    "triangle",
                    (a, b),
                    f"substitute(a, b)={sub[a, b]:g} > delete(a) + "
                    f"insert(b)={dele[a] + ins[b]:g}",
                ):
                    return out
            if dele[a] > sub[a, b] + dele[b] + _EPS:
                if add(
                    "triangle",
                    (a, b),
                    f"delete(a)={dele[a]:g} > substitute(a, b) + "
                    f"delete(b)={sub[a, b] + dele[b]:g}",
                ):
                    return out
    for a in syms:
        for b in syms:
            bound = sub[a, b] + _EPS
            for k in syms:
                if sub[a, k] + sub[k, b] < bound - _EPS * 2:
                    if add(
                        "triangle",
                        (a, b, k),
                        f"substitute(a, b)={sub[a, b]:g} > "
                        f"substitute(a, k) + substitute(k, b)="
                        f"{sub[a, k] + sub[k, b]:g}",
                    ):
                        return out
                    break
    return out
