"""Dynamic-programming edit distance (paper Figure 8).

Two entry points:

* :func:`edit_distance` — the full O(|L|·|R|) dynamic program, a direct
  transcription of the ``editdistance`` routine in paper Figure 8 with
  pluggable ``InsCost``/``DelCost``/``SubCost`` (a :class:`CostModel`).
  This is what the paper's PL/SQL UDF computes, and what the *naive UDF*
  benchmark strategy deliberately uses.

* :func:`edit_distance_within` — a thresholded variant that only fills the
  diagonal band that can stay within the cost budget and abandons the
  computation as soon as every cell of a row exceeds it (Ukkonen's
  cut-off).  On top of the static band the kernel keeps an *adaptive
  window*: the column range of the previous row whose cells were still
  within budget.  Cells outside that window are provably over budget
  (every DP predecessor is, and costs are non-negative), so each row
  only fills the intersection of the static band with the window grown
  by one column, plus the pure-insertion extension to its right.  The
  window shrinks as mismatches accumulate and the scan aborts when it
  empties.  Results are identical whenever the true distance is within
  the budget; the function returns ``None`` instead of the (possibly
  huge) exact distance otherwise.  The accelerated strategies use this.

Both accept any sequences of hashable tokens; in this library they are
phoneme-symbol tuples from :func:`repro.phonetics.parse.parse_ipa`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro import deadline, obs
from repro.errors import DeadlineExceededError
from repro.matching.costs import CostModel, UNIT_COST

_INF = float("inf")


def _deadline_cancel(cells: int) -> DeadlineExceededError:
    """Account a cooperative DP cancellation and build its error."""
    obs.incr("matching.dp.cells", cells)
    obs.incr("matching.dp.deadline_cancels")
    return DeadlineExceededError(
        "request deadline exceeded during edit-distance matching"
    )


def edit_distance(
    left: Sequence[str],
    right: Sequence[str],
    costs: CostModel = UNIT_COST,
) -> float:
    """Exact edit distance between two token sequences.

    >>> edit_distance("kitten", "sitting")
    3.0
    """
    len_l, len_r = len(left), len(right)
    obs.incr("matching.dp.calls")
    if len_l == 0:
        return float(sum(costs.insert(t) for t in right))
    if len_r == 0:
        return float(sum(costs.delete(t) for t in left))
    obs.incr("matching.dp.cells", len_l * len_r)
    deadline_at = deadline.current()

    # One row at a time; prev[j] is DistMatrix[i-1, j] of Figure 8.
    prev = [0.0] * (len_r + 1)
    for j in range(1, len_r + 1):
        prev[j] = prev[j - 1] + costs.insert(right[j - 1])
    curr = [0.0] * (len_r + 1)
    for i in range(1, len_l + 1):
        # Cooperative cancellation: with an armed deadline, one clock
        # read per DP row; without, a single None check per call.
        if deadline_at is not None and time.monotonic() > deadline_at:
            raise _deadline_cancel(0)
        tok_l = left[i - 1]
        del_cost = costs.delete(tok_l)
        curr[0] = prev[0] + del_cost
        for j in range(1, len_r + 1):
            tok_r = right[j - 1]
            best = prev[j] + del_cost  # delete from left
            diag = prev[j - 1] + costs.substitute(tok_l, tok_r)
            if diag < best:
                best = diag
            ins = curr[j - 1] + costs.insert(tok_r)
            if ins < best:
                best = ins
            curr[j] = best
        prev, curr = curr, prev
    return prev[len_r]


def edit_distance_within(
    left: Sequence[str],
    right: Sequence[str],
    budget: float,
    costs: CostModel = UNIT_COST,
) -> float | None:
    """Edit distance if it does not exceed ``budget``, else ``None``.

    Only cells within the diagonal band that a budget-respecting edit
    script can reach are evaluated: every step off the diagonal is an
    insertion or deletion costing at least ``costs.min_indel_cost()``, so
    a cell ``(i, j)`` with ``|i - j| * min_indel > budget`` is
    unreachable.  Within that band an adaptive window tracks the columns
    of the previous row still within budget — a cell all of whose DP
    predecessors exceed the budget exceeds it too (costs are
    non-negative), and no cell over budget can lie on the optimal path
    of a within-budget result, so skipping those cells never changes the
    answer.  The scan aborts early once the window empties.
    """
    if budget < 0:
        return None
    len_l, len_r = len(left), len(right)
    obs.incr("matching.dp.calls")
    min_indel = costs.min_indel_cost()
    # Length filter: |len_l - len_r| insertions/deletions are unavoidable.
    if abs(len_l - len_r) * min_indel > budget:
        return None
    if len_l == 0:
        total = float(sum(costs.insert(t) for t in right))
        return total if total <= budget else None
    if len_r == 0:
        total = float(sum(costs.delete(t) for t in left))
        return total if total <= budget else None

    band = int(budget / min_indel)  # max off-diagonal drift within budget
    cells = 0  # banded DP cells actually filled (observability)
    deadline_at = deadline.current()
    prev = [_INF] * (len_r + 1)
    limit = min(len_r, band)
    prev[0] = 0.0
    for j in range(1, limit + 1):
        prev[j] = prev[j - 1] + costs.insert(right[j - 1])
    # Adaptive window [alo, ahi]: the previous row's within-budget column
    # range.  Row 0 is a non-decreasing prefix sum, so a suffix trim finds
    # it (prev[0] == 0.0 <= budget keeps the scan in bounds).
    alo = 0
    ahi = limit
    while prev[ahi] > budget:
        ahi -= 1
    curr = [_INF] * (len_r + 1)
    last = len_r  # rightmost column written in the most recent row
    for i in range(1, len_l + 1):
        # Cooperative cancellation (see edit_distance): per-row check
        # only while a deadline is armed by the serving layer.
        if deadline_at is not None and time.monotonic() > deadline_at:
            raise _deadline_cancel(cells)
        tok_l = left[i - 1]
        del_cost = costs.delete(tok_l)
        # Cells reachable from the previous row: static band intersected
        # with the window grown one column right (diagonal step).
        lo = max(1, i - band, alo)
        hi = min(len_r, i + band, ahi + 1)
        if lo > hi:
            obs.incr("matching.dp.cells", cells)
            obs.incr("matching.dp.early_aborts")
            return None
        # Left boundary: the deletion-only column 0 participates only
        # while the previous row's column 0 is itself within budget.
        if lo == 1 and alo == 0:
            curr[0] = prev[0] + del_cost
        else:
            curr[lo - 1] = _INF
        for j in range(lo, hi + 1):
            tok_r = right[j - 1]
            best = prev[j] + del_cost
            diag = prev[j - 1] + costs.substitute(tok_l, tok_r)
            if diag < best:
                best = diag
            ins = curr[j - 1] + costs.insert(tok_r)
            if ins < best:
                best = ins
            curr[j] = best
        cells += hi - lo + 1
        # Pure-insertion extension: right of the window, cells depend
        # only on their left neighbour; extend while within budget (the
        # static band caps how far an insertion run can drift).
        ext = min(len_r, i + band)
        j = hi + 1
        while j <= ext and curr[j - 1] <= budget:
            curr[j] = curr[j - 1] + costs.insert(right[j - 1])
            cells += 1
            j += 1
        last = j - 1
        # Next window: first/last within-budget cells of this row.
        alo = -1
        for j in range(lo - 1, last + 1):
            if curr[j] <= budget:
                alo = j
                break
        if alo == -1:
            obs.incr("matching.dp.cells", cells)
            obs.incr("matching.dp.early_aborts")
            return None
        ahi = last
        while curr[ahi] > budget:
            ahi -= 1
        # Seal the flanks so the next row never reads a stale cell from
        # two rows back (its reads stay within [lo-2, last+1]).
        if lo >= 2:
            curr[lo - 2] = _INF
        if last < len_r:
            curr[last + 1] = _INF
        prev, curr = curr, prev
    obs.incr("matching.dp.cells", cells)
    if len_r > last:
        return None  # final column never came within reach
    result = prev[len_r]
    return result if result <= budget else None


def distance_matrix(
    left: Sequence[str],
    right: Sequence[str],
    costs: CostModel = UNIT_COST,
) -> list[list[float]]:
    """The full DP matrix of Figure 8, for inspection and testing.

    ``matrix[i][j]`` is the cost of editing ``left[:i]`` into
    ``right[:j]``; ``matrix[len(left)][len(right)]`` equals
    :func:`edit_distance`.
    """
    len_l, len_r = len(left), len(right)
    matrix = [[0.0] * (len_r + 1) for _ in range(len_l + 1)]
    for i in range(1, len_l + 1):
        matrix[i][0] = matrix[i - 1][0] + costs.delete(left[i - 1])
    for j in range(1, len_r + 1):
        matrix[0][j] = matrix[0][j - 1] + costs.insert(right[j - 1])
    for i in range(1, len_l + 1):
        tok_l = left[i - 1]
        for j in range(1, len_r + 1):
            tok_r = right[j - 1]
            matrix[i][j] = min(
                matrix[i - 1][j] + costs.delete(tok_l),
                matrix[i - 1][j - 1] + costs.substitute(tok_l, tok_r),
                matrix[i][j - 1] + costs.insert(tok_r),
            )
    return matrix
