"""``LexEqualMatcher`` — the configured, cached matching façade.

Applications construct one matcher per configuration and reuse it: the
matcher caches text → phoneme transformations (via the TTP registry) and
exposes phoneme-level entry points the database strategies build on
(budgets, banded distances, grouped keys).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MatchConfig
from repro.core.operator import MatchOutcome, operand_language
from repro.errors import TTPError
from repro.matching.costs import CostModel
from repro.matching.editdist import edit_distance, edit_distance_within
from repro.minidb.values import LangText
from repro.phonetics.keys import grouped_key
from repro.phonetics.parse import PhonemeString, format_phonemes, parse_ipa
from repro.ttp.registry import TTPRegistry, default_registry


@dataclass(frozen=True)
class MatchExplanation:
    """Full accounting of one LexEQUAL comparison (for debugging/UX)."""

    left: str
    right: str
    left_language: str | None
    right_language: str | None
    left_ipa: str
    right_ipa: str
    distance: float | None
    budget: float
    outcome: MatchOutcome

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.left} [{self.left_ipa}] vs {self.right} "
            f"[{self.right_ipa}]: distance={self.distance} "
            f"budget={self.budget:.3f} -> {self.outcome.value}"
        )


class LexEqualMatcher:
    """LexEQUAL with a fixed configuration and shared caches."""

    def __init__(
        self,
        config: MatchConfig | None = None,
        registry: TTPRegistry | None = None,
    ):
        self.config = config or MatchConfig()
        self.registry = registry or default_registry()
        self._costs: CostModel = self.config.cost_model()

    @property
    def costs(self) -> CostModel:
        return self._costs

    # ------------------------------------------------------------ phonemes

    def language_of(self, value: str | LangText) -> str | None:
        """Operand language (tag or script detection); None if unknown."""
        return operand_language(value, self.registry)

    def phonemes(self, value: str | LangText) -> PhonemeString:
        """Phoneme string of a text operand.

        Raises :class:`~repro.errors.TTPError` when the language cannot
        be determined or has no converter.
        """
        language = self.language_of(value)
        if language is None:
            raise TTPError(f"cannot determine language of {value!r}")
        return self.registry.transform(str(value), language)

    def ipa(self, value: str | LangText) -> str:
        """Flat IPA transcription of an operand."""
        return format_phonemes(self.phonemes(value))

    def grouped_key_of(self, value: str | LangText) -> int:
        """Grouped phoneme string identifier (phonetic index key)."""
        return grouped_key(
            self.phonemes(value),
            self.config.clustering,
            mode=self.config.key_mode,
        )

    # ------------------------------------------------------------ matching

    def budget(self, len_left: int, len_right: int) -> float:
        """Cost budget ``e * min(|T_l|, |T_r|)`` (Figure 8, line 4-5)."""
        return self.config.budget(len_left, len_right)

    def phoneme_distance(
        self, left: PhonemeString, right: PhonemeString
    ) -> float:
        """Exact clustered edit distance between phoneme strings."""
        return edit_distance(left, right, self._costs)

    def phonemes_match(
        self, left: PhonemeString, right: PhonemeString
    ) -> bool:
        """Threshold test on phoneme strings, using the banded DP."""
        budget = self.budget(len(left), len(right))
        return (
            edit_distance_within(left, right, budget, self._costs)
            is not None
        )

    def ipa_match(self, left_ipa: str, right_ipa: str) -> bool:
        """Threshold test on two stored IPA strings (the UDF body)."""
        return self.phonemes_match(parse_ipa(left_ipa), parse_ipa(right_ipa))

    def match(
        self, left: str | LangText, right: str | LangText
    ) -> MatchOutcome:
        """Three-valued LexEQUAL on text operands."""
        lang_l = self.language_of(left)
        lang_r = self.language_of(right)
        if (
            lang_l is None
            or lang_r is None
            or not self.registry.supports(lang_l)
            or not self.registry.supports(lang_r)
        ):
            return MatchOutcome.NORESOURCE
        phonemes_l = self.registry.transform(str(left), lang_l)
        phonemes_r = self.registry.transform(str(right), lang_r)
        if self.phonemes_match(phonemes_l, phonemes_r):
            return MatchOutcome.TRUE
        return MatchOutcome.FALSE

    def matches(self, left: str | LangText, right: str | LangText) -> bool:
        """Boolean LexEQUAL (NORESOURCE counts as no match)."""
        return self.match(left, right) is MatchOutcome.TRUE

    def explain(
        self, left: str | LangText, right: str | LangText
    ) -> MatchExplanation:
        """Detailed accounting of one comparison."""
        lang_l = self.language_of(left)
        lang_r = self.language_of(right)
        supported = (
            lang_l is not None
            and lang_r is not None
            and self.registry.supports(lang_l)
            and self.registry.supports(lang_r)
        )
        if not supported:
            return MatchExplanation(
                left=str(left),
                right=str(right),
                left_language=lang_l,
                right_language=lang_r,
                left_ipa="",
                right_ipa="",
                distance=None,
                budget=0.0,
                outcome=MatchOutcome.NORESOURCE,
            )
        phonemes_l = self.registry.transform(str(left), lang_l)
        phonemes_r = self.registry.transform(str(right), lang_r)
        distance = self.phoneme_distance(phonemes_l, phonemes_r)
        budget = self.budget(len(phonemes_l), len(phonemes_r))
        outcome = (
            MatchOutcome.TRUE if distance <= budget else MatchOutcome.FALSE
        )
        return MatchExplanation(
            left=str(left),
            right=str(right),
            left_language=lang_l,
            right_language=lang_r,
            left_ipa=format_phonemes(phonemes_l),
            right_ipa=format_phonemes(phonemes_r),
            distance=distance,
            budget=budget,
            outcome=outcome,
        )

    # ------------------------------------------------------------- search

    def search(
        self,
        query: str | LangText,
        candidates,
        languages: tuple[str, ...] = (),
    ) -> list:
        """All candidates that LexEQUAL-match the query.

        ``candidates`` is any iterable of ``str | LangText``; the result
        preserves input order.  ``languages`` restricts target languages
        as the query's ``INLANGUAGES`` clause does.
        """
        wanted = {lang.lower() for lang in languages} if languages else None
        query_phonemes = self.phonemes(query)
        results = []
        for candidate in candidates:
            lang = self.language_of(candidate)
            if lang is None or not self.registry.supports(lang):
                continue
            if wanted is not None and lang not in wanted:
                continue
            cand_phonemes = self.registry.transform(str(candidate), lang)
            if self.phonemes_match(query_phonemes, cand_phonemes):
                results.append(candidate)
        return results
