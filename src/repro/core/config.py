"""Matching configuration: the tunable parameters of Section 3.3.

Two parameters drive match quality (paper Figures 11/12):

* ``threshold`` — the *user match threshold* ``e`` in ``[0, 1]``: the
  allowed edit distance as a fraction of the shorter phoneme string
  (0 = perfect matches only);
* ``intra_cluster_cost`` — the *intra-cluster substitution cost* in
  ``[0, 1]``: 1 reproduces plain Levenshtein, 0 reproduces Soundex-style
  free substitution within a phoneme cluster.

The paper's recommended operating point (the knee of Figure 12) is a
threshold of 0.25–0.35 with an intra-cluster cost of 0.25–0.5; the
defaults sit in that region.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import MatchConfigError
from repro.matching.costs import ClusteredCost, CostModel, LevenshteinCost
from repro.phonetics.clusters import PhonemeClustering, default_clustering


@dataclass(frozen=True)
class MatchConfig:
    """Immutable LexEQUAL parameter bundle."""

    threshold: float = 0.25
    intra_cluster_cost: float = 0.25
    clustering: PhonemeClustering = field(default_factory=default_clustering)
    #: Insert/delete cost for weak segments (laryngeals, vowels); 1.0
    #: restores the flat classical cost.  See ClusteredCost.
    weak_indel_cost: float = 0.5
    #: Substitution cost between vowels of different clusters; 1.0
    #: restores the flat classical cost.  See ClusteredCost.
    vowel_cross_cost: float = 0.5
    #: q-gram length for the q-gram filter strategy.
    q: int = 2
    #: Filter domain: "cluster" applies the q-gram filters to
    #: cluster-mapped strings (sound for any intra-cluster cost),
    #: "phoneme" applies them to raw phoneme strings (classical form).
    qgram_domain: str = "cluster"
    #: Grouped-key construction for the phonetic index: "skeleton"
    #: (Soundex-style consonant skeleton, low false-dismissal rate) or
    #: "full" (every phoneme, strictest).  See phonetics.keys.grouped_key.
    key_mode: str = "skeleton"

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise MatchConfigError(
                f"threshold {self.threshold} not in [0, 1]"
            )
        if not 0.0 <= self.intra_cluster_cost <= 1.0:
            raise MatchConfigError(
                f"intra-cluster cost {self.intra_cluster_cost} not in [0, 1]"
            )
        if not 0.0 < self.weak_indel_cost <= 1.0:
            raise MatchConfigError(
                f"weak indel cost {self.weak_indel_cost} not in (0, 1]"
            )
        if not 0.0 < self.vowel_cross_cost <= 1.0:
            raise MatchConfigError(
                f"vowel cross cost {self.vowel_cross_cost} not in (0, 1]"
            )
        if self.q < 1:
            raise MatchConfigError(f"q must be >= 1, got {self.q}")
        if self.qgram_domain not in ("cluster", "phoneme"):
            raise MatchConfigError(
                f"qgram_domain must be 'cluster' or 'phoneme', "
                f"got {self.qgram_domain!r}"
            )
        if self.key_mode not in ("skeleton", "full"):
            raise MatchConfigError(
                f"key_mode must be 'skeleton' or 'full', "
                f"got {self.key_mode!r}"
            )

    def cost_model(self) -> CostModel:
        """The edit-distance cost model induced by this configuration."""
        if (
            self.intra_cluster_cost >= 1.0
            and self.weak_indel_cost >= 1.0
            and self.vowel_cross_cost >= 1.0
        ):
            return LevenshteinCost()
        return ClusteredCost(
            self.intra_cluster_cost,
            self.clustering,
            weak_indel_cost=self.weak_indel_cost,
            vowel_cross_cost=self.vowel_cross_cost,
        )

    def with_threshold(self, threshold: float) -> MatchConfig:
        """Copy with a different user match threshold."""
        return replace(self, threshold=threshold)

    def with_intra_cluster_cost(self, cost: float) -> MatchConfig:
        """Copy with a different intra-cluster substitution cost."""
        return replace(self, intra_cluster_cost=cost)

    def budget(self, len_left: int, len_right: int) -> float:
        """Edit-cost budget for a pair: ``e * min(|T_l|, |T_r|)``."""
        return self.threshold * min(len_left, len_right)

    def max_operations(self, query_len: int) -> int:
        """Upper bound on edit *operations* for any match with a query.

        Used by the filter strategies to derive the classical ``k``.  The
        budget against any candidate is at most ``threshold * query_len``
        (the minimum of the two lengths never exceeds the query length),
        and each operation costs at least ``min_op_cost`` — except
        intra-cluster substitutions under the cluster q-gram domain,
        where they are identity and do not count.
        """
        budget = self.threshold * query_len
        if self.qgram_domain == "cluster":
            # Intra-cluster substitutions vanish in cluster space; every
            # operation that remains costs at least min_mapped_op_cost.
            return int(budget / self.cost_model().min_mapped_op_cost())
        if self.intra_cluster_cost == 0.0:
            raise MatchConfigError(
                "phoneme-domain q-gram filters are unsound with a zero "
                "intra-cluster cost (free substitutions allow unbounded "
                "operations); use qgram_domain='cluster'"
            )
        return int(budget / self.cost_model().min_op_cost())
