"""Execution strategies for LexEQUAL selections and joins.

The paper evaluates three ways to run a multiscript query over a names
table (Section 5):

* :class:`NaiveUdfStrategy` — Table 1's baseline: a full scan (or a full
  nested-loop self-join) invoking the expensive Figure 8 dynamic program
  on every row/pair;
* :class:`QGramStrategy` — Table 2: the auxiliary positional q-gram
  table plus the length/count/position filters of Figure 14, with the
  UDF invoked only on surviving candidates;
* :class:`PhoneticIndexStrategy` — Table 3: a B+ tree on the *grouped
  phoneme string identifier* (Figure 15); an index probe yields the
  candidates, at the price of false dismissals.

All three run against a :class:`NameCatalog`, which owns the minidb
tables (``names`` + ``names_qgrams``), their B+ tree indexes, and the
per-row phoneme caches.  Strategies record how much work they did in
:attr:`Strategy.last_stats`, which the benchmark harness reports.

Soundness note (DESIGN.md §3): with a fractional intra-cluster cost the
classical filters are applied in *cluster space* by default — q-grams are
taken over cluster-identifier strings, where intra-cluster substitutions
are identities, every remaining operation costs ≥ 1, and the classical
bounds hold verbatim.  ``qgram_domain="phoneme"`` switches to raw phoneme
q-grams with ``k`` scaled by the minimum operation cost (sound for any
intra-cluster cost > 0).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro import obs
from repro.core.config import MatchConfig
from repro.core.matcher import LexEqualMatcher
from repro.errors import DatasetError
from repro.matching.editdist import edit_distance, edit_distance_within
from repro.matching.qgrams import (
    positional_qgrams,
    publish_filter_counts as _publish_filter_counts,
)
from repro.minidb.catalog import Database
from repro.minidb.schema import Column
from repro.minidb.values import SqlType
from repro.phonetics.parse import PhonemeString, format_phonemes, parse_ipa

#: Separator used to encode a q-gram token tuple as a TEXT value.  A
#: non-empty separator is required: cluster identifiers are multi-digit,
#: so bare concatenation would conflate ("1", "12") with ("11", "2").
_GRAM_SEP = "\x1f"


@dataclass(frozen=True)
class NameRecord:
    """One stored name."""

    id: int
    name: str
    language: str
    tag: int | None
    ipa: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.language})"


@dataclass
class StrategyStats:
    """Work accounting for one strategy invocation."""

    rows_considered: int = 0
    candidates_after_filters: int = 0
    udf_calls: int = 0
    results: int = 0


class NameCatalog:
    """A multiscript names table with phonetic auxiliary structures.

    Owns two minidb tables:

    * ``<name>``: ``id, name, language, tag, pname, plen, gpsid`` —
      the names with their IPA transcription, phoneme count and grouped
      phoneme string identifier;
    * ``<name>_qgrams``: ``id, pos, gram`` — the positional q-grams of
      each name's (cluster-mapped) phoneme string, as in Figure 14.

    and three B+ tree indexes (``id``, ``gpsid``, ``gram``).  Insertion
    keeps everything consistent; :meth:`add_many` bulk-loads.
    """

    def __init__(
        self,
        matcher: LexEqualMatcher | None = None,
        db: Database | None = None,
        table_name: str = "names",
    ):
        self.matcher = matcher or LexEqualMatcher()
        self.config: MatchConfig = self.matcher.config
        self.db = db or Database()
        self.table_name = table_name
        self.qgram_table_name = f"{table_name}_qgrams"
        self._next_id = 0
        #: id -> phoneme tuple (parsed once at load).
        self._phonemes: dict[int, PhonemeString] = {}
        #: id -> filter-domain token tuple.
        self._tokens: dict[int, tuple[str, ...]] = {}
        self._create_tables()

    def _create_tables(self) -> None:
        self.db.create_table(
            self.table_name,
            [
                Column("id", SqlType.INTEGER, nullable=False),
                Column("name", SqlType.TEXT, nullable=False),
                Column("language", SqlType.TEXT, nullable=False),
                Column("tag", SqlType.INTEGER),
                Column("pname", SqlType.TEXT, nullable=False),
                Column("plen", SqlType.INTEGER, nullable=False),
                Column("gpsid", SqlType.INTEGER, nullable=False),
            ],
        )
        self.db.create_table(
            self.qgram_table_name,
            [
                Column("id", SqlType.INTEGER, nullable=False),
                Column("pos", SqlType.INTEGER, nullable=False),
                Column("gram", SqlType.TEXT, nullable=False),
            ],
        )
        self.db.create_index(
            f"idx_{self.table_name}_id", self.table_name, "id"
        )
        self.db.create_index(
            f"idx_{self.table_name}_gpsid", self.table_name, "gpsid"
        )
        self.db.create_index(
            f"idx_{self.qgram_table_name}_gram",
            self.qgram_table_name,
            "gram",
        )

    # -------------------------------------------------------------- load

    def tokens_of_phonemes(
        self, phonemes: PhonemeString
    ) -> tuple[str, ...]:
        """Project a phoneme string into the configured filter domain."""
        if self.config.qgram_domain == "cluster":
            clustering = self.config.clustering
            return tuple(str(c) for c in clustering.map_string(phonemes))
        return tuple(phonemes)

    def add(
        self,
        name: str,
        language: str,
        tag: int | None = None,
        *,
        ipa: str | None = None,
    ) -> int:
        """Add one name; returns its id.

        ``ipa`` overrides the TTP conversion (used when loading datasets
        with precomputed transcriptions).
        """
        if ipa is None:
            phonemes = self.matcher.registry.transform(name, language)
        else:
            phonemes = parse_ipa(ipa)
        if not phonemes:
            raise DatasetError(
                f"name {name!r} ({language}) has an empty transcription"
            )
        record_id = self._next_id
        self._next_id += 1
        gpsid = _grouped_key(phonemes, self.config)
        self.db.insert(
            self.table_name,
            (
                record_id,
                name,
                language.lower(),
                tag,
                format_phonemes(phonemes),
                len(phonemes),
                gpsid,
            ),
        )
        tokens = self.tokens_of_phonemes(phonemes)
        self._phonemes[record_id] = phonemes
        self._tokens[record_id] = tokens
        for gram in positional_qgrams(tokens, self.config.q):
            self.db.insert(
                self.qgram_table_name,
                (record_id, gram.pos, _GRAM_SEP.join(gram.gram)),
            )
        return record_id

    def add_many(self, entries) -> list[int]:
        """Bulk add of ``(name, language[, tag])`` tuples."""
        ids = []
        for entry in entries:
            if len(entry) == 2:
                name, language = entry
                tag = None
            else:
                name, language, tag = entry
            ids.append(self.add(name, language, tag))
        return ids

    # ------------------------------------------------------------ access

    def __len__(self) -> int:
        return len(self.db.table(self.table_name))

    def record(self, record_id: int) -> NameRecord:
        """Fetch one record by id (via the id index)."""
        tree = self.db.index(f"idx_{self.table_name}_id").tree
        rowids = tree.search(record_id)
        if not rowids:
            raise DatasetError(f"no name with id {record_id}")
        row = self.db.table(self.table_name).fetch(rowids[0])
        return self._to_record(row)

    def records(self) -> list[NameRecord]:
        """All records in id order."""
        return [
            self._to_record(row)
            for row in self.db.table(self.table_name).rows()
        ]

    @staticmethod
    def _to_record(row: tuple) -> NameRecord:
        return NameRecord(
            id=row[0], name=row[1], language=row[2], tag=row[3], ipa=row[4]
        )

    def phonemes_of(self, record_id: int) -> PhonemeString:
        return self._phonemes[record_id]

    def tokens_of(self, record_id: int) -> tuple[str, ...]:
        return self._tokens[record_id]


def _grouped_key(phonemes: PhonemeString, config: MatchConfig) -> int:
    from repro.phonetics.keys import grouped_key

    return grouped_key(phonemes, config.clustering, mode=config.key_mode)


class Strategy(abc.ABC):
    """Common interface of the three execution strategies."""

    name: str = "strategy"

    def __init__(self, catalog: NameCatalog):
        self.catalog = catalog
        self.matcher = catalog.matcher
        self.config = catalog.config
        self.last_stats = StrategyStats()

    @abc.abstractmethod
    def select(
        self,
        query: str,
        language: str = "english",
        languages: tuple[str, ...] = (),
    ) -> list[NameRecord]:
        """All stored names that LexEQUAL-match ``query``."""

    @abc.abstractmethod
    def join(
        self, *, cross_language_only: bool = True
    ) -> list[tuple[NameRecord, NameRecord]]:
        """Self equi-join: pairs of matching names (id_left < id_right).

        ``cross_language_only`` keeps only pairs in different languages,
        as the paper's join query does (``B1.Language <> B2.Language``).
        """

    # Shared helpers -----------------------------------------------------

    def _finish(self, stats: StrategyStats) -> None:
        """Record ``stats`` and publish them to the metrics registry.

        Counters are cumulative across invocations under
        ``strategy.<name>.*``; per-invocation numbers stay available in
        :attr:`last_stats`.
        """
        self.last_stats = stats
        if obs.is_enabled():
            prefix = f"strategy.{self.name}"
            obs.incr(f"{prefix}.invocations")
            obs.incr(f"{prefix}.rows_considered", stats.rows_considered)
            obs.incr(
                f"{prefix}.candidates_after_filters",
                stats.candidates_after_filters,
            )
            obs.incr(f"{prefix}.udf_calls", stats.udf_calls)
            obs.incr(f"{prefix}.results", stats.results)

    def _query_phonemes(self, query: str, language: str) -> PhonemeString:
        return self.matcher.registry.transform(query, language)

    def _language_ok(
        self, record_language: str, languages: tuple[str, ...]
    ) -> bool:
        return not languages or record_language in {
            lang.lower() for lang in languages
        }


class NaiveUdfStrategy(Strategy):
    """Full scan / nested-loop join invoking the full DP on every row.

    This is the paper's unoptimized UDF deployment (Table 1): the
    "orders of magnitude slower" baseline.  The per-row work is the full
    O(n·m) dynamic program of Figure 8 — deliberately *not* the banded
    variant, to mirror the PL/SQL implementation.
    """

    name = "naive-udf"

    def select(
        self,
        query: str,
        language: str = "english",
        languages: tuple[str, ...] = (),
    ) -> list[NameRecord]:
        stats = StrategyStats()
        query_phonemes = self._query_phonemes(query, language)
        costs = self.matcher.costs
        threshold = self.config.threshold
        results = []
        for row in self.catalog.db.table(self.catalog.table_name).rows():
            stats.rows_considered += 1
            if not self._language_ok(row[2], languages):
                continue
            phonemes = self.catalog.phonemes_of(row[0])
            stats.udf_calls += 1
            budget = threshold * min(len(query_phonemes), len(phonemes))
            if edit_distance(query_phonemes, phonemes, costs) <= budget:
                results.append(NameCatalog._to_record(row))
        stats.candidates_after_filters = stats.udf_calls
        stats.results = len(results)
        self._finish(stats)
        return results

    def join(
        self, *, cross_language_only: bool = True
    ) -> list[tuple[NameRecord, NameRecord]]:
        stats = StrategyStats()
        rows = list(self.catalog.db.table(self.catalog.table_name).rows())
        costs = self.matcher.costs
        threshold = self.config.threshold
        results = []
        for i, row_a in enumerate(rows):
            phonemes_a = self.catalog.phonemes_of(row_a[0])
            for row_b in rows[i + 1 :]:
                stats.rows_considered += 1
                if cross_language_only and row_a[2] == row_b[2]:
                    continue
                phonemes_b = self.catalog.phonemes_of(row_b[0])
                stats.udf_calls += 1
                budget = threshold * min(len(phonemes_a), len(phonemes_b))
                if edit_distance(phonemes_a, phonemes_b, costs) <= budget:
                    results.append(
                        (
                            NameCatalog._to_record(row_a),
                            NameCatalog._to_record(row_b),
                        )
                    )
        stats.candidates_after_filters = stats.udf_calls
        stats.results = len(results)
        self._finish(stats)
        return results


class QGramStrategy(Strategy):
    """Length + count + position filters over the q-gram table (Fig. 14).

    Selection probes the B+ tree on ``names_qgrams.gram`` with the
    query's q-grams, aggregates matching-pair counts per candidate under
    the position constraint, applies the length and count filters, and
    only then calls the (banded) UDF.  The join does the same via a
    self-group of the q-gram table.
    """

    name = "qgram"

    def select(
        self,
        query: str,
        language: str = "english",
        languages: tuple[str, ...] = (),
    ) -> list[NameRecord]:
        stats = StrategyStats()
        catalog = self.catalog
        table = catalog.db.table(catalog.table_name)
        stats.rows_considered = len(table)
        query_phonemes = self._query_phonemes(query, language)
        query_tokens = catalog.tokens_of_phonemes(query_phonemes)
        k = self.config.max_operations(len(query_tokens))
        q = self.config.q
        grams = positional_qgrams(query_tokens, q)

        # Probe the gram index; count position-compatible pairs per id.
        gram_tree = catalog.db.index(
            f"idx_{catalog.qgram_table_name}_gram"
        ).tree
        qgram_heap = catalog.db.table(catalog.qgram_table_name)
        pair_counts: dict[int, int] = {}
        pos_pass = pos_reject = 0  # published in one batch below
        probes = probe_misses = 0  # ditto (btree.search is uninstrumented)
        for gram in grams:
            encoded = _GRAM_SEP.join(gram.gram)
            rowids = gram_tree.search(encoded)
            probes += 1
            if not rowids:
                probe_misses += 1
            for rowid in rowids:
                rec_id, pos, _g = qgram_heap.fetch(rowid)
                if abs(pos - gram.pos) <= k:
                    pos_pass += 1
                    pair_counts[rec_id] = pair_counts.get(rec_id, 0) + 1
                else:
                    pos_reject += 1

        id_tree = catalog.db.index(f"idx_{catalog.table_name}_id").tree
        threshold = self.config.threshold
        costs = self.matcher.costs
        results = []
        qlen = len(query_tokens)
        len_pass = len_reject = cnt_pass = cnt_reject = 0
        for rec_id, count in pair_counts.items():
            row = table.fetch(id_tree.search(rec_id)[0])
            if not self._language_ok(row[2], languages):
                continue
            clen = row[5]
            # Length filter.
            if abs(qlen - clen) > k:
                len_reject += 1
                continue
            len_pass += 1
            # Count filter.
            if count < max(qlen, clen) - 1 - (k - 1) * q:
                cnt_reject += 1
                continue
            cnt_pass += 1
            stats.candidates_after_filters += 1
            phonemes = catalog.phonemes_of(rec_id)
            stats.udf_calls += 1
            budget = threshold * min(len(query_phonemes), len(phonemes))
            if (
                edit_distance_within(
                    query_phonemes, phonemes, budget, costs
                )
                is not None
            ):
                results.append(NameCatalog._to_record(row))
        _publish_filter_counts(
            pos_pass, pos_reject, len_pass, len_reject, cnt_pass, cnt_reject
        )
        # One id-index probe per surviving pair_counts entry, plus the
        # gram probes above.
        obs.incr("btree.probes", probes + len(pair_counts))
        if probe_misses:
            obs.incr("btree.probe_misses", probe_misses)
        results.sort(key=lambda r: r.id)
        stats.results = len(results)
        self._finish(stats)
        return results

    def join(
        self, *, cross_language_only: bool = True
    ) -> list[tuple[NameRecord, NameRecord]]:
        stats = StrategyStats()
        catalog = self.catalog
        table = catalog.db.table(catalog.table_name)
        rows_by_id = {row[0]: row for row in table.rows()}
        stats.rows_considered = len(rows_by_id) * (len(rows_by_id) - 1) // 2
        q = self.config.q
        threshold = self.config.threshold
        costs = self.matcher.costs

        # Group the q-gram table by gram (the hash join of Figure 14).
        buckets: dict[str, list[tuple[int, int]]] = {}
        for rec_id, pos, gram in catalog.db.table(
            catalog.qgram_table_name
        ).rows():
            buckets.setdefault(gram, []).append((rec_id, pos))

        pair_counts: dict[tuple[int, int], int] = {}
        lengths = {rid: row[5] for rid, row in rows_by_id.items()}
        pos_pass = pos_reject = 0  # published in one batch below
        for entries in buckets.values():
            if len(entries) < 2:
                continue
            for i, (id_a, pos_a) in enumerate(entries):
                len_a = lengths[id_a]
                for id_b, pos_b in entries[i + 1 :]:
                    if id_a == id_b:
                        continue
                    pair = (id_a, id_b) if id_a < id_b else (id_b, id_a)
                    k = self.config.max_operations(
                        min(len_a, lengths[id_b])
                    )
                    if abs(pos_a - pos_b) <= k:
                        pos_pass += 1
                        pair_counts[pair] = pair_counts.get(pair, 0) + 1
                    else:
                        pos_reject += 1

        results = []
        len_pass = len_reject = cnt_pass = cnt_reject = 0
        for (id_a, id_b), count in pair_counts.items():
            row_a, row_b = rows_by_id[id_a], rows_by_id[id_b]
            if cross_language_only and row_a[2] == row_b[2]:
                continue
            len_a, len_b = row_a[5], row_b[5]
            k = self.config.max_operations(min(len_a, len_b))
            if abs(len_a - len_b) > k:
                len_reject += 1
                continue
            len_pass += 1
            if count < max(len_a, len_b) - 1 - (k - 1) * q:
                cnt_reject += 1
                continue
            cnt_pass += 1
            stats.candidates_after_filters += 1
            phonemes_a = catalog.phonemes_of(id_a)
            phonemes_b = catalog.phonemes_of(id_b)
            stats.udf_calls += 1
            budget = threshold * min(len(phonemes_a), len(phonemes_b))
            if (
                edit_distance_within(phonemes_a, phonemes_b, budget, costs)
                is not None
            ):
                results.append(
                    (
                        NameCatalog._to_record(row_a),
                        NameCatalog._to_record(row_b),
                    )
                )
        _publish_filter_counts(
            pos_pass, pos_reject, len_pass, len_reject, cnt_pass, cnt_reject
        )
        results.sort(key=lambda pair: (pair[0].id, pair[1].id))
        stats.results = len(results)
        self._finish(stats)
        return results


class PhoneticIndexStrategy(Strategy):
    """B+ tree probe on the grouped phoneme string identifier (Fig. 15).

    The fastest strategy, with the paper's caveat: only candidates whose
    *every* phoneme falls in the same cluster as the query's (and whose
    length matches) are reachable, so cross-cluster near-matches are
    false-dismissed (measured at 4–5% in the paper, reproduced by
    ``benchmarks/bench_table3_phonetic_index.py``).
    """

    name = "phonetic-index"

    def select(
        self,
        query: str,
        language: str = "english",
        languages: tuple[str, ...] = (),
    ) -> list[NameRecord]:
        stats = StrategyStats()
        catalog = self.catalog
        table = catalog.db.table(catalog.table_name)
        stats.rows_considered = len(table)
        query_phonemes = self._query_phonemes(query, language)
        key = _grouped_key(query_phonemes, self.config)
        gpsid_tree = catalog.db.index(
            f"idx_{catalog.table_name}_gpsid"
        ).tree
        threshold = self.config.threshold
        costs = self.matcher.costs
        results = []
        bucket = gpsid_tree.search(key)
        obs.incr("btree.probes")
        if not bucket:
            obs.incr("btree.probe_misses")
        for rowid in bucket:
            row = table.fetch(rowid)
            if not self._language_ok(row[2], languages):
                continue
            stats.candidates_after_filters += 1
            phonemes = catalog.phonemes_of(row[0])
            stats.udf_calls += 1
            budget = threshold * min(len(query_phonemes), len(phonemes))
            if (
                edit_distance_within(
                    query_phonemes, phonemes, budget, costs
                )
                is not None
            ):
                results.append(NameCatalog._to_record(row))
        results.sort(key=lambda r: r.id)
        stats.results = len(results)
        self._finish(stats)
        return results

    def join(
        self, *, cross_language_only: bool = True
    ) -> list[tuple[NameRecord, NameRecord]]:
        stats = StrategyStats()
        catalog = self.catalog
        table = catalog.db.table(catalog.table_name)
        n = len(table)
        stats.rows_considered = n * (n - 1) // 2
        gpsid_tree = catalog.db.index(
            f"idx_{catalog.table_name}_gpsid"
        ).tree
        threshold = self.config.threshold
        costs = self.matcher.costs
        results = []
        for _key, bucket in gpsid_tree.items():
            if len(bucket) < 2:
                continue
            rows = sorted(
                (table.fetch(rowid) for rowid in bucket),
                key=lambda row: row[0],
            )
            for i, row_a in enumerate(rows):
                phonemes_a = catalog.phonemes_of(row_a[0])
                for row_b in rows[i + 1 :]:
                    if cross_language_only and row_a[2] == row_b[2]:
                        continue
                    stats.candidates_after_filters += 1
                    phonemes_b = catalog.phonemes_of(row_b[0])
                    stats.udf_calls += 1
                    budget = threshold * min(
                        len(phonemes_a), len(phonemes_b)
                    )
                    if (
                        edit_distance_within(
                            phonemes_a, phonemes_b, budget, costs
                        )
                        is not None
                    ):
                        results.append(
                            (
                                NameCatalog._to_record(row_a),
                                NameCatalog._to_record(row_b),
                            )
                        )
        results.sort(key=lambda pair: (pair[0].id, pair[1].id))
        stats.results = len(results)
        self._finish(stats)
        return results


class ExactStrategy(Strategy):
    """Native lexicographic equality — Table 1's ``= Operator`` rows.

    Shown only to calibrate how much slower approximate matching is; it
    cannot match across scripts at all (the paper's point).
    """

    name = "exact"

    def select(
        self,
        query: str,
        language: str = "english",
        languages: tuple[str, ...] = (),
    ) -> list[NameRecord]:
        stats = StrategyStats()
        results = []
        for row in self.catalog.db.table(self.catalog.table_name).rows():
            stats.rows_considered += 1
            if row[1] == query and self._language_ok(row[2], languages):
                results.append(NameCatalog._to_record(row))
        stats.results = len(results)
        self._finish(stats)
        return results

    def join(
        self, *, cross_language_only: bool = True
    ) -> list[tuple[NameRecord, NameRecord]]:
        stats = StrategyStats()
        by_name: dict[str, list[tuple]] = {}
        for row in self.catalog.db.table(self.catalog.table_name).rows():
            stats.rows_considered += 1
            by_name.setdefault(row[1], []).append(row)
        results = []
        for rows in by_name.values():
            if len(rows) < 2:
                continue
            rows.sort(key=lambda row: row[0])
            for i, row_a in enumerate(rows):
                for row_b in rows[i + 1 :]:
                    if cross_language_only and row_a[2] == row_b[2]:
                        continue
                    results.append(
                        (
                            NameCatalog._to_record(row_a),
                            NameCatalog._to_record(row_b),
                        )
                    )
        stats.results = len(results)
        self._finish(stats)
        return results


class MetricIndexStrategy(Strategy):
    """BK-tree metric index over the stored phoneme strings.

    Implements the paper's other future-work index (Section 6: "a metric
    index for phonemes", via refs [1, 21]).  The Clustered Edit Distance
    is a metric (symmetric costs, triangle inequality — property-tested),
    so a BK-tree range query with radius ``threshold * |query|`` returns
    a *superset* of the relative-budget matches with no false dismissals;
    candidates are then rechecked against the exact per-pair budget.

    Compared with the Table 2/3 accelerators: lossless like q-grams,
    index-shaped like the phonetic key, but prunes by the *match metric
    itself* rather than by a proxy.  The tree is built from the catalog's
    current contents at construction time.
    """

    name = "metric-index"

    def __init__(self, catalog: NameCatalog, resolution: float = 0.25):
        super().__init__(catalog)
        from repro.matching.bktree import BKTree

        costs = self.matcher.costs
        self._tree = BKTree(
            lambda a, b: edit_distance(a, b, costs), resolution
        )
        for row in catalog.db.table(catalog.table_name).rows():
            self._tree.add(catalog.phonemes_of(row[0]), row[0])

    def select(
        self,
        query: str,
        language: str = "english",
        languages: tuple[str, ...] = (),
    ) -> list[NameRecord]:
        stats = StrategyStats()
        catalog = self.catalog
        table = catalog.db.table(catalog.table_name)
        stats.rows_considered = len(table)
        query_phonemes = self._query_phonemes(query, language)
        radius = self.config.threshold * len(query_phonemes)
        hits = self._tree.search(query_phonemes, radius)
        stats.udf_calls = self._tree.last_search_distance_calls
        id_tree = catalog.db.index(f"idx_{catalog.table_name}_id").tree
        threshold = self.config.threshold
        results = []
        for distance, record_id in hits:
            row = table.fetch(id_tree.search(record_id)[0])
            if not self._language_ok(row[2], languages):
                continue
            stats.candidates_after_filters += 1
            phonemes = catalog.phonemes_of(record_id)
            # Exact relative budget: e * min(|q|, |c|) (the radius used
            # e * |q|, an upper bound).
            budget = threshold * min(len(query_phonemes), len(phonemes))
            if distance <= budget + 1e-12:
                results.append(NameCatalog._to_record(row))
        results.sort(key=lambda r: r.id)
        stats.results = len(results)
        self._finish(stats)
        return results

    def join(
        self, *, cross_language_only: bool = True
    ) -> list[tuple[NameRecord, NameRecord]]:
        stats = StrategyStats()
        catalog = self.catalog
        table = catalog.db.table(catalog.table_name)
        rows_by_id = {row[0]: row for row in table.rows()}
        n = len(rows_by_id)
        stats.rows_considered = n * (n - 1) // 2
        threshold = self.config.threshold
        results = []
        for id_a, row_a in rows_by_id.items():
            phonemes_a = catalog.phonemes_of(id_a)
            radius = threshold * len(phonemes_a)
            hits = self._tree.search(phonemes_a, radius)
            stats.udf_calls += self._tree.last_search_distance_calls
            for distance, id_b in hits:
                if id_b <= id_a:
                    continue
                row_b = rows_by_id[id_b]
                if cross_language_only and row_a[2] == row_b[2]:
                    continue
                stats.candidates_after_filters += 1
                phonemes_b = catalog.phonemes_of(id_b)
                budget = threshold * min(len(phonemes_a), len(phonemes_b))
                if distance <= budget + 1e-12:
                    results.append(
                        (
                            NameCatalog._to_record(row_a),
                            NameCatalog._to_record(row_b),
                        )
                    )
        results.sort(key=lambda pair: (pair[0].id, pair[1].id))
        stats.results = len(results)
        self._finish(stats)
        return results


class AnnPrefilterStrategy(Strategy):
    """Articulatory-embedding radius prefilter + exact banded verifier.

    The sublinear candidate generator of ROADMAP item 3: every stored
    phoneme string is pooled into a fixed-width articulatory feature
    vector (:mod:`repro.matching.embed`), and a query probes an L1
    radius around its own embedding — served either by a chunked
    quantized int8 matrix scan (``index_kind="matrix"``) or by a
    VP-tree (``index_kind="vptree"``).  Survivors are verified with the
    exact banded batch kernel at the exact per-pair budget, so results
    are always a *subset* of :class:`NaiveUdfStrategy`'s.

    The embedding obeys ``|phi(s)-phi(t)|_1 <= c * d_edit(s, t)`` with
    ``c = EmbeddingModel.lower_bound_constant()``; the admission radius
    is ``scale * threshold * |query|`` where ``scale`` is
    ``radius_scale`` (default 2 — lossy but measured: the quality
    harness pins its recall) or ``c`` itself under ``lossless=True``
    (then no true match can be dismissed and results equal naive's
    exactly).
    """

    name = "ann-prefilter"

    def __init__(
        self,
        catalog: NameCatalog,
        *,
        radius_scale: float = 2.0,
        index_kind: str = "matrix",
        lossless: bool = False,
    ):
        super().__init__(catalog)
        from repro.errors import MatchConfigError
        from repro.matching.embed import (
            EmbeddingModel,
            QuantizedMatrixIndex,
            VPTree,
        )
        from repro.parallel.table import EncodedNameTable

        if index_kind not in ("matrix", "vptree"):
            raise MatchConfigError(
                f"ann index kind must be 'matrix' or 'vptree', "
                f"got {index_kind!r}"
            )
        if radius_scale <= 0:
            raise MatchConfigError(
                f"ann radius scale must be > 0, got {radius_scale}"
            )
        self.radius_scale = float(radius_scale)
        self.index_kind = index_kind
        self.lossless = lossless
        self._table = EncodedNameTable.from_catalog(catalog)
        self._model = EmbeddingModel(self._table.encoded)
        vectors = self._model.encode_many(
            self._table.codes, self._table.offsets
        )
        if index_kind == "matrix":
            self._index = QuantizedMatrixIndex.from_vectors(vectors)
        else:
            self._index = VPTree(vectors)

    @property
    def admission_scale(self) -> float:
        """Radius per unit of ``threshold * |query|`` actually used."""
        if self.lossless:
            return self._model.lower_bound_constant()
        return self.radius_scale

    def _prefilter(self, qvec, query_len: int):
        radius = self.admission_scale * self.config.threshold * query_len
        return self._index.search(qvec, radius)

    def select(
        self,
        query: str,
        language: str = "english",
        languages: tuple[str, ...] = (),
    ) -> list[NameRecord]:
        import numpy as np

        from repro.matching.batch import batch_edit_distances_within_encoded

        stats = StrategyStats()
        catalog = self.catalog
        table = self._table
        stats.rows_considered = len(table)
        query_phonemes = self._query_phonemes(query, language)
        qcodes = table.encode_query(query_phonemes)
        if qcodes is None:
            # Out-of-table symbol in the query: fall back to the exact
            # scalar path (lossless, just not prefiltered).
            return self._select_fallback(
                query_phonemes, languages, stats
            )
        qvec = self._model.encode_codes(qcodes)
        positions = self._prefilter(qvec, len(query_phonemes))
        allowed = table.language_codes_for(languages)
        if allowed is not None and len(positions):
            positions = positions[
                np.isin(table.lang_codes[positions], allowed)
            ]
        stats.candidates_after_filters = len(positions)
        results = []
        if len(positions):
            budgets = self.config.threshold * np.minimum(
                len(query_phonemes), table.lens[positions]
            )
            distances = batch_edit_distances_within_encoded(
                qcodes,
                table.codes,
                table.offsets,
                table.encoded,
                budgets,
                rows=positions,
            )
            stats.udf_calls = len(positions)
            for pos in positions[np.isfinite(distances)]:
                results.append(catalog.record(int(table.ids[pos])))
        results.sort(key=lambda r: r.id)
        stats.results = len(results)
        if obs.is_enabled():
            obs.incr("ann.prefilter.queries")
            obs.incr("ann.prefilter.candidates", int(stats.candidates_after_filters))
            obs.incr("ann.prefilter.verified_matches", len(results))
        self._finish(stats)
        return results

    def _select_fallback(
        self,
        query_phonemes,
        languages: tuple[str, ...],
        stats: StrategyStats,
    ) -> list[NameRecord]:
        catalog = self.catalog
        costs = self.matcher.costs
        threshold = self.config.threshold
        results = []
        for row in catalog.db.table(catalog.table_name).rows():
            if not self._language_ok(row[2], languages):
                continue
            stats.candidates_after_filters += 1
            stats.udf_calls += 1
            phonemes = catalog.phonemes_of(row[0])
            budget = threshold * min(len(query_phonemes), len(phonemes))
            if (
                edit_distance_within(
                    query_phonemes, phonemes, budget, costs
                )
                is not None
            ):
                results.append(NameCatalog._to_record(row))
        results.sort(key=lambda r: r.id)
        stats.results = len(results)
        obs.incr("ann.prefilter.fallback_scans")
        self._finish(stats)
        return results

    def join(
        self, *, cross_language_only: bool = True
    ) -> list[tuple[NameRecord, NameRecord]]:
        import numpy as np

        from repro.matching.batch import batch_edit_distances_within_encoded

        stats = StrategyStats()
        catalog = self.catalog
        table = self._table
        count = len(table)
        stats.rows_considered = count * (count - 1) // 2
        threshold = self.config.threshold
        results = []
        for pos_a in range(count):
            lo, hi = table.offsets[pos_a], table.offsets[pos_a + 1]
            codes_a = table.codes[lo:hi]
            vec_a = self._model.encode_codes(codes_a)
            positions = self._prefilter(vec_a, int(table.lens[pos_a]))
            positions = positions[positions > pos_a]
            if cross_language_only and len(positions):
                positions = positions[
                    table.lang_codes[positions] != table.lang_codes[pos_a]
                ]
            if not len(positions):
                continue
            stats.candidates_after_filters += len(positions)
            budgets = threshold * np.minimum(
                int(table.lens[pos_a]), table.lens[positions]
            )
            distances = batch_edit_distances_within_encoded(
                codes_a,
                table.codes,
                table.offsets,
                table.encoded,
                budgets,
                rows=positions,
            )
            stats.udf_calls += len(positions)
            record_a = catalog.record(int(table.ids[pos_a]))
            for pos_b in positions[np.isfinite(distances)]:
                results.append(
                    (record_a, catalog.record(int(table.ids[pos_b])))
                )
        results.sort(key=lambda pair: (pair[0].id, pair[1].id))
        stats.results = len(results)
        self._finish(stats)
        return results


# ---------------------------------------------------------------- choice

#: Cost-model strategy name -> executable strategy class.
STRATEGY_CLASSES: dict[str, type[Strategy]] = {
    "naive": NaiveUdfStrategy,
    "qgram": QGramStrategy,
    "index": PhoneticIndexStrategy,
    "metric": MetricIndexStrategy,
    "ann": AnnPrefilterStrategy,
}


@dataclass
class StrategyChoice:
    """Outcome of cost-based strategy selection.

    ``strategy`` is ready to run; ``estimate`` is the winning
    :class:`~repro.minidb.cost.StrategyEstimate`; ``estimates`` holds
    every considered alternative (for EXPLAIN-style reporting and the
    cost-model test suite).
    """

    strategy: Strategy
    estimate: object
    estimates: list

    @property
    def name(self) -> str:
        return self.estimate.strategy


def catalog_cost_inputs(catalog: NameCatalog) -> dict:
    """Cost-model inputs read off a catalog's live index structures.

    No sampling: posting-list density and grouped-key bucket sizes come
    straight from the B+ trees the strategies would probe, so the
    estimate reflects *this* lexicon (ANALYZE-grade stats for the
    accelerator path live in :mod:`repro.minidb.stats` instead).
    """
    rows = len(catalog)
    avg_plen = (
        sum(len(p) for p in catalog._phonemes.values()) / rows
        if rows
        else 1.0
    )
    gram_tree = catalog.db.index(
        f"idx_{catalog.qgram_table_name}_gram"
    ).tree
    gpsid_tree = catalog.db.index(f"idx_{catalog.table_name}_gpsid").tree
    distinct_grams = gram_tree.key_count
    avg_posting = (
        len(gram_tree) / distinct_grams if distinct_grams else None
    )
    distinct_keys = gpsid_tree.key_count
    index_sel = (
        (len(gpsid_tree) / distinct_keys) / rows
        if distinct_keys and rows
        else None
    )
    return {
        "rows": rows,
        "avg_plen": avg_plen,
        "avg_posting": avg_posting,
        "index_sel": index_sel,
    }


def choose_strategy(
    catalog: NameCatalog,
    query: str,
    language: str = "english",
    *,
    allow_lossy: bool = False,
    available: tuple[str, ...] | None = None,
) -> StrategyChoice:
    """Pick the cheapest execution strategy for one selection query.

    Estimates every candidate strategy with :mod:`repro.minidb.cost`
    over :func:`catalog_cost_inputs`, then instantiates the winner.
    The grouped-key probe (``index``) may false-dismiss cross-cluster
    matches, so it is only eligible under ``allow_lossy`` — exactly the
    planner's rule.  ``available`` restricts the field (e.g. drop
    ``metric`` to avoid the BK-tree build cost for one-shot queries).
    """
    from repro.minidb import cost

    if available is None:
        available = ("naive", "qgram", "index", "metric", "ann")
    query_phonemes = catalog.matcher.registry.transform(query, language)
    query_tokens = catalog.tokens_of_phonemes(query_phonemes)
    inputs = catalog_cost_inputs(catalog)
    qgram_sel = None
    if inputs["avg_posting"] is not None and inputs["rows"]:
        # Each of the ~|tokens| probed grams pulls one posting list; the
        # union (ignoring dedup) bounds the candidate fraction.
        qgram_sel = min(
            1.0,
            max(1, len(query_tokens))
            * inputs["avg_posting"]
            / inputs["rows"],
        )
    estimates = cost.estimate_strategies(
        rows=inputs["rows"],
        query_len=len(query_phonemes),
        avg_plen=inputs["avg_plen"],
        qgram_sel=qgram_sel,
        index_sel=inputs["index_sel"],
        avg_posting=inputs["avg_posting"],
        available=available,
    )
    winner = cost.choose(estimates, allow_lossy=allow_lossy)
    obs.incr(f"strategy.choice.{winner.strategy}")
    return StrategyChoice(
        STRATEGY_CLASSES[winner.strategy](catalog), winner, estimates
    )
