"""The LexEQUAL operator — a direct transcription of paper Figure 8.

``LexEQUAL(S_l, S_r, e)``:

1. determine the languages of both operands;
2. if either language has no IPA transformation, return ``NORESOURCE``;
3. transform both strings to phoneme strings;
4. return ``TRUE`` iff ``editdistance(T_l, T_r) <= e * min(|T_l|, |T_r|)``.

Operands are :class:`~repro.minidb.values.LangText` (explicit language
tag) or plain strings, whose language is detected from their Unicode
script (Latin defaults to English) — the pragmatic resolution of the
language-identification issue the paper discusses in Section 2.1.
"""

from __future__ import annotations

import enum

from repro.core.config import MatchConfig
from repro.errors import TTPError, UnsupportedLanguageError
from repro.matching.editdist import edit_distance
from repro.minidb.values import LangText
from repro.ttp.registry import TTPRegistry, default_registry, detect_language


class MatchOutcome(enum.Enum):
    """Three-valued result of the LexEQUAL operator (Figure 8)."""

    TRUE = "true"
    FALSE = "false"
    NORESOURCE = "noresource"

    def __bool__(self) -> bool:
        return self is MatchOutcome.TRUE


def operand_language(
    value: str | LangText, registry: TTPRegistry | None = None
) -> str | None:
    """Language of an operand: its tag, or a script-based guess.

    Returns ``None`` when the script cannot be identified (which the
    operator reports as ``NORESOURCE``).
    """
    if isinstance(value, LangText):
        return value.language.lower()
    try:
        return detect_language(value)
    except TTPError:
        return None


def lex_equal(
    left: str | LangText,
    right: str | LangText,
    threshold: float | None = None,
    *,
    config: MatchConfig | None = None,
    registry: TTPRegistry | None = None,
    languages: tuple[str, ...] = (),
) -> MatchOutcome:
    """The LexEQUAL comparison of paper Figure 8.

    ``languages`` restricts the match to operands in the given languages
    (the query's ``INLANGUAGES`` clause); an empty tuple is the ``*``
    wildcard.  ``threshold`` overrides ``config.threshold`` when given.

    >>> from repro.minidb.values import LangText
    >>> bool(lex_equal("Nehru", LangText("नेहरु", "hindi"), 0.3))
    True
    """
    config = config or MatchConfig()
    registry = registry or default_registry()
    e = config.threshold if threshold is None else threshold

    lang_l = operand_language(left, registry)
    lang_r = operand_language(right, registry)
    if lang_l is None or lang_r is None:
        return MatchOutcome.NORESOURCE
    if not registry.supports(lang_l) or not registry.supports(lang_r):
        return MatchOutcome.NORESOURCE
    if languages:
        wanted = {lang.lower() for lang in languages}
        if lang_l not in wanted or lang_r not in wanted:
            return MatchOutcome.FALSE

    try:
        phonemes_l = registry.transform(str(left), lang_l)
        phonemes_r = registry.transform(str(right), lang_r)
    except UnsupportedLanguageError:
        return MatchOutcome.NORESOURCE

    budget = e * min(len(phonemes_l), len(phonemes_r))
    distance = edit_distance(phonemes_l, phonemes_r, config.cost_model())
    return MatchOutcome.TRUE if distance <= budget else MatchOutcome.FALSE
