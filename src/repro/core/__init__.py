"""The LexEQUAL operator — the paper's primary contribution.

* :mod:`repro.core.config` — :class:`MatchConfig`, the tunable knobs
  (user match threshold, intra-cluster substitution cost, clustering,
  q-gram length);
* :mod:`repro.core.operator` — the three-valued LexEQUAL comparison of
  paper Figure 8;
* :mod:`repro.core.matcher` — :class:`LexEqualMatcher`, the cached,
  configured façade used by applications and by the database strategies;
* :mod:`repro.core.strategies` — the naive UDF, q-gram filter and
  phonetic index execution strategies over a :class:`NameCatalog`;
* :mod:`repro.core.integration` — installing LexEQUAL into a
  :class:`repro.minidb.Database` as a UDF so the paper's SQL (Figures 3,
  5, 14, 15) runs verbatim.
"""

from repro.core.config import MatchConfig
from repro.core.operator import MatchOutcome, lex_equal
from repro.core.matcher import LexEqualMatcher, MatchExplanation
from repro.core.strategies import (
    ExactStrategy,
    NameCatalog,
    NameRecord,
    NaiveUdfStrategy,
    QGramStrategy,
    PhoneticIndexStrategy,
    MetricIndexStrategy,
    AnnPrefilterStrategy,
)
from repro.core.integration import install_lexequal
from repro.core.engine import (
    PhoneticAccelerator,
    create_phonetic_accelerator,
)

__all__ = [
    "MatchConfig",
    "MatchOutcome",
    "lex_equal",
    "LexEqualMatcher",
    "MatchExplanation",
    "NameCatalog",
    "NameRecord",
    "ExactStrategy",
    "NaiveUdfStrategy",
    "QGramStrategy",
    "PhoneticIndexStrategy",
    "MetricIndexStrategy",
    "AnnPrefilterStrategy",
    "install_lexequal",
    "PhoneticAccelerator",
    "create_phonetic_accelerator",
]
