"""Inside-the-engine LexEQUAL acceleration (paper Section 6 future work).

The paper deployed LexEQUAL "outside the server" as a UDF and noted that
"the optimizer ... indicat[ed] that no optimization was done on the UDF
call in the query"; its future work is "an inside-the-engine
implementation ... with the expectation of further improving the runtime
efficiency".  This module is that implementation for the minidb engine:

* :func:`create_phonetic_accelerator` builds the auxiliary phonetic
  structures for one text column — per-row phoneme strings, and either
  the positional q-gram table with its B+ tree (``method="qgram"``,
  lossless), the grouped-phoneme-key B+ tree (``method="index"``,
  fastest, with the Section 5.3 false-dismissal caveat), or the sharded
  process-pool executor over an encoded phoneme table
  (``method="parallel"``, lossless — evaluates the exact match set with
  the vectorized banded kernels of :mod:`repro.matching.batch`);
* the structures register themselves as a table observer, so inserts
  and deletes keep them consistent automatically;
* the planner (see ``repro.minidb.planner._accelerated_candidates``)
  rewrites a ``col LexEQUAL 'query' THRESHOLD e`` predicate into a
  candidate-rowid scan against these structures, keeping the UDF as a
  recheck filter — no query changes required:

      create_phonetic_accelerator(db, "books", "author")
      db.execute("SELECT * FROM books WHERE author LEXEQUAL 'Nehru' "
                 "THRESHOLD 0.25")      # now uses the accelerator
"""

from __future__ import annotations

from repro import degrade, obs
from repro.core.config import MatchConfig
from repro.core.matcher import LexEqualMatcher
from repro.errors import DatabaseError, TTPError
from repro.matching.qgrams import (
    count_filter_threshold,
    positional_qgrams,
    publish_filter_counts,
)
from repro.minidb.btree import BPlusTree
from repro.minidb.catalog import Database
from repro.phonetics.keys import grouped_key
from repro.phonetics.parse import PhonemeString

_GRAM_SEP = "\x1f"


class PhoneticAccelerator:
    """Auxiliary phonetic access structures for one ``table.column``.

    Do not construct directly — use :func:`create_phonetic_accelerator`,
    which also wires the observer and planner registration.
    """

    def __init__(
        self,
        db: Database,
        table_name: str,
        column_name: str,
        matcher: LexEqualMatcher,
        method: str,
        workers: int | None = None,
        allow_lossy: bool = False,
        restore: dict | None = None,
    ):
        if method not in ("qgram", "index", "parallel", "ann", "auto"):
            raise DatabaseError(
                f"accelerator method must be 'qgram', 'index', "
                f"'parallel', 'ann' or 'auto', got {method!r}"
            )
        self.db = db
        self.table_name = table_name
        self.column_name = column_name
        self.matcher = matcher
        self.method = method
        self.workers = workers
        #: auto only: whether the cost model may choose the grouped-key
        #: index, which can false-dismiss (paper Section 5.3).
        self.allow_lossy = allow_lossy
        # Which structures this accelerator maintains.  "auto" keeps
        # both filter structures current so the cost model has a real
        # choice per query (maintenance is two extra tree inserts/row).
        self._maintain_qgram = method in ("qgram", "auto")
        self._maintain_index = method in ("index", "auto")
        self._maintain_parallel = method in ("parallel", "auto")
        # The embedding prefilter is lossy at its default radius, so
        # "auto" only carries it when the lossy tier is enabled at all.
        self._maintain_ann = method == "ann" or (
            method == "auto" and allow_lossy
        )
        #: Admission radius per unit of ``threshold * |query|`` for the
        #: embedding prefilter (see :mod:`repro.matching.embed`): 2.0 is
        #: the measured-recall operating point the quality harness pins.
        self.ann_radius_scale = 2.0
        self._ann_model = None
        self._ann_index = None
        self._ann_rowids: list[int] = []
        self._ann_pos: dict[int, int] = {}
        table = db.table(table_name)
        self._position = table.schema.position(column_name)
        self._phonemes: dict[int, PhonemeString] = {}
        self._tokens: dict[int, tuple[str, ...]] = {}
        self._langs: dict[int, str] = {}
        self._plen_sum = 0
        self._gpsid_tree = BPlusTree()
        self._gram_tree = BPlusTree()
        #: Encoded table + executor for the parallel path, rebuilt
        #: lazily after table changes.
        self._table = None
        self._executor = None
        self._executor_stale = True
        #: Cost-model report of the last candidate_rowids call: the
        #: concrete method used and its StrategyEstimate (planner
        #: surfaces these in EXPLAIN).
        self.last_method: str | None = None
        self.last_choice = None
        self.last_estimates: list = []
        if restore is not None and self._restore_state(restore):
            self._sync_with_table(table)
        else:
            for rowid, row in table.scan():
                self.on_insert(rowid, row)

    # ----------------------------------------------------- maintenance

    def _phonemes_of_value(self, value) -> PhonemeString | None:
        if value is None:
            return None
        language = self.matcher.language_of(value)
        if language is None or not self.matcher.registry.supports(language):
            return None  # NORESOURCE rows are not indexed
        return self.matcher.registry.transform(str(value), language)

    def on_insert(self, rowid: int, row: tuple) -> None:
        phonemes = self._phonemes_of_value(row[self._position])
        if not phonemes:
            return
        self._phonemes[rowid] = phonemes
        self._plen_sum += len(phonemes)
        config = self.matcher.config
        if self._maintain_parallel:
            language = self.matcher.language_of(row[self._position])
            self._langs[rowid] = language or ""
            self._table = None
            self._executor_stale = True
        if self._maintain_index:
            key = grouped_key(
                phonemes, config.clustering, mode=config.key_mode
            )
            self._gpsid_tree.insert(key, rowid)
        if self._maintain_qgram:
            tokens = self._tokens_of(phonemes)
            self._tokens[rowid] = tokens
            for gram in positional_qgrams(tokens, config.q):
                self._gram_tree.insert(
                    _GRAM_SEP.join(gram.gram), (rowid, gram.pos)
                )
        if self._maintain_ann and self._ann_index is not None:
            try:
                vector = self._ann_model.encode(phonemes)
            except KeyError:
                # Symbol outside the embedding's code space: drop the
                # index and rebuild lazily over the widened inventory.
                self._ann_invalidate()
            else:
                position = self._ann_index.append(vector)
                self._ann_rowids.append(rowid)
                self._ann_pos[rowid] = position

    def on_delete(self, rowid: int, row: tuple) -> None:
        phonemes = self._phonemes.pop(rowid, None)
        if phonemes is None:
            return
        self._plen_sum -= len(phonemes)
        config = self.matcher.config
        if self._maintain_parallel:
            self._langs.pop(rowid, None)
            self._table = None
            self._executor_stale = True
        if self._maintain_index:
            key = grouped_key(
                phonemes, config.clustering, mode=config.key_mode
            )
            self._gpsid_tree.delete(key, rowid)
        if self._maintain_qgram:
            tokens = self._tokens.pop(rowid)
            for gram in positional_qgrams(tokens, config.q):
                self._gram_tree.delete(
                    _GRAM_SEP.join(gram.gram), (rowid, gram.pos)
                )
        if self._maintain_ann and self._ann_index is not None:
            position = self._ann_pos.pop(rowid, None)
            if position is not None:
                self._ann_index.delete(position)

    def _tokens_of(self, phonemes: PhonemeString) -> tuple[str, ...]:
        config = self.matcher.config
        if config.qgram_domain == "cluster":
            return tuple(
                str(c) for c in config.clustering.map_string(phonemes)
            )
        return tuple(phonemes)

    # ------------------------------------------------- snapshot/restore

    def snapshot_state(self) -> dict:
        """Picklable snapshot of every maintained structure.

        Persisted by the storage backend at checkpoint time so a
        reopened database attaches this accelerator without re-running
        TTP over the table (see :mod:`repro.storage.snapshots`).
        """
        from repro.storage import snapshots

        state: dict = {
            "method": self.method,
            "phonemes": dict(self._phonemes),
            "langs": dict(self._langs),
        }
        if self._maintain_qgram:
            state["tokens"] = dict(self._tokens)
            state["grams"] = snapshots.btree_state(self._gram_tree)
        if self._maintain_index:
            state["gpsid"] = snapshots.btree_state(self._gpsid_tree)
        if self._maintain_parallel and self._phonemes:
            state["encoded"] = snapshots.encoded_table_state(
                self._build_table()
            )
        if self._maintain_ann and self._phonemes:
            if self._ann_state() is not None:
                state["ann"] = snapshots.ann_index_state(
                    self._ann_model, self._ann_index, self._ann_rowids
                )
        return state

    def _restore_state(self, state: dict) -> bool:
        """Install a snapshot; False = incompatible, rebuild instead."""
        from repro.storage import snapshots

        if state.get("method") != self.method:
            return False
        self._phonemes = {
            int(rowid): tuple(ph)
            for rowid, ph in state["phonemes"].items()
        }
        self._plen_sum = sum(len(p) for p in self._phonemes.values())
        self._langs = {
            int(rowid): lang for rowid, lang in state["langs"].items()
        }
        if self._maintain_qgram:
            self._tokens = {
                int(rowid): tuple(t)
                for rowid, t in state["tokens"].items()
            }
            self._gram_tree = snapshots.restore_btree(state["grams"])
        if self._maintain_index:
            self._gpsid_tree = snapshots.restore_btree(state["gpsid"])
        if self._maintain_parallel and "encoded" in state:
            self._table = snapshots.restore_encoded_table(
                state["encoded"], self.matcher.costs
            )
        if self._maintain_ann and "ann" in state:
            restored = snapshots.restore_ann_index(
                state["ann"], self.matcher.costs
            )
            if restored is not None:
                model, index, rowids = restored
                self._ann_model = model
                self._ann_index = index
                self._ann_rowids = [int(rowid) for rowid in rowids]
                self._ann_pos = {
                    rowid: pos
                    for pos, rowid in enumerate(self._ann_rowids)
                    if index.alive[pos]
                }
        return True

    def _sync_with_table(self, table) -> None:
        """Delta-sync a restored snapshot with the live heap.

        The snapshot covers rows as of the last checkpoint; rows the
        WAL replayed after it are indexed here (TTP only on the delta)
        and rows deleted since are dropped.
        """
        live = {rowid for rowid, _row in table.scan()}
        stale = [rowid for rowid in self._phonemes if rowid not in live]
        for rowid in stale:
            self.on_delete(rowid, ())
        delta = 0
        for rowid, row in table.scan():
            if rowid not in self._phonemes:
                self.on_insert(rowid, row)
                delta += 1
        if stale or delta:
            obs.incr("accelerator.restore.delta_rows", len(stale) + delta)

    # --------------------------------------------------------- planning

    def candidate_rowids(
        self,
        value,
        threshold: float | None,
        languages: tuple[str, ...] = (),
    ) -> list[int] | None:
        """Candidate rowids for ``column LexEQUAL value THRESHOLD t``.

        For ``method="qgram"`` the list is a strict superset of the
        matching rows (the planner rechecks with the UDF, so results are
        identical to a full scan).  For ``method="index"`` it is the
        grouped-key bucket — fastest, with possible false dismissals.
        For ``method="parallel"`` it is the *exact* match set, computed
        by the sharded executor's banded batch kernels (the planner's
        UDF recheck then touches only true matches).  For
        ``method="ann"`` the embedding prefilter admits a radius
        neighbourhood and the banded batch kernel verifies the
        survivors, so the list is again exact over the *admitted* rows —
        lossy only through the radius (recall pinned by the quality
        harness).  Returns None
        (declining, planner falls back to a scan) when the query value's
        language is unsupported or its phonemes cannot be encoded.
        """
        obs.incr(f"accelerator.{self.method}.calls")
        try:
            query_phonemes = self._phonemes_of_value(value)
        except TTPError as exc:
            # Transient failure converting the *query* value: under a
            # degradation context the accelerator declines (planner
            # falls back to a scan whose UDF recheck degrades per row);
            # outside one the failure propagates unchanged.
            if not degrade.record(getattr(exc, "language", None)):
                raise
            query_phonemes = None
        if not query_phonemes:
            obs.incr(f"accelerator.{self.method}.declined")
            return None
        config = self.matcher.config
        if threshold is not None:
            config = config.with_threshold(float(threshold))
        method, choice = self._resolve_method(query_phonemes, config)
        self.last_method = method
        self.last_choice = choice
        if method == "naive":
            # The cost model priced the plain scan cheapest (tiny
            # table / unselective filter): decline, the planner's
            # SeqScan + UDF recheck *is* the chosen plan.
            obs.incr("accelerator.auto.chose_naive")
            return None
        if method == "parallel":
            candidates = self._parallel_candidates(query_phonemes, config)
            if candidates is None:
                if self.method == "auto":
                    # Unknown symbol for the encoded table: fall back
                    # to the lossless q-gram path instead of declining.
                    method = self.last_method = "qgram"
                    candidates = self._qgram_candidates(
                        query_phonemes, config
                    )
                else:
                    obs.incr(f"accelerator.{self.method}.declined")
                    return None
        elif method == "ann":
            candidates = self._ann_candidates(query_phonemes, config)
            if candidates is None:
                if self.method == "auto":
                    # Query not encodable in the embedding's code
                    # space: fall back to the lossless q-gram path.
                    method = self.last_method = "qgram"
                    candidates = self._qgram_candidates(
                        query_phonemes, config
                    )
                else:
                    obs.incr(f"accelerator.{self.method}.declined")
                    return None
        elif method == "index":
            key = grouped_key(
                query_phonemes, config.clustering, mode=config.key_mode
            )
            candidates = sorted(self._gpsid_tree.search(key))
            obs.incr("btree.probes")
            if not candidates:
                obs.incr("btree.probe_misses")
        else:
            candidates = self._qgram_candidates(query_phonemes, config)
        if self.method == "auto":
            obs.incr(f"accelerator.auto.chose_{method}")
        obs.observe(
            f"accelerator.{self.method}.candidates", len(candidates)
        )
        return candidates

    def _resolve_method(self, query_phonemes: PhonemeString, config):
        """The concrete method for this query, with its cost estimate.

        Fixed-method accelerators still get an estimate (for EXPLAIN's
        est_rows/est_cost); ``method="auto"`` additionally *chooses*:
        statistics from the last ANALYZE feed
        :func:`repro.minidb.cost.estimate_strategies`, and the cheapest
        eligible strategy wins.  Lossless strategies only, unless the
        accelerator was created with ``allow_lossy=True``.
        """
        from repro.minidb import cost

        if self.method == "auto":
            available = ["naive", "qgram"]
            if self.allow_lossy:
                available.append("index")
                available.append("ann")
            if self.workers is not None:
                available.append("parallel")
        else:
            available = [self.method]
        stats = self.db.stats.accelerator(self.table_name, self.column_name)
        rows = len(self._phonemes)
        avg_plen = (
            stats.avg_plen
            if stats is not None and stats.avg_plen
            else (self._plen_sum / rows if rows else 1.0)
        )
        avg_posting = None
        if stats is not None and stats.distinct_grams:
            avg_posting = stats.qgram_postings / stats.distinct_grams
        estimates = cost.estimate_strategies(
            rows=rows,
            query_len=len(self._tokens_of(query_phonemes)),
            avg_plen=avg_plen,
            qgram_sel=stats.qgram_sel if stats is not None else None,
            index_sel=stats.index_sel if stats is not None else None,
            ann_sel=stats.ann_sel if stats is not None else None,
            avg_posting=avg_posting,
            workers=self.workers,
            available=tuple(available),
        )
        self.last_estimates = estimates
        if self.method != "auto":
            return self.method, estimates[0] if estimates else None
        choice = cost.choose(estimates, allow_lossy=self.allow_lossy)
        return choice.strategy, choice

    def _parallel_candidates(
        self, query_phonemes: PhonemeString, config: MatchConfig
    ) -> list[int] | None:
        """Exact matching rowids via the sharded executor (or None)."""
        executor = self._parallel_executor()
        if executor is None or len(executor.table) == 0:
            return []
        if executor.table.encode_query(query_phonemes) is None:
            return None  # out-of-table symbol: decline to the scan path
        ids, _dists = executor.match(query_phonemes, config.threshold)
        return [int(i) for i in ids]

    def _build_table(self):
        """The encoded CSR table over the current rows (cached).

        A snapshot restore pre-seeds the cache, so a reopened
        accelerator skips even the numpy re-encode until the table
        changes.
        """
        if self._table is None and self._phonemes:
            from repro.parallel import EncodedNameTable

            self._table = EncodedNameTable.from_rows(
                self.matcher.costs,
                [
                    (rowid, self._langs.get(rowid, ""), phonemes)
                    for rowid, phonemes in sorted(self._phonemes.items())
                ],
            )
        return self._table

    def _parallel_executor(self):
        """The parallel-path executor, rebuilt after table changes."""
        if self._executor_stale:
            if self._executor is not None:
                self._executor.close()
                self._executor = None
            if self._phonemes:
                from repro.parallel import ParallelMatchExecutor

                self._executor = ParallelMatchExecutor(
                    self._build_table(), workers=self.workers
                )
            self._executor_stale = False
        return self._executor

    def _ann_invalidate(self) -> None:
        self._ann_model = None
        self._ann_index = None
        self._ann_rowids = []
        self._ann_pos = {}

    def _ann_state(self):
        """The (model, index) pair for the embedding prefilter (lazy).

        The embedding code space is the full phoneme inventory widened
        by any out-of-inventory symbols in the current rows, so every
        indexed row is encodable; a later insert that still misses the
        space invalidates and rebuilds here.
        """
        if self._ann_index is None and self._phonemes:
            import numpy as np

            from repro.matching.embed import (
                EmbeddingModel,
                QuantizedMatrixIndex,
            )
            from repro.phonetics.inventory import INVENTORY

            extra = {
                symbol
                for phonemes in self._phonemes.values()
                for symbol in phonemes
            }
            model = EmbeddingModel.for_costs(
                self.matcher.costs, sorted(set(INVENTORY) | extra)
            )
            rowids = sorted(self._phonemes)
            chunks = [
                model.encoded.encode(self._phonemes[rowid])
                for rowid in rowids
            ]
            offsets = np.zeros(len(rowids) + 1, dtype=np.int64)
            np.cumsum([len(c) for c in chunks], out=offsets[1:])
            codes = (
                np.concatenate(chunks)
                if chunks
                else np.empty(0, dtype=np.int64)
            )
            vectors = model.encode_many(codes, offsets)
            self._ann_model = model
            self._ann_index = QuantizedMatrixIndex.from_vectors(vectors)
            self._ann_rowids = list(rowids)
            self._ann_pos = {
                rowid: pos for pos, rowid in enumerate(rowids)
            }
        if self._ann_index is None:
            return None
        return self._ann_model, self._ann_index

    def _ann_candidates(
        self, query_phonemes: PhonemeString, config: MatchConfig
    ) -> list[int] | None:
        """Exact matches among embedding-admitted rows (or None).

        Prefilter with a radius search over the quantized embedding
        matrix, then verify every survivor with the exact banded batch
        kernel at the exact per-pair budget — candidates are true
        matches *within the admitted neighbourhood* (lossy only through
        the admission radius).  None = query not encodable, caller
        falls back.
        """
        state = self._ann_state()
        if state is None:
            return []
        import numpy as np

        from repro.matching.batch import batch_edit_distances_within

        model, index = state
        try:
            query_vector = model.encode(query_phonemes)
        except KeyError:
            return None
        radius = (
            self.ann_radius_scale
            * config.threshold
            * len(query_phonemes)
        )
        positions = index.search(query_vector, radius)
        rowids = [self._ann_rowids[int(pos)] for pos in positions]
        if not rowids:
            return []
        candidates = [self._phonemes[rowid] for rowid in rowids]
        budgets = config.threshold * np.minimum(
            len(query_phonemes),
            np.fromiter(
                (len(c) for c in candidates), np.int64, len(candidates)
            ),
        )
        distances = batch_edit_distances_within(
            query_phonemes, candidates, model.encoded, budgets
        )
        return sorted(
            rowid
            for rowid, distance in zip(rowids, distances)
            if np.isfinite(distance)
        )

    def _qgram_candidates(
        self, query_phonemes: PhonemeString, config: MatchConfig
    ) -> list[int]:
        query_tokens = self._tokens_of(query_phonemes)
        k = config.max_operations(len(query_tokens))
        q = config.q
        pair_counts: dict[int, int] = {}
        pos_pass = pos_reject = 0  # published in one batch below
        probes = probe_misses = 0  # ditto (btree.search is uninstrumented)
        for gram in positional_qgrams(query_tokens, q):
            encoded = _GRAM_SEP.join(gram.gram)
            postings = self._gram_tree.search(encoded)
            probes += 1
            if not postings:
                probe_misses += 1
            for rowid, pos in postings:
                if abs(pos - gram.pos) <= k:
                    pos_pass += 1
                    pair_counts[rowid] = pair_counts.get(rowid, 0) + 1
                else:
                    pos_reject += 1
        qlen = len(query_tokens)
        candidates = []
        len_pass = len_reject = cnt_pass = cnt_reject = 0
        for rowid, count in pair_counts.items():
            clen = len(self._tokens[rowid])
            if abs(qlen - clen) > k:
                len_reject += 1
                continue
            len_pass += 1
            if count < count_filter_threshold(qlen, clen, k, q):
                cnt_reject += 1
                continue
            cnt_pass += 1
            candidates.append(rowid)
        publish_filter_counts(
            pos_pass, pos_reject, len_pass, len_reject, cnt_pass, cnt_reject
        )
        obs.incr("btree.probes", probes)
        if probe_misses:
            obs.incr("btree.probe_misses", probe_misses)
        candidates.sort()
        return candidates

    # ------------------------------------------------------- statistics

    def collect_stats(self, sample: int = 32):
        """Structure + sampled-selectivity statistics for ANALYZE.

        Selectivities are measured, not modelled: up to ``sample``
        stored phoneme strings (seeded choice, reproducible) are run
        through the maintained filter structures and the mean candidate
        fraction is recorded.  That grounds the cost model in this
        lexicon's actual phonology rather than textbook constants.
        """
        import random

        from repro.minidb.stats import AcceleratorStats

        config = self.matcher.config
        rows = len(self._phonemes)
        stats = AcceleratorStats(
            rows=rows,
            avg_plen=(self._plen_sum / rows) if rows else 0.0,
            threshold=config.threshold,
        )
        if self._maintain_index:
            max_bucket = 0
            distinct = 0
            for _key, bucket in self._gpsid_tree.items():
                distinct += 1
                max_bucket = max(max_bucket, len(bucket))
            stats.distinct_keys = distinct
            stats.max_bucket = max_bucket
        if self._maintain_qgram:
            stats.qgram_postings = len(self._gram_tree)
            stats.distinct_grams = self._gram_tree.key_count
        if rows:
            rng = random.Random(0x4C455861)  # stable across ANALYZE runs
            rowids = sorted(self._phonemes)
            probes = [
                self._phonemes[rng.choice(rowids)]
                for _ in range(min(sample, rows))
            ]
            stats.sample_size = len(probes)
            if self._maintain_qgram:
                total = sum(
                    len(self._qgram_candidates(ph, config))
                    for ph in probes
                )
                stats.qgram_sel = total / (len(probes) * rows)
            if self._maintain_index:
                total = sum(
                    len(
                        self._gpsid_tree.search(
                            grouped_key(
                                ph, config.clustering, mode=config.key_mode
                            )
                        )
                    )
                    for ph in probes
                )
                stats.index_sel = total / (len(probes) * rows)
            if self._maintain_ann:
                state = self._ann_state()
                if state is not None:
                    model, index = state
                    total = 0
                    for ph in probes:
                        radius = (
                            self.ann_radius_scale
                            * config.threshold
                            * len(ph)
                        )
                        total += len(
                            index.search(model.encode(ph), radius)
                        )
                    stats.ann_sel = total / (len(probes) * rows)
        return stats

    def drop(self) -> None:
        """Detach from the database (stop maintenance and planning)."""
        self.db.remove_observer(self.table_name, self.observer_handle)
        self.db.register_accelerator(
            self.table_name, self.column_name, None
        )
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    #: Set by create_phonetic_accelerator (the observer is the object
    #: itself; kept explicit for drop()).
    observer_handle: "PhoneticAccelerator"


def create_phonetic_accelerator(
    db: Database,
    table_name: str,
    column_name: str,
    matcher: LexEqualMatcher | None = None,
    method: str = "qgram",
    workers: int | None = None,
    allow_lossy: bool = False,
    restore: dict | None = None,
) -> PhoneticAccelerator:
    """Build and register phonetic acceleration for ``table.column``.

    ``method="qgram"`` (default) gives Table 2 behaviour with zero
    result change; ``method="index"`` gives Table 3 behaviour (fastest,
    may false-dismiss); ``method="parallel"`` evaluates predicates with
    the sharded banded-kernel executor (lossless; ``workers`` sizes its
    process pool, default CPU count); ``method="ann"`` prefilters with
    the quantized articulatory-embedding index of
    :mod:`repro.matching.embed` and verifies survivors exactly (lossy
    through the admission radius, recall pinned by the quality
    harness); ``method="auto"`` maintains the filter structures and
    lets the cost model pick a strategy per query from ANALYZE
    statistics (lossy index/ann only with ``allow_lossy``).
    Also installs the LexEQUAL UDF family if the database does not have
    it yet.

    ``restore`` (storage recovery path) installs a snapshot produced by
    :meth:`PhoneticAccelerator.snapshot_state` instead of scanning the
    table; on a persistent database the accelerator also registers its
    snapshot artifact and manifest entry so reopening the data dir
    re-attaches it automatically.
    """
    matcher = matcher or LexEqualMatcher()
    if not db.has_udf("lexequal"):
        from repro.core.integration import install_lexequal

        install_lexequal(db, matcher)
    accelerator = PhoneticAccelerator(
        db,
        table_name,
        column_name,
        matcher,
        method,
        workers=workers,
        allow_lossy=allow_lossy,
        restore=restore,
    )
    accelerator.observer_handle = accelerator
    db.add_observer(table_name, accelerator)
    db.register_accelerator(table_name, column_name, accelerator)
    if db.storage.persistent:
        artifact = f"accel_{table_name.lower()}_{column_name.lower()}"
        db.storage.register_artifact(artifact, accelerator.snapshot_state)
        db.storage.register_accelerator_meta(
            {
                "table": table_name.lower(),
                "column": column_name.lower(),
                "method": method,
                "workers": workers,
                "allow_lossy": allow_lossy,
                "artifact": artifact,
            }
        )
    return accelerator
