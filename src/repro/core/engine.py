"""Inside-the-engine LexEQUAL acceleration (paper Section 6 future work).

The paper deployed LexEQUAL "outside the server" as a UDF and noted that
"the optimizer ... indicat[ed] that no optimization was done on the UDF
call in the query"; its future work is "an inside-the-engine
implementation ... with the expectation of further improving the runtime
efficiency".  This module is that implementation for the minidb engine:

* :func:`create_phonetic_accelerator` builds the auxiliary phonetic
  structures for one text column — per-row phoneme strings, and either
  the positional q-gram table with its B+ tree (``method="qgram"``,
  lossless), the grouped-phoneme-key B+ tree (``method="index"``,
  fastest, with the Section 5.3 false-dismissal caveat), or the sharded
  process-pool executor over an encoded phoneme table
  (``method="parallel"``, lossless — evaluates the exact match set with
  the vectorized banded kernels of :mod:`repro.matching.batch`);
* the structures register themselves as a table observer, so inserts
  and deletes keep them consistent automatically;
* the planner (see ``repro.minidb.planner._accelerated_candidates``)
  rewrites a ``col LexEQUAL 'query' THRESHOLD e`` predicate into a
  candidate-rowid scan against these structures, keeping the UDF as a
  recheck filter — no query changes required:

      create_phonetic_accelerator(db, "books", "author")
      db.execute("SELECT * FROM books WHERE author LEXEQUAL 'Nehru' "
                 "THRESHOLD 0.25")      # now uses the accelerator
"""

from __future__ import annotations

from repro import degrade, obs
from repro.core.config import MatchConfig
from repro.core.matcher import LexEqualMatcher
from repro.errors import DatabaseError, TTPError
from repro.matching.qgrams import (
    count_filter_threshold,
    positional_qgrams,
    publish_filter_counts,
)
from repro.minidb.btree import BPlusTree
from repro.minidb.catalog import Database
from repro.phonetics.keys import grouped_key
from repro.phonetics.parse import PhonemeString

_GRAM_SEP = "\x1f"


class PhoneticAccelerator:
    """Auxiliary phonetic access structures for one ``table.column``.

    Do not construct directly — use :func:`create_phonetic_accelerator`,
    which also wires the observer and planner registration.
    """

    def __init__(
        self,
        db: Database,
        table_name: str,
        column_name: str,
        matcher: LexEqualMatcher,
        method: str,
        workers: int | None = None,
    ):
        if method not in ("qgram", "index", "parallel"):
            raise DatabaseError(
                f"accelerator method must be 'qgram', 'index' or "
                f"'parallel', got {method!r}"
            )
        self.db = db
        self.table_name = table_name
        self.column_name = column_name
        self.matcher = matcher
        self.method = method
        self.workers = workers
        table = db.table(table_name)
        self._position = table.schema.position(column_name)
        self._phonemes: dict[int, PhonemeString] = {}
        self._tokens: dict[int, tuple[str, ...]] = {}
        self._langs: dict[int, str] = {}
        self._gpsid_tree = BPlusTree()
        self._gram_tree = BPlusTree()
        #: method="parallel" executor, rebuilt lazily after table changes.
        self._executor = None
        self._executor_stale = True
        for rowid, row in table.scan():
            self.on_insert(rowid, row)

    # ----------------------------------------------------- maintenance

    def _phonemes_of_value(self, value) -> PhonemeString | None:
        if value is None:
            return None
        language = self.matcher.language_of(value)
        if language is None or not self.matcher.registry.supports(language):
            return None  # NORESOURCE rows are not indexed
        return self.matcher.registry.transform(str(value), language)

    def on_insert(self, rowid: int, row: tuple) -> None:
        phonemes = self._phonemes_of_value(row[self._position])
        if not phonemes:
            return
        self._phonemes[rowid] = phonemes
        config = self.matcher.config
        if self.method == "parallel":
            language = self.matcher.language_of(row[self._position])
            self._langs[rowid] = language or ""
            self._executor_stale = True
            return
        if self.method == "index":
            key = grouped_key(
                phonemes, config.clustering, mode=config.key_mode
            )
            self._gpsid_tree.insert(key, rowid)
            return
        tokens = self._tokens_of(phonemes)
        self._tokens[rowid] = tokens
        for gram in positional_qgrams(tokens, config.q):
            self._gram_tree.insert(
                _GRAM_SEP.join(gram.gram), (rowid, gram.pos)
            )

    def on_delete(self, rowid: int, row: tuple) -> None:
        phonemes = self._phonemes.pop(rowid, None)
        if phonemes is None:
            return
        config = self.matcher.config
        if self.method == "parallel":
            self._langs.pop(rowid, None)
            self._executor_stale = True
            return
        if self.method == "index":
            key = grouped_key(
                phonemes, config.clustering, mode=config.key_mode
            )
            self._gpsid_tree.delete(key, rowid)
            return
        tokens = self._tokens.pop(rowid)
        for gram in positional_qgrams(tokens, config.q):
            self._gram_tree.delete(
                _GRAM_SEP.join(gram.gram), (rowid, gram.pos)
            )

    def _tokens_of(self, phonemes: PhonemeString) -> tuple[str, ...]:
        config = self.matcher.config
        if config.qgram_domain == "cluster":
            return tuple(
                str(c) for c in config.clustering.map_string(phonemes)
            )
        return tuple(phonemes)

    # --------------------------------------------------------- planning

    def candidate_rowids(
        self,
        value,
        threshold: float | None,
        languages: tuple[str, ...] = (),
    ) -> list[int] | None:
        """Candidate rowids for ``column LexEQUAL value THRESHOLD t``.

        For ``method="qgram"`` the list is a strict superset of the
        matching rows (the planner rechecks with the UDF, so results are
        identical to a full scan).  For ``method="index"`` it is the
        grouped-key bucket — fastest, with possible false dismissals.
        For ``method="parallel"`` it is the *exact* match set, computed
        by the sharded executor's banded batch kernels (the planner's
        UDF recheck then touches only true matches).  Returns None
        (declining, planner falls back to a scan) when the query value's
        language is unsupported or its phonemes cannot be encoded.
        """
        obs.incr(f"accelerator.{self.method}.calls")
        try:
            query_phonemes = self._phonemes_of_value(value)
        except TTPError as exc:
            # Transient failure converting the *query* value: under a
            # degradation context the accelerator declines (planner
            # falls back to a scan whose UDF recheck degrades per row);
            # outside one the failure propagates unchanged.
            if not degrade.record(getattr(exc, "language", None)):
                raise
            query_phonemes = None
        if not query_phonemes:
            obs.incr(f"accelerator.{self.method}.declined")
            return None
        config = self.matcher.config
        if threshold is not None:
            config = config.with_threshold(float(threshold))
        if self.method == "parallel":
            candidates = self._parallel_candidates(query_phonemes, config)
            if candidates is None:
                obs.incr(f"accelerator.{self.method}.declined")
                return None
        elif self.method == "index":
            key = grouped_key(
                query_phonemes, config.clustering, mode=config.key_mode
            )
            candidates = sorted(self._gpsid_tree.search(key))
            obs.incr("btree.probes")
            if not candidates:
                obs.incr("btree.probe_misses")
        else:
            candidates = self._qgram_candidates(query_phonemes, config)
        obs.observe(
            f"accelerator.{self.method}.candidates", len(candidates)
        )
        return candidates

    def _parallel_candidates(
        self, query_phonemes: PhonemeString, config: MatchConfig
    ) -> list[int] | None:
        """Exact matching rowids via the sharded executor (or None)."""
        executor = self._parallel_executor()
        if executor is None or len(executor.table) == 0:
            return []
        if executor.table.encode_query(query_phonemes) is None:
            return None  # out-of-table symbol: decline to the scan path
        ids, _dists = executor.match(query_phonemes, config.threshold)
        return [int(i) for i in ids]

    def _parallel_executor(self):
        """The method="parallel" executor, rebuilt after table changes."""
        if self._executor_stale:
            if self._executor is not None:
                self._executor.close()
                self._executor = None
            if self._phonemes:
                from repro.parallel import (
                    EncodedNameTable,
                    ParallelMatchExecutor,
                )

                table = EncodedNameTable.from_rows(
                    self.matcher.costs,
                    [
                        (rowid, self._langs.get(rowid, ""), phonemes)
                        for rowid, phonemes in sorted(
                            self._phonemes.items()
                        )
                    ],
                )
                self._executor = ParallelMatchExecutor(
                    table, workers=self.workers
                )
            self._executor_stale = False
        return self._executor

    def _qgram_candidates(
        self, query_phonemes: PhonemeString, config: MatchConfig
    ) -> list[int]:
        query_tokens = self._tokens_of(query_phonemes)
        k = config.max_operations(len(query_tokens))
        q = config.q
        pair_counts: dict[int, int] = {}
        pos_pass = pos_reject = 0  # published in one batch below
        probes = probe_misses = 0  # ditto (btree.search is uninstrumented)
        for gram in positional_qgrams(query_tokens, q):
            encoded = _GRAM_SEP.join(gram.gram)
            postings = self._gram_tree.search(encoded)
            probes += 1
            if not postings:
                probe_misses += 1
            for rowid, pos in postings:
                if abs(pos - gram.pos) <= k:
                    pos_pass += 1
                    pair_counts[rowid] = pair_counts.get(rowid, 0) + 1
                else:
                    pos_reject += 1
        qlen = len(query_tokens)
        candidates = []
        len_pass = len_reject = cnt_pass = cnt_reject = 0
        for rowid, count in pair_counts.items():
            clen = len(self._tokens[rowid])
            if abs(qlen - clen) > k:
                len_reject += 1
                continue
            len_pass += 1
            if count < count_filter_threshold(qlen, clen, k, q):
                cnt_reject += 1
                continue
            cnt_pass += 1
            candidates.append(rowid)
        publish_filter_counts(
            pos_pass, pos_reject, len_pass, len_reject, cnt_pass, cnt_reject
        )
        obs.incr("btree.probes", probes)
        if probe_misses:
            obs.incr("btree.probe_misses", probe_misses)
        candidates.sort()
        return candidates

    def drop(self) -> None:
        """Detach from the database (stop maintenance and planning)."""
        self.db.remove_observer(self.table_name, self.observer_handle)
        self.db.register_accelerator(
            self.table_name, self.column_name, None
        )
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    #: Set by create_phonetic_accelerator (the observer is the object
    #: itself; kept explicit for drop()).
    observer_handle: "PhoneticAccelerator"


def create_phonetic_accelerator(
    db: Database,
    table_name: str,
    column_name: str,
    matcher: LexEqualMatcher | None = None,
    method: str = "qgram",
    workers: int | None = None,
) -> PhoneticAccelerator:
    """Build and register phonetic acceleration for ``table.column``.

    ``method="qgram"`` (default) gives Table 2 behaviour with zero
    result change; ``method="index"`` gives Table 3 behaviour (fastest,
    may false-dismiss); ``method="parallel"`` evaluates predicates with
    the sharded banded-kernel executor (lossless; ``workers`` sizes its
    process pool, default CPU count).  Also installs the LexEQUAL UDF
    family if the database does not have it yet.
    """
    matcher = matcher or LexEqualMatcher()
    if not db.has_udf("lexequal"):
        from repro.core.integration import install_lexequal

        install_lexequal(db, matcher)
    accelerator = PhoneticAccelerator(
        db, table_name, column_name, matcher, method, workers=workers
    )
    accelerator.observer_handle = accelerator
    db.add_observer(table_name, accelerator)
    db.register_accelerator(table_name, column_name, accelerator)
    return accelerator
