"""Installing LexEQUAL into a minidb database as a UDF.

This reproduces the paper's deployment: "we have currently implemented
LexEQUAL as a user-defined function (UDF) that can be called in SQL
statements".  After :func:`install_lexequal`, the SQL of paper Figures 3
and 5 runs verbatim::

    select Author, Title from Books
    where Author LexEQUAL 'Nehru' Threshold 0.25
    inlanguages { english, hindi, tamil, greek }

because the parser lowers the ``LexEQUAL`` predicate to the registered
``lexequal`` UDF.  The helper UDFs (``ipa_of``, ``language_of``,
``gpsid_of``, ``lexequal_ipa``) expose the building blocks so that the
auxiliary-table SQL of Figures 14 and 15 can also be written directly.
"""

from __future__ import annotations

from repro import degrade, obs
from repro.core.matcher import LexEqualMatcher
from repro.errors import TTPError
from repro.minidb.catalog import Database
from repro.minidb.values import LangText


def install_lexequal(
    db: Database, matcher: LexEqualMatcher | None = None
) -> LexEqualMatcher:
    """Register the LexEQUAL UDF family on ``db``; returns the matcher.

    UDFs installed:

    ``lexequal(left, right, threshold[, languages_csv])``
        The paper's operator on *text* operands.  Language tags come from
        :class:`~repro.minidb.values.LangText` values or script
        detection.  Returns True/False, or SQL NULL for the NORESOURCE
        outcome (unknown, in three-valued logic).

    ``lexequal_ipa(left_ipa, right_ipa, threshold)``
        The operator on precomputed IPA strings — what the auxiliary
        q-gram/phonetic-index queries call, as in Figures 14/15 where
        ``LexEQUAL(N.PName, Q.str, e)`` runs over the ``PName`` column.

    ``ipa_of(text[, language])``, ``language_of(text)``,
    ``plen_of(text[, language])``, ``gpsid_of(text[, language])``
        Transformation helpers for building auxiliary columns in SQL.
    """
    matcher = matcher or LexEqualMatcher()

    def lexequal(left, right, threshold=None, languages_csv=""):
        obs.incr("udf.lexequal.calls")
        if left is None or right is None:
            return None
        langs: tuple[str, ...] = ()
        if languages_csv:
            langs = tuple(
                lang.strip().lower()
                for lang in str(languages_csv).split(",")
                if lang.strip()
            )
        lang_l = matcher.language_of(left)
        lang_r = matcher.language_of(right)
        if (
            lang_l is None
            or lang_r is None
            or not matcher.registry.supports(lang_l)
            or not matcher.registry.supports(lang_r)
        ):
            obs.incr("udf.lexequal.noresource")
            return None  # NORESOURCE -> SQL NULL (unknown)
        if langs and (lang_l not in langs or lang_r not in langs):
            return False
        try:
            phonemes_l = matcher.registry.transform(str(left), lang_l)
            phonemes_r = matcher.registry.transform(str(right), lang_r)
        except TTPError as exc:
            # Transient conversion failure.  Under a serving-layer
            # degradation context the row degrades to NULL (unknown,
            # like NORESOURCE) and the failing language is reported;
            # library callers keep the strict raising behaviour.
            if not degrade.record(getattr(exc, "language", None)):
                raise
            obs.incr("udf.lexequal.degraded")
            return None
        if threshold is None:
            return matcher.phonemes_match(phonemes_l, phonemes_r)
        from repro.matching.editdist import edit_distance_within

        budget = float(threshold) * min(len(phonemes_l), len(phonemes_r))
        return (
            edit_distance_within(
                phonemes_l, phonemes_r, budget, matcher.costs
            )
            is not None
        )

    def lexequal_ipa(left_ipa, right_ipa, threshold=None):
        obs.incr("udf.lexequal_ipa.calls")
        if left_ipa is None or right_ipa is None:
            return None
        from repro.matching.editdist import edit_distance_within
        from repro.phonetics.parse import parse_ipa

        phonemes_l = parse_ipa(str(left_ipa))
        phonemes_r = parse_ipa(str(right_ipa))
        e = matcher.config.threshold if threshold is None else float(threshold)
        budget = e * min(len(phonemes_l), len(phonemes_r))
        return (
            edit_distance_within(
                phonemes_l, phonemes_r, budget, matcher.costs
            )
            is not None
        )

    def _phonemes(text, language=None):
        if language is not None:
            return matcher.registry.transform(str(text), str(language))
        return matcher.phonemes(text)

    def ipa_of(text, language=None):
        if text is None:
            return None
        try:
            return "".join(_phonemes(text, language))
        except TTPError:
            return None

    def language_of(text):
        if text is None:
            return None
        if isinstance(text, LangText):
            return text.language.lower()
        return matcher.language_of(text)

    def plen_of(text, language=None):
        if text is None:
            return None
        try:
            return len(_phonemes(text, language))
        except TTPError:
            return None

    def gpsid_of(text, language=None):
        if text is None:
            return None
        from repro.phonetics.keys import grouped_key

        try:
            return grouped_key(
                _phonemes(text, language), matcher.config.clustering
            )
        except TTPError:
            return None

    db.register_udf("lexequal", lexequal)
    db.register_udf("lexequal_ipa", lexequal_ipa)
    db.register_udf("ipa_of", ipa_of)
    db.register_udf("language_of", language_of)
    db.register_udf("plen_of", plen_of)
    db.register_udf("gpsid_of", gpsid_of)
    return matcher


def populate_books_demo(db: Database, row_filter=None) -> None:
    """Create and fill the Books.com table of paper Figure 1 on ``db``.

    Shared between the in-memory demo catalog and ``lexequal init``
    (which seeds the same rows into a durable data directory).
    ``row_filter(row) -> bool`` keeps a subset of the demo rows — the
    cluster's shard backends load only the rows they own.
    """
    from repro.minidb.schema import Column
    from repro.minidb.values import SqlType

    db.create_table(
        "books",
        [
            Column("author", SqlType.LANGTEXT),
            Column("title", SqlType.TEXT),
            Column("price", SqlType.REAL),
            Column("language", SqlType.TEXT),
        ],
    )
    rows = [
        (
            LangText("Nehru", "english"),
            "Discovery of India",
            9.95,
            "english",
        ),
        (LangText("नेहरु", "hindi"), "भारत एक खोज", 175.0, "hindi"),
        (LangText("நேரு", "tamil"), "ஆசிய ஜோதி", 250.0, "tamil"),
        (LangText("Nero", "english"), "The Coronation", 99.0, "english"),
        (LangText("René", "french"), "Les Méditations", 49.0, "french"),
        (LangText("Σαρρη", "greek"), "Παιχνίδια στο Πιάνο", 15.5, "greek"),
    ]
    for row in rows:
        if row_filter is not None and not row_filter(row):
            continue
        db.insert("books", row)


def demo_books_db(
    accelerate: str = "qgram",
    matcher: LexEqualMatcher | None = None,
    workers: int | None = None,
    row_filter=None,
) -> Database:
    """The Books.com catalog of paper Figure 1, LexEQUAL installed.

    The shared demo database behind ``lexequal query``/``stats`` and the
    query server's default service.  ``accelerate`` picks the phonetic
    accelerator on ``books.author``: ``"qgram"`` (default), ``"index"``,
    ``"parallel"`` (sharded executor, sized by ``workers``), ``"ann"``
    (articulatory-embedding prefilter + exact verification, lossy
    through its admission radius), ``"auto"`` (cost-based per-query
    choice from ANALYZE statistics), or ``"none"`` for plain UDF
    evaluation.
    """
    from repro import faults

    # Bootstrap runs with failpoints suppressed: a REPRO_FAULTS chaos
    # schedule must break *queries* against this catalog, not the
    # catalog (or its phonetic index) coming up in the first place.
    with faults.suppressed():
        db = Database()
        matcher = matcher or LexEqualMatcher()
        install_lexequal(db, matcher)
        populate_books_demo(db, row_filter)
        if accelerate != "none":
            from repro.core.engine import create_phonetic_accelerator

            create_phonetic_accelerator(
                db, "books", "author", matcher,
                method=accelerate, workers=workers,
            )
            if accelerate == "auto":
                db.analyze()  # cost-based choice wants fresh stats
    return db
