"""Cooperative per-request deadlines.

Python worker threads cannot be interrupted, so a request that outlives
its timeout keeps burning a worker slot until its DP matching finishes
(the pool's accounting deliberately reflects that).  This module makes
long computations *cancellable*: the worker pool arms a thread-local
deadline around each request, and the clustered-edit-distance loops
check it between DP rows, raising
:class:`~repro.errors.DeadlineExceededError` as soon as the deadline
passes — the thread frees its slot instead of finishing doomed work,
and the server maps the error onto the existing ``timeout`` wire code.

The checks are pay-as-you-go: code without an armed deadline sees one
``None`` read per DP call and zero clock reads.

Usage::

    with deadline_scope(0.5):
        edit_distance_within(left, right, budget)  # may raise

Scopes nest; an inner scope can only tighten the effective deadline.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

from repro.errors import DeadlineExceededError

_local = threading.local()


def clear() -> None:
    """Disarm any deadline on the current thread.

    A forked child inherits the forking thread's armed deadline by
    memory copy; it must not govern work the child does on behalf of
    *later* requests, so worker mains (and the at-fork hook below)
    clear it.
    """
    _local.at = None


os.register_at_fork(after_in_child=clear)


@contextmanager
def deadline_scope(seconds: float | None):
    """Arm a deadline ``seconds`` from now for the current thread.

    ``None`` (no deadline) is accepted so callers can thread optional
    timeouts straight through.  Nested scopes keep the tighter deadline.
    """
    if seconds is None:
        yield
        return
    previous = getattr(_local, "at", None)
    at = time.monotonic() + seconds
    if previous is not None and previous < at:
        at = previous
    _local.at = at
    try:
        yield
    finally:
        _local.at = previous


def current() -> float | None:
    """The armed ``time.monotonic()`` deadline, or ``None``."""
    return getattr(_local, "at", None)


def remaining() -> float | None:
    """Seconds until the armed deadline (negative if past), or ``None``."""
    at = getattr(_local, "at", None)
    return None if at is None else at - time.monotonic()


def expired() -> bool:
    """True if a deadline is armed and already past."""
    at = getattr(_local, "at", None)
    return at is not None and time.monotonic() > at


def check(where: str = "") -> None:
    """Raise :class:`DeadlineExceededError` if the deadline has passed."""
    at = getattr(_local, "at", None)
    if at is not None and time.monotonic() > at:
        raise DeadlineExceededError(
            "request deadline exceeded"
            + (f" during {where}" if where else "")
        )
