"""Per-request graceful-degradation context.

The paper's operator answers ``NORESOURCE`` when a *whole language* has
no IPA transformation; a production service additionally sees languages
fail *transiently* — a converter bug, an injected fault, a timeout in an
external TTP system.  Failing the whole multiscript query over one
script's outage throws away every other script's answer, so the server
degrades instead: while a degradation context is active, per-language
TTP failures are recorded here and the failing rows/operands drop out of
the match, and the response carries ``degraded: true`` plus the
``failed_languages`` list so clients know the answer is partial.

The context is thread-local and armed only by the serving layer
(:meth:`repro.server.service.QueryService` wraps each request).
Library callers outside a context keep the strict behaviour: TTP
failures raise.

Sites that can skip a failing language call :func:`record`::

    except TTPError as exc:
        if not degrade.record(getattr(exc, "language", None)):
            raise          # no context: strict library semantics
        ...                # context active: degrade this row/operand
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

_local = threading.local()


@contextmanager
def collecting():
    """Arm a degradation context; yields the failed-language set.

    Nested contexts share the outermost set (one request, one report).
    """
    existing = getattr(_local, "failed", None)
    if existing is not None:
        yield existing
        return
    failed: set[str] = set()
    _local.failed = failed
    try:
        yield failed
    finally:
        _local.failed = None


def record(language: str | None) -> bool:
    """Record a per-language failure; False when no context is active."""
    failed = getattr(_local, "failed", None)
    if failed is None:
        return False
    failed.add(language if language else "unknown")
    return True


def active() -> bool:
    """True while a degradation context is armed on this thread."""
    return getattr(_local, "failed", None) is not None
