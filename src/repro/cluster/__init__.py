"""repro.cluster: a supervised shard cluster behind one NDJSON router.

The cluster splits the lexicon across N supervised shard backend
processes (each the existing :mod:`repro.server` app over its owned
slice, :mod:`~repro.cluster.backend`) and puts a router in front
(:mod:`~repro.cluster.router`) that fans reads out under per-shard
deadline budgets, merges and dedupes, labels partial answers with
``degraded`` + ``failed_shards``, and caches hot results under a TTL
(:mod:`~repro.cluster.cache`).  A supervisor
(:mod:`~repro.cluster.supervisor`) health-checks the shards and
restarts crashed or hung ones with backoff, replaying warmup before
readmission.  DESIGN.md §11 is the architecture chapter.
"""

from repro.cluster.ring import row_key, shard_name, shard_of
from repro.cluster.cache import ResultCache
from repro.cluster.links import ShardLink, ShardTimeoutError
from repro.cluster.backend import (
    ShardedQueryService,
    owns_row,
    sharded_service,
)
from repro.cluster.supervisor import ShardHandle, ShardSupervisor
from repro.cluster.router import (
    BackgroundCluster,
    ClusterRouter,
    serve_cluster,
)

__all__ = [
    "BackgroundCluster",
    "ClusterRouter",
    "ResultCache",
    "ShardHandle",
    "ShardLink",
    "ShardTimeoutError",
    "ShardSupervisor",
    "ShardedQueryService",
    "owns_row",
    "row_key",
    "serve_cluster",
    "shard_name",
    "shard_of",
    "sharded_service",
]
