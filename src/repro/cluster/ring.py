"""Shard ownership: which backend process owns which lexicon rows.

The cluster partitions the lexicon by *name key*: the first
:class:`~repro.minidb.values.LangText` (or string) value of a row is
hashed with CRC-32 and reduced modulo the shard count.  CRC-32 is
stable across Python processes and versions (unlike ``hash()``, which
is salted per process), so the router, every shard, and offline tools
all agree on ownership without coordination.

This is deliberately *not* a consistent-hash ring with virtual nodes:
the shard count is fixed for the lifetime of one cluster (``serve
--cluster N``), and a crashed shard is restarted in place by the
supervisor rather than having its keys reassigned — reassignment would
require data movement the storage layer doesn't do yet.  What the ring
does track is *availability*: the router asks it for the healthy
subset and labels the unavailable remainder as ``failed_shards``.
"""

from __future__ import annotations

import zlib

from repro.minidb.values import LangText

__all__ = ["shard_of", "row_key", "shard_name"]


def shard_name(index: int) -> str:
    """The stable public name of shard ``index`` (``failed_shards``)."""
    return f"shard-{index}"


def shard_of(key: str, shard_count: int) -> int:
    """The shard index owning ``key`` (stable across processes)."""
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    return zlib.crc32(key.encode("utf-8")) % shard_count


def row_key(row) -> str | None:
    """The partition key of a table row, or ``None`` (unpartitioned).

    The first :class:`LangText` value wins (the lexicon name column);
    a plain string is the fallback for tables without one.  Rows with
    no text at all — purely numeric tables — are owned by shard 0 so a
    broadcast INSERT still lands each row exactly once.
    """
    fallback = None
    for value in row:
        if isinstance(value, LangText):
            return value.text
        if fallback is None and isinstance(value, str):
            fallback = value
    return fallback
