"""The router's TTL result cache for hot names.

A multiscript name service sees heavily skewed traffic — the same few
celebrity/customer names asked in every script — and a fan-out to N
shards per repeat is pure waste.  The router caches *fully successful*
read results (SELECT fan-outs and ``lexequal`` comparisons) under a
TTL; degraded or partial results are never cached, so a shard outage
cannot be frozen into the cache and served past recovery.

Invalidation is write-driven and deliberately coarse: any write routed
through the cluster flushes the whole cache (DESIGN.md §11.5).  Writes
are rare on this workload and a full flush is the only rule that is
obviously correct for LEXEQUAL predicates — a new row can become a
phonetic match for *any* cached query, so per-key invalidation would
need phonetic reasoning just to stay correct.

Single-task discipline: the cache lives on the router's event loop and
is only touched from it, so there is no lock; the monotonic clock is
injectable for tests.
"""

from __future__ import annotations

import time

from repro import obs

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded TTL map from request keys to response payloads."""

    def __init__(
        self,
        max_entries: int = 1024,
        ttl: float = 5.0,
        *,
        clock=time.monotonic,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be > 0")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        #: key -> (expires_at, payload); insertion-ordered for eviction.
        self._entries: dict[object, tuple[float, dict]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key) -> dict | None:
        entry = self._entries.get(key)
        if entry is not None:
            expires_at, payload = entry
            if self._clock() < expires_at:
                self.hits += 1
                obs.incr("cluster.cache.hits")
                return payload
            del self._entries[key]
        self.misses += 1
        obs.incr("cluster.cache.misses")
        return None

    def put(self, key, payload: dict) -> None:
        """Cache a payload (caller guarantees it is not degraded)."""
        if key in self._entries:
            # Re-insert at the back so eviction order tracks recency
            # of writes (not strict LRU: reads don't reorder).
            del self._entries[key]
        elif len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = (self._clock() + self.ttl, payload)

    def flush(self) -> int:
        """Drop everything (write invalidation); returns entries lost."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += dropped
            obs.incr("cluster.cache.invalidations", dropped)
        return dropped

    def info(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "ttl": self.ttl,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
