"""Async NDJSON links from the router to one shard backend.

A :class:`ShardLink` is a small connection pool on the router's event
loop: each in-flight request checks out one connection (opening a new
one when the free list is empty), writes a single request line, awaits
the single response line under the caller's deadline, and returns the
connection for reuse.  Anything that breaks the request/response
framing — connect failure, reset, EOF, a deadline that fires with a
response still owed — closes that connection instead of returning it,
because a late response would be mis-matched to the next request.

Failure taxonomy mirrors the blocking client: every transport problem
becomes :class:`~repro.errors.TransportError` and a deadline becomes
:class:`ShardTimeoutError` (its own type so the router can tell "shard
too slow" from "shard unreachable" — only the latter is retried and
only the latter trips the shard's circuit breaker toward open).
"""

from __future__ import annotations

import asyncio
import itertools
import json

from repro import faults
from repro.errors import ProtocolError, TransportError
from repro.server.protocol import E_PARSE, MAX_LINE_BYTES

__all__ = ["ShardLink", "ShardTimeoutError"]


class ShardTimeoutError(TransportError):
    """The per-shard deadline budget expired awaiting a response."""


class ShardLink:
    """Pooled connections to one shard process (one generation of it)."""

    def __init__(self, name: str, host: str, port: int, generation: int):
        self.name = name
        self.host = host
        self.port = port
        #: The supervisor bumps the shard generation on every restart;
        #: the router drops links whose generation is stale (the old
        #: process — and its port — are gone).
        self.generation = generation
        self._ids = itertools.count(1)
        self._free: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._closed = False

    async def request(self, payload: dict, timeout: float) -> dict:
        """One request/response round-trip under ``timeout`` seconds.

        Returns the decoded response envelope (``{"ok": ..., ...}``).
        Raises :class:`TransportError` (connection-level failure),
        :class:`ShardTimeoutError` (budget expired) or
        :class:`~repro.errors.ProtocolError` (unparseable response).
        """
        if self._closed:
            raise TransportError(
                f"link to {self.name} is closed", op=str(payload.get("op"))
            )
        loop = asyncio.get_running_loop()
        if faults.is_active():
            # Chaos hook: a latency-mode slow-shard injection sleeps in
            # a worker thread so it stalls *this* fan-out branch, never
            # the router's event loop.
            def _slow_shard() -> None:
                faults.fire("cluster.shard.slow")

            await loop.run_in_executor(None, _slow_shard)
        deadline = loop.time() + timeout
        op = str(payload.get("op"))
        conn = await self._checkout(op, deadline)
        reader, writer = conn
        request_id = next(self._ids)
        line = json.dumps(
            {**payload, "id": request_id}, ensure_ascii=False
        ) + "\n"
        try:
            writer.write(line.encode("utf-8"))
            await asyncio.wait_for(
                writer.drain(), max(0.0, deadline - loop.time())
            )
            raw = await asyncio.wait_for(
                reader.readline(), max(0.0, deadline - loop.time())
            )
        except asyncio.TimeoutError:
            self._discard(conn)
            raise ShardTimeoutError(
                f"shard {self.name} exceeded its {timeout:.3f}s budget",
                op=op,
                request_id=request_id,
            ) from None
        except (OSError, ConnectionError) as exc:
            self._discard(conn)
            raise TransportError(
                f"connection to shard {self.name} failed: {exc}",
                op=op,
                request_id=request_id,
            ) from None
        if not raw:
            self._discard(conn)
            raise TransportError(
                f"shard {self.name} closed the connection",
                op=op,
                request_id=request_id,
            )
        try:
            response = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._discard(conn)
            raise ProtocolError(
                E_PARSE, f"unparseable response from shard {self.name}: {exc}"
            ) from None
        if not isinstance(response, dict) or "ok" not in response:
            self._discard(conn)
            raise ProtocolError(
                E_PARSE,
                f"malformed response from shard {self.name}: {response!r}",
            )
        if response.get("id") != request_id:
            self._discard(conn)
            raise ProtocolError(
                E_PARSE,
                f"shard {self.name} answered id {response.get('id')!r} "
                f"to request id {request_id!r}",
            )
        if self._closed:
            self._discard(conn)
        else:
            self._free.append(conn)
        return response

    async def _checkout(self, op: str, deadline: float):
        while self._free:
            conn = self._free.pop()
            if not conn[1].is_closing():
                return conn
            self._discard(conn)
        loop = asyncio.get_running_loop()
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(
                    self.host, self.port, limit=MAX_LINE_BYTES
                ),
                max(0.0, deadline - loop.time()),
            )
        except asyncio.TimeoutError:
            raise ShardTimeoutError(
                f"connect to shard {self.name} exceeded the budget", op=op
            ) from None
        except (OSError, ConnectionError) as exc:
            raise TransportError(
                f"cannot connect to shard {self.name} at "
                f"{self.host}:{self.port}: {exc}",
                op=op,
            ) from None

    @staticmethod
    def _discard(conn) -> None:
        _, writer = conn
        writer.close()

    def close(self) -> None:
        """Close pooled connections (in-flight ones close themselves)."""
        self._closed = True
        while self._free:
            self._discard(self._free.pop())
