"""The shard supervisor: spawn, health-check, restart, reap.

One supervisor owns N shard backend processes (``repro.cli serve
--shard-index i --shard-count N``) for the lifetime of a cluster.  Its
monitor thread ticks every ``health_interval`` seconds and, per shard:

* reaps **crashed** processes (``poll()``) and schedules a restart with
  exponential backoff + full jitter (strikes reset once the shard
  passes a health check, so a flapping shard backs off while a one-off
  crash restarts almost immediately);
* probes **liveness** through the protocol's ``health`` op — a cheap
  op answered inline on the shard's event loop, so a shard whose
  worker pool is wedged still answers, while a *hung* process (stuck
  loop, blackholed network) misses checks and is SIGKILLed after
  ``health_misses`` consecutive failures, then restarted;
* evaluates the chaos failpoints: ``cluster.shard.kill`` SIGKILLs a
  healthy shard (the chaos harness's scripted crash) and
  ``cluster.health.blackhole`` makes a probe count as missed without
  touching the process (testing the hung-shard path).

A restarted shard repeats full warmup — demo build or data-dir
recovery including accelerator attach (:mod:`repro.cluster.backend`)
— before it binds its port, and the supervisor additionally requires
one successful ``health`` round-trip before readmitting it to the
ring, so the router never fans out to a shard that cannot answer.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import threading
import time

from repro import faults, obs
from repro.errors import ReproError, ServerError
from repro.locks import make_rlock
from repro.server.client import LexEqualClient
from repro.server.resilience import RetryPolicy

from repro.cluster import ring

__all__ = ["ShardHandle", "ShardSupervisor"]

#: Backoff strikes are capped so a long outage cannot push the restart
#: delay past ``restart_policy.max_delay`` anyway, but the exponent
#: stays small enough to never overflow.
_MAX_STRIKES = 8


class ShardHandle:
    """Mutable supervisor-side state of one shard slot."""

    def __init__(self, index: int):
        self.index = index
        self.name = ring.shard_name(index)
        self.state = "down"  # down | starting | up
        self.generation = 0
        self.process: subprocess.Popen | None = None
        self.pid: int | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.restarts = 0
        self.strikes = 0  # consecutive failures feeding backoff
        self.health_failures = 0  # consecutive missed probes
        self.restart_at = 0.0
        self.started_at = 0.0
        self.spawning = False
        self.last_error: str | None = None

    def info(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "generation": self.generation,
            "pid": self.pid,
            "address": (
                f"{self.host}:{self.port}" if self.port is not None else None
            ),
            "restarts": self.restarts,
            "health_failures": self.health_failures,
            "last_error": self.last_error,
        }


class ShardSupervisor:
    """Spawns and babysits the shard backends of one cluster."""

    def __init__(
        self,
        shard_count: int,
        *,
        shard_args: tuple[str, ...] = (),
        health_interval: float = 0.5,
        health_timeout: float = 2.0,
        health_misses: int = 3,
        startup_timeout: float = 60.0,
        restart_policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
    ):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count
        self.shard_args = tuple(shard_args)
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.health_misses = health_misses
        self.startup_timeout = startup_timeout
        self.restart_policy = restart_policy or RetryPolicy(
            max_attempts=2, base_delay=0.2, multiplier=2.0, max_delay=5.0
        )
        self._rng = rng or random.Random()
        self.shards = [ShardHandle(i) for i in range(shard_count)]
        self._lock = make_rlock("cluster.supervisor")
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Spawn every shard and wait until all are up (or fail)."""
        self._stopping.clear()
        threads = [
            threading.Thread(
                target=self._spawn, args=(shard,), daemon=True
            )
            for shard in self.shards
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(self.startup_timeout)
        failed = [s.name for s in self.shards if s.state != "up"]
        if failed:
            errors = "; ".join(
                f"{s.name}: {s.last_error}"
                for s in self.shards
                if s.state != "up" and s.last_error
            )
            self.stop()
            raise ServerError(
                f"cluster failed to start, shards not up: "
                f"{', '.join(failed)}" + (f" ({errors})" if errors else "")
            )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self, timeout: float = 15.0) -> None:
        """Forward drain: SIGTERM every shard, reap, SIGKILL stragglers."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.health_interval * 4 + 1.0)
            self._monitor = None
        with self._lock:
            procs = [
                (shard, shard.process)
                for shard in self.shards
                if shard.process is not None
            ]
        for _, proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + timeout
        for shard, proc in procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
                shard.last_error = "killed at shutdown (drain timeout)"
            shard.state = "down"

    # ------------------------------------------------------------- queries

    def healthy(self) -> list[ShardHandle]:
        """Shards currently admitted to the ring (state ``up``)."""
        return [shard for shard in self.shards if shard.state == "up"]

    def live_pids(self) -> list[int]:
        """PIDs of shard processes that are currently running."""
        with self._lock:
            return [
                shard.process.pid
                for shard in self.shards
                if shard.process is not None
                and shard.process.poll() is None
            ]

    def info(self) -> list[dict]:
        return [shard.info() for shard in self.shards]

    def wait_all_up(self, timeout: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(shard.state == "up" for shard in self.shards):
                return True
            time.sleep(0.05)
        return all(shard.state == "up" for shard in self.shards)

    def kill_shard(self, index: int) -> int | None:
        """SIGKILL one shard (chaos/testing); returns the killed PID."""
        shard = self.shards[index]
        with self._lock:
            proc = shard.process
        if proc is None or proc.poll() is not None:
            return None
        obs.incr("cluster.shard.kills")
        proc.kill()
        return proc.pid

    # ------------------------------------------------------------ spawning

    def _spawn(self, shard: ShardHandle) -> None:
        """Start one shard process and admit it once provably healthy."""
        with self._lock:
            if self._stopping.is_set():
                shard.spawning = False
                return
            shard.generation += 1
            generation = shard.generation
            shard.state = "starting"
            shard.started_at = time.monotonic()
            shard.health_failures = 0
            cmd = [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--shard-index",
                str(shard.index),
                "--shard-count",
                str(self.shard_count),
                *self.shard_args,
            ]
            try:
                proc = subprocess.Popen(
                    cmd,
                    stdout=subprocess.PIPE,
                    stderr=None,  # shard tracebacks go to our stderr
                    text=True,
                    encoding="utf-8",
                    env=self._shard_env(),
                )
            except OSError as exc:
                self._mark_down(shard, f"spawn failed: {exc}")
                shard.spawning = False
                return
            shard.process = proc
            shard.pid = proc.pid
        address = None
        for line in proc.stdout:
            if line.startswith("listening on "):
                host, _, port = line[len("listening on "):].strip().rpartition(
                    ":"
                )
                address = (host, int(port))
                break
        if address is None:
            # stdout closed: the process died during warmup.
            proc.wait()
            self._mark_down(
                shard, f"exited with {proc.returncode} before binding"
            )
            shard.spawning = False
            return
        threading.Thread(
            target=_drain_stdout, args=(proc.stdout,), daemon=True
        ).start()
        if not self._probe(address):
            proc.kill()
            proc.wait()
            self._mark_down(shard, "failed readmission health check")
            shard.spawning = False
            return
        with self._lock:
            shard.spawning = False
            if shard.generation != generation or self._stopping.is_set():
                return
            shard.host, shard.port = address
            shard.state = "up"
            shard.last_error = None
            obs.incr("cluster.shard.ready")

    def _shard_env(self) -> dict:
        env = os.environ.copy()
        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        src_root = os.path.dirname(src_root)  # .../src
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
        return env

    def _probe(self, address: tuple[str, int]) -> bool:
        host, port = address
        try:
            with LexEqualClient(
                host, port, timeout=self.health_timeout
            ) as client:
                return client.health().get("status") == "ok"
        except ReproError:
            return False

    def _mark_down(self, shard: ShardHandle, reason: str) -> None:
        with self._lock:
            shard.state = "down"
            shard.last_error = reason
            shard.strikes = min(shard.strikes + 1, _MAX_STRIKES)
            delay = self.restart_policy.backoff(shard.strikes, self._rng)
            shard.restart_at = time.monotonic() + delay
        obs.incr("cluster.shard.exits")

    # ----------------------------------------------------------- monitoring

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.health_interval):
            for shard in self.shards:
                if self._stopping.is_set():
                    return
                try:
                    self._tick(shard)
                except Exception as exc:  # noqa: BLE001 - keep monitoring
                    shard.last_error = f"monitor error: {exc}"
                    obs.incr("cluster.supervisor.errors")

    def _tick(self, shard: ShardHandle) -> None:
        proc = shard.process
        if (
            shard.state in ("up", "starting")
            and proc is not None
            and proc.poll() is not None
            and not shard.spawning
        ):
            self._mark_down(shard, f"exited with {proc.returncode}")
            return
        if shard.state == "up":
            if faults.fire("cluster.shard.kill"):
                # Injected crash: SIGKILL now, the next tick reaps it
                # and schedules the restart like any real crash.
                obs.incr("cluster.shard.kills")
                if proc is not None and proc.poll() is None:
                    proc.kill()
                return
            obs.incr("cluster.health.checks")
            blackholed = faults.fire("cluster.health.blackhole")
            ok = (
                False
                if blackholed
                else self._probe((shard.host, shard.port))
            )
            if ok:
                shard.health_failures = 0
                shard.strikes = 0
                return
            shard.health_failures += 1
            obs.incr("cluster.health.failures")
            if shard.health_failures >= self.health_misses:
                # Hung (or blackholed) shard: crash it deliberately so
                # the restart path can bring back a responsive one.
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=5.0)
                self._mark_down(
                    shard,
                    f"missed {shard.health_failures} health checks",
                )
            return
        if shard.state == "starting" and not shard.spawning:
            # A starting shard only lingers here when its spawn thread
            # died unexpectedly; treat as failed.
            if time.monotonic() - shard.started_at > self.startup_timeout:
                if proc is not None and proc.poll() is None:
                    proc.kill()
                self._mark_down(shard, "startup timed out")
            return
        if (
            shard.state == "down"
            and not shard.spawning
            and time.monotonic() >= shard.restart_at
        ):
            shard.spawning = True
            shard.restarts += 1
            obs.incr("cluster.shard.restarts")
            threading.Thread(
                target=self._spawn, args=(shard,), daemon=True
            ).start()


def _drain_stdout(stream) -> None:
    """Keep reading a shard's stdout so it can never block on the pipe."""
    try:
        for _ in stream:
            pass
    except (OSError, ValueError):
        pass
