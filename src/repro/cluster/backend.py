"""Shard-side service: a :class:`QueryService` over one lexicon slice.

A shard backend is the *existing* server (`repro.server.app`) wrapped
around a :class:`ShardedQueryService` — the only cluster-awareness a
shard needs is (a) loading just the rows it owns and (b) filtering
broadcast INSERTs down to its owned rows, so the router can send one
write to every shard and each row still lands exactly once.

Two data sources, mirroring single-process serving:

* **demo catalog** — the Books.com table, filtered through the shard
  ring before insertion; the phonetic accelerator is built over the
  owned subset only.
* **``--data-dir``** — the shard *recovers* the shared durable
  directory (checkpoint + WAL replay), then detaches onto an in-memory
  backend before dropping the rows it does not own.  Shards are
  read-mostly replicas of their slice: they must never write to the
  shared WAL/stats files (N processes appending to one log would
  corrupt it), so durability stays with whoever runs ``lexequal init``
  / single-process serving.  The recovered WAL high-water LSN is
  reported by ``health`` so the supervisor can see how fresh each
  shard's view is.
"""

from __future__ import annotations

from repro.cluster import ring
from repro.core.matcher import LexEqualMatcher
from repro.minidb.sql import InsertStmt
from repro.server.service import QueryService

__all__ = ["ShardedQueryService", "owns_row", "sharded_service"]


def owns_row(row, shard_index: int, shard_count: int) -> bool:
    """Does ``shard_index`` own this row under the shard ring?

    Keyless (purely numeric) rows belong to shard 0 so broadcast
    INSERTs still land each row exactly once.
    """
    key = ring.row_key(row)
    owner = 0 if key is None else ring.shard_of(key, shard_count)
    return owner == shard_index


class ShardedQueryService(QueryService):
    """A query service that owns one slice of the partitioned lexicon."""

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        db=None,
        matcher=None,
        *,
        wal_lsn: int | None = None,
        **kwargs,
    ):
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard_index {shard_index} out of range for "
                f"shard_count {shard_count}"
            )
        super().__init__(db, matcher, **kwargs)
        self.shard_index = shard_index
        self.shard_count = shard_count
        self._recovered_wal_lsn = wal_lsn

    def shard_info(self) -> dict:
        return {"index": self.shard_index, "count": self.shard_count}

    def health(self, server_info: dict | None = None) -> dict:
        payload = super().health(server_info)
        if payload["wal_lsn"] is None:
            # Detached replica: report the LSN recovered at open so the
            # supervisor still sees how fresh this shard's view is.
            payload["wal_lsn"] = self._recovered_wal_lsn
        return payload

    def owns_row(self, values: tuple) -> bool:
        return owns_row(values, self.shard_index, self.shard_count)

    def _transform_statement(self, stmt, params: dict):
        """Keep only this shard's rows of a broadcast INSERT.

        DDL and reads pass through unchanged — the router broadcasts
        DDL to every shard (each must hold the schema) and fans reads
        out over owned slices.  The statement cache shares AST objects
        across requests, so a filtered INSERT is a *new* statement,
        never a mutation of the cached one.
        """
        if not isinstance(stmt, InsertStmt):
            return stmt
        from repro.minidb.planner import eval_constant

        owned = [
            row_exprs
            for row_exprs in stmt.rows
            if self.owns_row(
                tuple(eval_constant(expr, params) for expr in row_exprs)
            )
        ]
        if len(owned) == len(stmt.rows):
            return stmt
        if not owned:
            return None
        return InsertStmt(stmt.table, owned)


def sharded_service(
    shard_index: int,
    shard_count: int,
    *,
    strategy: str = "qgram",
    data_dir: str | None = None,
    matcher: LexEqualMatcher | None = None,
    workers: int | None = None,
) -> ShardedQueryService:
    """Build the service for one shard backend process."""
    matcher = matcher or LexEqualMatcher()
    if data_dir:
        db, wal_lsn, strategy = _open_shard_slice(
            data_dir, shard_index, shard_count, matcher, workers
        )
    else:
        wal_lsn = None
        from repro.core.integration import demo_books_db

        db = demo_books_db(
            strategy,
            matcher,
            workers,
            row_filter=lambda row: owns_row(row, shard_index, shard_count),
        )
    return ShardedQueryService(
        shard_index,
        shard_count,
        db,
        matcher,
        wal_lsn=wal_lsn,
        strategy=strategy,
    )


def _open_shard_slice(
    data_dir: str,
    shard_index: int,
    shard_count: int,
    matcher: LexEqualMatcher,
    workers: int | None,
):
    """Recover the shared directory, keep the owned slice, rebuild."""
    from repro import faults
    from repro.core.engine import create_phonetic_accelerator
    from repro.core.integration import install_lexequal
    from repro.storage import open_database
    from repro.storage.manager import MemoryBackend

    with faults.suppressed():
        db = open_database(
            data_dir, matcher=matcher, attach_accelerators=False
        )
        backend = db.storage
        wal_lsn = backend.wal_high_water_lsn
        meta = backend.accelerator_meta()
        # Detach before any mutation: the shard must never write to the
        # shared WAL/checkpoint/stats files (see module docstring).
        db.storage = MemoryBackend()
        backend.close()
        for table_name in db.table_names():
            doomed = [
                rowid
                for rowid, row in db.table(table_name).scan()
                if not owns_row(row, shard_index, shard_count)
            ]
            for rowid in doomed:
                db.delete_row(table_name, rowid)
        install_lexequal(db, matcher)
        strategies = set()
        for entry in meta:
            # Rebuild over the owned slice; the persisted snapshot
            # covers the full lexicon, so restoring it would answer
            # other shards' rows from this shard.
            create_phonetic_accelerator(
                db,
                entry["table"],
                entry["column"],
                matcher,
                method=entry["method"],
                workers=workers or entry.get("workers"),
                allow_lossy=entry.get("allow_lossy", False),
            )
            strategies.add(entry["method"])
            if entry["method"] == "auto":
                db.analyze()
        strategy = ",".join(sorted(strategies)) if strategies else "none"
    return db, wal_lsn, strategy
